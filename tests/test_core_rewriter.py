"""Tests for the AGGR[FOL] rewriting construction (Theorem 1.1 / Fig. 5)."""

from fractions import Fraction

import pytest

from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.core.evaluator import BOTTOM
from repro.core.rewriter import GlbRewriter
from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import NotRewritableError, UnsupportedAggregateError
from repro.query.parser import parse_aggregation_query
from tests.conftest import make_random_instance


class TestDecisionProcedure:
    def test_rewritable_cases(self, running_query, stock_sum_query):
        assert GlbRewriter(running_query).is_rewritable()
        assert GlbRewriter(stock_sum_query).is_rewritable()

    def test_min_is_rewritable(self, running_schema):
        query = parse_aggregation_query(running_schema, "MIN(r) <- R(x,y), S(y,z,'d',r)")
        assert GlbRewriter(query).is_rewritable()

    def test_cyclic_not_rewritable(self):
        schema = Schema(
            [
                RelationSignature("U", 2, 1, numeric_positions=(2,)),
                RelationSignature("V", 2, 1),
            ]
        )
        query = parse_aggregation_query(schema, "SUM(y) <- U(x, y), V(y, x)")
        rewriter = GlbRewriter(query)
        assert not rewriter.is_rewritable()
        with pytest.raises(NotRewritableError):
            rewriter.rewrite()

    def test_avg_not_rewritable(self, running_schema):
        query = parse_aggregation_query(running_schema, "AVG(r) <- R(x,y), S(y,z,'d',r)")
        rewriter = GlbRewriter(query)
        assert not rewriter.is_rewritable()
        with pytest.raises(UnsupportedAggregateError):
            rewriter.rewrite()

    def test_verdict_matches_is_rewritable(self, running_query):
        rewriter = GlbRewriter(running_query)
        assert rewriter.verdict().rewritable == rewriter.is_rewritable()


class TestConstructedRewriting:
    def test_running_example_evaluates_to_9(self, running_query, running_instance):
        rewriting = GlbRewriter(running_query).rewrite()
        assert rewriting.evaluate(running_instance) == Fraction(9)

    def test_fig1_example_evaluates_to_70(self, stock_sum_query, stock_instance):
        rewriting = GlbRewriter(stock_sum_query).rewrite()
        assert rewriting.evaluate(stock_instance) == Fraction(70)

    def test_bottom_case(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)"
        )
        rewriting = GlbRewriter(query).rewrite()
        assert rewriting.evaluate(stock_instance) is BOTTOM

    def test_min_rewriting(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "MIN(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        rewriting = GlbRewriter(query).rewrite()
        assert rewriting.evaluate(stock_instance) == Fraction(35)

    def test_count_rewriting_uses_sum_of_ones(self, running_schema, running_instance):
        query = parse_aggregation_query(
            running_schema, "COUNT(1) <- R(x,y), S(y,z,'d',r)"
        )
        rewriting = GlbRewriter(query).rewrite()
        expected = ExhaustiveRangeSolver(query).glb(running_instance)
        assert rewriting.evaluate(rewriting_instance := running_instance) == expected
        assert rewriting.value_term.aggregate == "SUM"

    def test_describe_mentions_query_and_guard(self, running_query):
        rewriting = GlbRewriter(running_query).rewrite()
        description = rewriting.describe()
        assert "certainty" in description
        assert "SUM" in description

    def test_rewriting_structure_mirrors_fig5(self, running_query):
        # The outer term aggregates over the key of the first atom (x), its
        # value term minimises over the remaining variables of that atom (y).
        rewriting = GlbRewriter(running_query).rewrite()
        outer = rewriting.value_term
        assert outer.aggregate == "SUM"
        assert {v.name for v in outer.bound_variables} == {"x"}
        inner = outer.value_term
        assert inner.aggregate == "MIN"
        assert {v.name for v in inner.bound_variables} == {"y"}
        level2 = inner.value_term
        assert level2.aggregate == "SUM"
        assert {v.name for v in level2.bound_variables} == {"z"}

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_exhaustive_on_small_random_instances(
        self, two_atom_schema, seed
    ):
        query = parse_aggregation_query(two_atom_schema, "SUM(r) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(
            two_atom_schema, seed + 700, facts_per_relation=4, domain_size=2
        )
        rewriting = GlbRewriter(query).rewrite()
        expected = ExhaustiveRangeSolver(query).glb(instance)
        assert rewriting.evaluate(instance) == expected
