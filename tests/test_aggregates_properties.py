"""Property-based tests for monotonicity / associativity (Section 5.1)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.operators import AVG, COUNT, MAX, MIN, PRODUCT, SUM
from repro.aggregates.properties import (
    check_associativity,
    check_monotonicity,
    is_covered_by_separation_theorem,
)

#: Non-negative rationals with small numerators/denominators.
nonneg_fractions = st.builds(
    Fraction, st.integers(min_value=0, max_value=30), st.integers(min_value=1, max_value=5)
)
multisets = st.lists(nonneg_fractions, min_size=1, max_size=6)
possibly_empty_multisets = st.lists(nonneg_fractions, min_size=0, max_size=6)


class TestAssociativityProperty:
    @given(x=multisets, y=possibly_empty_multisets)
    @settings(max_examples=60, deadline=None)
    def test_sum_is_associative(self, x, y):
        assert SUM(x + y) == SUM([SUM(x)] + y)

    @given(x=multisets, y=possibly_empty_multisets)
    @settings(max_examples=60, deadline=None)
    def test_max_is_associative(self, x, y):
        assert MAX(x + y) == MAX([MAX(x)] + y)

    @given(x=multisets, y=possibly_empty_multisets)
    @settings(max_examples=60, deadline=None)
    def test_min_is_associative(self, x, y):
        assert MIN(x + y) == MIN([MIN(x)] + y)

    @given(x=multisets, y=possibly_empty_multisets)
    @settings(max_examples=60, deadline=None)
    def test_product_is_associative(self, x, y):
        assert PRODUCT(x + y) == PRODUCT([PRODUCT(x)] + y)


class TestMonotonicityProperty:
    @given(
        base=multisets,
        increments=st.lists(nonneg_fractions, min_size=0, max_size=6),
        extra=possibly_empty_multisets,
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_is_monotone(self, base, increments, extra):
        increased = [
            value + (increments[i] if i < len(increments) else 0)
            for i, value in enumerate(base)
        ]
        assert SUM(base) <= SUM(increased + extra)

    @given(
        base=multisets,
        increments=st.lists(nonneg_fractions, min_size=0, max_size=6),
        extra=possibly_empty_multisets,
    )
    @settings(max_examples=60, deadline=None)
    def test_max_is_monotone(self, base, increments, extra):
        increased = [
            value + (increments[i] if i < len(increments) else 0)
            for i, value in enumerate(base)
        ]
        assert MAX(base) <= MAX(increased + extra)

    @given(base=multisets, extra=multisets)
    @settings(max_examples=60, deadline=None)
    def test_count_is_monotone_in_multiset_extension(self, base, extra):
        assert COUNT(base) <= COUNT(base + extra)


class TestCheckers:
    def test_no_counterexample_for_declared_operators(self):
        assert check_associativity(SUM) is None
        assert check_associativity(MAX) is None
        assert check_associativity(MIN) is None
        assert check_monotonicity(SUM) is None
        assert check_monotonicity(MAX) is None
        assert check_monotonicity(COUNT) is None

    def test_counterexample_found_for_avg(self):
        assert check_associativity(AVG) is not None
        assert check_monotonicity(AVG) is not None

    def test_counterexample_found_for_min_monotonicity(self):
        assert check_monotonicity(MIN) is not None

    def test_counterexample_found_for_count_associativity(self):
        assert check_associativity(COUNT) is not None

    def test_example_5_2_min_counterexample(self):
        assert MIN([3]) > MIN([2, 3])


class TestSeparationTheoremCoverage:
    def test_sum_max_covered(self):
        assert is_covered_by_separation_theorem(SUM)
        assert is_covered_by_separation_theorem(MAX)

    def test_count_covered_via_sum_of_ones(self):
        assert is_covered_by_separation_theorem(COUNT)

    def test_avg_product_min_not_covered(self):
        assert not is_covered_by_separation_theorem(AVG)
        assert not is_covered_by_separation_theorem(PRODUCT)
        assert not is_covered_by_separation_theorem(MIN)
