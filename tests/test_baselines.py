"""Tests for the baseline solvers (exhaustive, branch-and-bound, Fuxman, Cparsimony)."""

from fractions import Fraction

import pytest

from repro.baselines.branch_and_bound import BranchAndBoundSolver
from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.baselines.fuxman import (
    FuxmanIndependentBlockSolver,
    fuxman_graph,
    is_caggforest,
    is_cforest,
)
from repro.baselines.parsimony import is_cparsimony_counting_safe
from repro.core.evaluator import BOTTOM
from repro.datamodel.signature import RelationSignature, Schema
from repro.query.parser import parse_aggregation_query, parse_query
from repro.workloads.scenarios import theorem79_gadget
from tests.conftest import make_random_instance


class TestExhaustive:
    def test_fig1_range(self, stock_sum_query, stock_instance):
        assert ExhaustiveRangeSolver(stock_sum_query).range(stock_instance) == (
            Fraction(70),
            Fraction(96),
        )

    def test_value_on_repair_none_when_no_embedding(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Nobody', t), Stock(p, t, y)"
        )
        solver = ExhaustiveRangeSolver(query)
        repair = stock_instance.arbitrary_repair()
        assert solver.value_on_repair(repair) is None
        assert solver.range(stock_instance) == (BOTTOM, BOTTOM)

    def test_avg_supported(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "AVG(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        glb, lub = ExhaustiveRangeSolver(query).range(stock_instance)
        assert glb <= lub


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_exhaustive_for_sum(self, two_atom_schema, seed):
        query = parse_aggregation_query(two_atom_schema, "SUM(r) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed + 40)
        exhaustive = ExhaustiveRangeSolver(query).range(instance)
        solver = BranchAndBoundSolver(query)
        assert solver.range(instance) == exhaustive

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_exhaustive_for_avg(self, two_atom_schema, seed):
        query = parse_aggregation_query(two_atom_schema, "AVG(r) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed + 70)
        exhaustive = ExhaustiveRangeSolver(query).range(instance)
        assert BranchAndBoundSolver(query).range(instance) == exhaustive

    @pytest.mark.parametrize("seed", range(6))
    def test_pruning_does_not_change_results(self, two_atom_schema, seed):
        query = parse_aggregation_query(two_atom_schema, "SUM(r) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed + 110)
        pruned = BranchAndBoundSolver(query, use_pruning=True).range(instance)
        plain = BranchAndBoundSolver(query, use_pruning=False).range(instance)
        assert pruned == plain

    def test_bottom_detection(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)"
        )
        assert BranchAndBoundSolver(query).glb(stock_instance) is BOTTOM

    def test_binding_support(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        solver = BranchAndBoundSolver(query)
        expected = ExhaustiveRangeSolver(query).range(stock_instance, {"x": "James"})
        assert solver.range(stock_instance, {"x": "James"}) == expected


class TestFuxmanClasses:
    def test_fuxman_graph_edges(self, stock_schema):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        edges = fuxman_graph(query)
        assert [(s.relation, t.relation) for s, t in edges] == [("Dealers", "Stock")]

    def test_partial_join_not_in_cforest(self, stock_schema):
        # The intro query joins on part of Stock's key only: not in Cforest.
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        assert not is_cforest(query)

    def test_full_join_in_cforest(self):
        schema = Schema(
            [
                RelationSignature("Dealers", 2, 1),
                RelationSignature("Town", 2, 1, numeric_positions=(2,)),
            ]
        )
        query = parse_query(schema, "Dealers('Smith', t), Town(t, y)")
        assert is_cforest(query)

    def test_theorem79_query_in_caggforest(self):
        schema, _ = theorem79_gadget([("v1", "v2")])
        query = parse_aggregation_query(
            schema, "SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)"
        )
        assert is_caggforest(query)

    def test_caggforest_requires_supported_aggregate(self):
        schema, _ = theorem79_gadget([("v1", "v2")])
        query = parse_aggregation_query(
            schema, "AVG(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)"
        )
        assert not is_caggforest(query)

    def test_count_star_form(self):
        schema = Schema(
            [
                RelationSignature("Dealers", 2, 1),
                RelationSignature("Town", 2, 1),
            ]
        )
        query = parse_aggregation_query(schema, "COUNT(1) <- Dealers(x, t), Town(t, y)")
        assert is_caggforest(query)
        assert is_cparsimony_counting_safe(query)

    def test_cparsimony_rejects_partial_join_count(self, stock_schema):
        query = parse_aggregation_query(
            stock_schema, "COUNT(1) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        assert not is_cparsimony_counting_safe(query)

    def test_cparsimony_rejects_sum(self):
        schema = Schema(
            [
                RelationSignature("Dealers", 2, 1),
                RelationSignature("Town", 2, 1, numeric_positions=(2,)),
            ]
        )
        query = parse_aggregation_query(schema, "SUM(y) <- Dealers(x, t), Town(t, y)")
        assert not is_cparsimony_counting_safe(query)


class TestFuxmanSolver:
    def test_exact_on_nonnegative_cforest_query(self):
        schema = Schema(
            [
                RelationSignature("Dealers", 2, 1),
                RelationSignature("Town", 2, 1, numeric_positions=(2,)),
            ]
        )
        from repro.datamodel.instance import DatabaseInstance

        instance = DatabaseInstance.from_rows(
            schema,
            {
                "Dealers": [("Smith", "Boston"), ("Smith", "Paris"), ("James", "Boston")],
                "Town": [("Boston", 10), ("Boston", 20), ("Paris", 5)],
            },
        )
        query = parse_aggregation_query(schema, "SUM(y) <- Dealers('Smith', t), Town(t, y)")
        exact = ExhaustiveRangeSolver(query).range(instance)
        solver = FuxmanIndependentBlockSolver(query)
        assert solver.glb(instance) == exact[0]
        assert solver.lub(instance) == exact[1]

    def test_theorem79_flaw_reproduced(self):
        schema, instance = theorem79_gadget(
            [("v1", "v2"), ("v2", "v3"), ("v1", "v3")]
        )
        query = parse_aggregation_query(
            schema, "SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)"
        )
        exact = BranchAndBoundSolver(query, use_pruning=False).glb(instance)
        fuxman = FuxmanIndependentBlockSolver(query).glb(instance)
        assert fuxman != exact

    def test_bottom_detection(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)"
        )
        assert FuxmanIndependentBlockSolver(query).glb(stock_instance) is BOTTOM
