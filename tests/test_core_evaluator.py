"""Tests for the operational GLB evaluator (Theorem 6.1 / Appendix H)."""

from fractions import Fraction

import pytest

from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.core.evaluator import BOTTOM, OperationalRangeEvaluator
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import NotRewritableError, UnsupportedAggregateError
from repro.query.parser import parse_aggregation_query
from tests.conftest import make_random_instance


class TestPaperExamples:
    def test_fig1_intro_query_glb_is_70(self, stock_sum_query, stock_instance):
        assert OperationalRangeEvaluator(stock_sum_query).glb(stock_instance) == Fraction(70)

    def test_running_example_glb_is_9(self, running_query, running_instance):
        assert OperationalRangeEvaluator(running_query).glb(running_instance) == Fraction(9)

    def test_count_variant_of_running_example(self, running_schema, running_instance):
        query = parse_aggregation_query(
            running_schema, "COUNT(1) <- R(x,y), S(y,z,'d',r)"
        )
        expected = ExhaustiveRangeSolver(query).glb(running_instance)
        assert OperationalRangeEvaluator(query).glb(running_instance) == expected

    def test_max_variant_of_running_example(self, running_schema, running_instance):
        query = parse_aggregation_query(
            running_schema, "MAX(r) <- R(x,y), S(y,z,'d',r)"
        )
        expected = ExhaustiveRangeSolver(query).glb(running_instance)
        assert OperationalRangeEvaluator(query).glb(running_instance) == expected


class TestBottom:
    def test_bottom_when_query_not_certain(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock('Tesla Y', t, y)"
        )
        # Smith may operate in New York where only Tesla Y is stocked, or in
        # Boston; either way Tesla Y is stocked, so this one is certain.
        assert OperationalRangeEvaluator(query).glb(stock_instance) is not BOTTOM

        uncertain = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)"
        )
        # If Smith operates in New York there is no Tesla X stock: ⊥.
        assert OperationalRangeEvaluator(uncertain).glb(stock_instance) is BOTTOM

    def test_bottom_is_falsy_singleton(self):
        assert not BOTTOM
        assert repr(BOTTOM) == "⊥"
        assert type(BOTTOM)() is BOTTOM

    def test_bottom_on_empty_database(self, stock_schema, stock_sum_query):
        empty = DatabaseInstance(stock_schema)
        assert OperationalRangeEvaluator(stock_sum_query).glb(empty) is BOTTOM


class TestValidation:
    def test_cyclic_attack_graph_rejected(self):
        schema = Schema(
            [
                RelationSignature("U", 2, 1, numeric_positions=(2,)),
                RelationSignature("V", 2, 1),
            ]
        )
        query = parse_aggregation_query(schema, "SUM(y) <- U(x, y), V(y, x)")
        with pytest.raises(NotRewritableError):
            OperationalRangeEvaluator(query)

    def test_non_monotone_aggregate_rejected(self, running_schema):
        query = parse_aggregation_query(
            running_schema, "AVG(r) <- R(x,y), S(y,z,'d',r)"
        )
        with pytest.raises(UnsupportedAggregateError):
            OperationalRangeEvaluator(query)

    def test_order_property_is_topological(self, running_query):
        evaluator = OperationalRangeEvaluator(running_query)
        assert [a.relation for a in evaluator.order] == ["R", "S"]


class TestAgainstExhaustiveGroundTruth:
    @pytest.mark.parametrize("seed", range(15))
    def test_sum_glb_matches_exhaustive_on_random_instances(
        self, two_atom_schema, seed
    ):
        query = parse_aggregation_query(two_atom_schema, "SUM(r) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed)
        expected = ExhaustiveRangeSolver(query).glb(instance)
        measured = OperationalRangeEvaluator(query).glb(instance)
        assert measured == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_count_glb_matches_exhaustive_on_random_instances(
        self, two_atom_schema, seed
    ):
        query = parse_aggregation_query(two_atom_schema, "COUNT(1) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed + 100)
        expected = ExhaustiveRangeSolver(query).glb(instance)
        assert OperationalRangeEvaluator(query).glb(instance) == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_max_glb_matches_exhaustive_on_random_instances(
        self, two_atom_schema, seed
    ):
        query = parse_aggregation_query(two_atom_schema, "MAX(r) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed + 200)
        expected = ExhaustiveRangeSolver(query).glb(instance)
        assert OperationalRangeEvaluator(query).glb(instance) == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_single_atom_sum(self, seed):
        schema = Schema([RelationSignature("R", 2, 1, numeric_positions=(2,))])
        query = parse_aggregation_query(schema, "SUM(r) <- R(x, r)")
        instance = make_random_instance(schema, seed, facts_per_relation=7)
        expected = ExhaustiveRangeSolver(query).glb(instance)
        assert OperationalRangeEvaluator(query).glb(instance) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_three_atom_chain_sum(self, seed):
        schema = Schema(
            [
                RelationSignature("A", 2, 1),
                RelationSignature("B", 2, 1),
                RelationSignature("C", 2, 1, numeric_positions=(2,)),
            ]
        )
        query = parse_aggregation_query(schema, "SUM(r) <- A(x, y), B(y, z), C(z, r)")
        instance = make_random_instance(schema, seed, facts_per_relation=5)
        expected = ExhaustiveRangeSolver(query).glb(instance)
        assert OperationalRangeEvaluator(query).glb(instance) == expected


class TestGroupByBindings:
    def test_glb_for_binding(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        evaluator = OperationalRangeEvaluator(query)
        assert evaluator.glb_for_binding(stock_instance, {"x": "James"}) == Fraction(70)
        assert evaluator.glb_for_binding(stock_instance, {"x": "Smith"}) == Fraction(70)
        assert evaluator.glb_for_binding(stock_instance, {"x": "Nobody"}) is BOTTOM
