"""Tests for the SQL SELECT-FROM-WHERE-GROUP BY parser."""

import pytest

from repro.exceptions import ParseError
from repro.query.sqlparser import parse_sql_aggregation_query
from repro.query.terms import is_variable


class TestBasicParsing:
    def test_paper_group_by_query(self, stock_schema):
        sql = """
            SELECT D.Name, SUM(S.Qty)
            FROM Dealers AS D, Stock AS S
            WHERE D.Town = S.Town
            GROUP BY D.Name
        """
        query = parse_sql_aggregation_query(stock_schema, sql)
        assert query.aggregate == "SUM"
        assert len(query.body.atoms) == 2
        assert len(query.free_variables) == 1
        assert is_variable(query.aggregated_term)
        assert query.aggregated_term.numeric

    def test_constant_selection(self, stock_schema):
        sql = """
            SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S
            WHERE D.Town = S.Town AND D.Name = 'Smith'
        """
        query = parse_sql_aggregation_query(stock_schema, sql)
        dealers_atom = query.body.atom_for_relation("Dealers")
        assert "Smith" in dealers_atom.terms
        assert query.is_closed()

    def test_join_variable_shared_between_atoms(self, stock_schema):
        sql = "SELECT SUM(S.Qty) FROM Dealers D, Stock S WHERE D.Town = S.Town"
        query = parse_sql_aggregation_query(stock_schema, sql)
        dealers_town = query.body.atom_for_relation("Dealers").terms[1]
        stock_town = query.body.atom_for_relation("Stock").terms[1]
        assert dealers_town == stock_town

    def test_alias_defaults_to_relation_name(self, stock_schema):
        sql = "SELECT SUM(Qty) FROM Stock"
        query = parse_sql_aggregation_query(stock_schema, sql)
        assert query.body.atoms[0].relation == "Stock"

    def test_count_star(self, stock_schema):
        sql = "SELECT COUNT(*) FROM Stock"
        query = parse_sql_aggregation_query(stock_schema, sql)
        assert query.aggregate == "COUNT"
        assert query.aggregated_term == 1

    def test_numeric_literal_in_where(self, stock_schema):
        sql = "SELECT COUNT(*) FROM Stock WHERE Stock.Qty = 35"
        query = parse_sql_aggregation_query(stock_schema, sql)
        assert 35 in query.body.atoms[0].terms

    def test_case_insensitive_keywords(self, stock_schema):
        sql = "select sum(S.Qty) from Stock as S where S.Town = 'Boston'"
        query = parse_sql_aggregation_query(stock_schema, sql)
        assert query.aggregate == "SUM"

    def test_semicolon_tolerated(self, stock_schema):
        query = parse_sql_aggregation_query(stock_schema, "SELECT MAX(Qty) FROM Stock;")
        assert query.aggregate == "MAX"


class TestEquivalenceWithDatalogForm:
    def test_matches_hand_written_query(self, stock_schema, stock_instance):
        from repro.core.range_answers import compute_range_answer
        from repro.query.parser import parse_aggregation_query

        sql = """
            SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S
            WHERE D.Town = S.Town AND D.Name = 'Smith'
        """
        from_sql = parse_sql_aggregation_query(stock_schema, sql)
        from_datalog = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        assert (
            compute_range_answer(from_sql, stock_instance).as_tuple()
            == compute_range_answer(from_datalog, stock_instance).as_tuple()
        )


class TestErrors:
    def test_zero_aggregates_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_sql_aggregation_query(stock_schema, "SELECT Name FROM Dealers")

    def test_two_aggregates_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_sql_aggregation_query(
                stock_schema, "SELECT SUM(Qty), MAX(Qty) FROM Stock"
            )

    def test_unknown_column_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_sql_aggregation_query(stock_schema, "SELECT SUM(Price) FROM Stock")

    def test_ambiguous_column_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_sql_aggregation_query(
                stock_schema,
                "SELECT SUM(Qty) FROM Dealers AS D, Stock AS S WHERE Town = 'x'",
            )

    def test_duplicate_alias_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_sql_aggregation_query(
                stock_schema, "SELECT SUM(Qty) FROM Stock AS S, Dealers AS S"
            )

    def test_star_only_for_count(self, stock_schema):
        with pytest.raises(ParseError):
            parse_sql_aggregation_query(stock_schema, "SELECT SUM(*) FROM Stock")

    def test_contradictory_constants_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_sql_aggregation_query(
                stock_schema, "SELECT COUNT(*) FROM Stock WHERE 1 = 2"
            )
