"""Tests for valuations (restriction, extension, application)."""

import pytest

from repro.datamodel.valuation import EMPTY_VALUATION, Valuation


class TestValuationBasics:
    def test_mapping_protocol(self):
        valuation = Valuation({"x": 1, "y": "a"})
        assert valuation["x"] == 1
        assert len(valuation) == 2
        assert set(valuation) == {"x", "y"}
        assert "x" in valuation and "z" not in valuation

    def test_equality_with_dict_and_valuation(self):
        assert Valuation({"x": 1}) == Valuation({"x": 1})
        assert Valuation({"x": 1}) == {"x": 1}
        assert Valuation({"x": 1}) != Valuation({"x": 2})

    def test_hashable(self):
        assert len({Valuation({"x": 1}), Valuation({"x": 1})}) == 1

    def test_domain(self):
        assert Valuation({"x": 1, "y": 2}).domain == frozenset({"x", "y"})

    def test_empty_valuation(self):
        assert len(EMPTY_VALUATION) == 0
        assert EMPTY_VALUATION.domain == frozenset()


class TestValuationOperations:
    def test_apply_maps_domain_variables(self):
        valuation = Valuation({"x": 1})
        assert valuation.apply("x") == 1

    def test_apply_is_identity_outside_domain(self):
        valuation = Valuation({"x": 1})
        assert valuation.apply("y") == "y"
        assert valuation.apply(42) == 42

    def test_restrict(self):
        valuation = Valuation({"x": 1, "y": 2, "z": 3})
        restricted = valuation.restrict({"x", "z"})
        assert restricted == {"x": 1, "z": 3}

    def test_restrict_to_missing_variables(self):
        assert Valuation({"x": 1}).restrict({"q"}) == {}

    def test_extend(self):
        valuation = Valuation({"x": 1})
        extended = valuation.extend({"y": 2})
        assert extended == {"x": 1, "y": 2}
        assert valuation == {"x": 1}

    def test_extend_consistent_overlap_allowed(self):
        assert Valuation({"x": 1}).extend({"x": 1, "y": 2}) == {"x": 1, "y": 2}

    def test_extend_conflict_rejected(self):
        with pytest.raises(ValueError):
            Valuation({"x": 1}).extend({"x": 2})

    def test_is_extension_of(self):
        small = Valuation({"x": 1})
        large = Valuation({"x": 1, "y": 2})
        assert large.is_extension_of(small)
        assert not small.is_extension_of(large)
        assert large.is_extension_of(EMPTY_VALUATION)

    def test_agrees_with(self):
        first = Valuation({"x": 1, "y": 2})
        second = Valuation({"x": 1, "y": 3})
        assert first.agrees_with(second, ["x"])
        assert not first.agrees_with(second, ["x", "y"])

    def test_project_tuple(self):
        valuation = Valuation({"x": 1, "y": 2})
        assert valuation.project_tuple(["y", "x"]) == (2, 1)

    def test_as_dict_returns_copy(self):
        valuation = Valuation({"x": 1})
        copy = valuation.as_dict()
        copy["x"] = 99
        assert valuation["x"] == 1
