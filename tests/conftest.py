"""Shared fixtures: the paper's example databases and small random instances."""

from __future__ import annotations

import os
import random

import pytest

from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.query.parser import parse_aggregation_query
from repro.workloads.scenarios import (
    fig1_stock_instance,
    fig1_stock_schema,
    fig3_running_example_instance,
    fig3_running_example_schema,
)


#: Environment knob for the base seed of every seeded test in the suite.
REPRO_TEST_SEED_ENV = "REPRO_TEST_SEED"


@pytest.fixture(scope="session")
def repro_seed() -> int:
    """Base seed for randomised tests (parity harness, fuzz-style tests).

    Every randomised test derives its instance seeds from this value (via
    :func:`repro.workloads.generators.derive_seed`), so a failure report
    quoting the seed is enough to reproduce the exact instance.  Override
    with ``REPRO_TEST_SEED=<int>`` to re-run the suite on a different slice
    of the input space — the default keeps CI deterministic.
    """
    raw = os.environ.get(REPRO_TEST_SEED_ENV, "").strip()
    if not raw:
        return 0
    try:
        return int(raw)
    except ValueError:
        raise pytest.UsageError(
            f"{REPRO_TEST_SEED_ENV} must be an integer, got {raw!r}"
        )


@pytest.fixture
def stock_schema() -> Schema:
    return fig1_stock_schema()


@pytest.fixture
def stock_instance() -> DatabaseInstance:
    return fig1_stock_instance()


@pytest.fixture
def stock_sum_query(stock_schema):
    return parse_aggregation_query(
        stock_schema, "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
    )


@pytest.fixture
def running_schema() -> Schema:
    return fig3_running_example_schema()


@pytest.fixture
def running_instance() -> DatabaseInstance:
    return fig3_running_example_instance()


@pytest.fixture
def running_query(running_schema):
    return parse_aggregation_query(
        running_schema, "SUM(r) <- R(x,y), S(y,z,'d',r)"
    )


@pytest.fixture
def two_atom_schema() -> Schema:
    """Schema for R(x, y), S(y, z, r) with a numeric last column of S."""
    return Schema(
        [
            RelationSignature("R", 2, 1, attribute_names=("a", "b")),
            RelationSignature(
                "S", 3, 1, numeric_positions=(3,), attribute_names=("c", "d", "e")
            ),
        ]
    )


def make_random_instance(
    schema: Schema,
    seed: int,
    facts_per_relation: int = 6,
    domain_size: int = 3,
    max_value: int = 5,
) -> DatabaseInstance:
    """Small random instance over ``schema`` (used by property-style tests).

    Domain values are ``d0..d{domain_size-1}`` for non-numeric columns and
    small integers for numeric columns, so primary-key violations appear with
    high probability.
    """
    rng = random.Random(seed)
    instance = DatabaseInstance(schema)
    for signature in schema:
        for _ in range(facts_per_relation):
            values = []
            for position in range(1, signature.arity + 1):
                if signature.is_numeric(position):
                    values.append(rng.randint(0, max_value))
                else:
                    values.append(f"d{rng.randint(0, domain_size - 1)}")
            instance.add_row(signature.name, *values)
    return instance


@pytest.fixture
def random_instance_factory(two_atom_schema):
    """Factory fixture: ``factory(seed)`` returns a small random instance."""

    def factory(seed: int, **kwargs) -> DatabaseInstance:
        return make_random_instance(two_atom_schema, seed, **kwargs)

    return factory
