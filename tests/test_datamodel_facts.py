"""Tests for facts and numeric-constant helpers."""

from fractions import Fraction

import pytest

from repro.datamodel.facts import Fact, as_fraction, is_numeric_constant


class TestFact:
    def test_equality_and_hash(self):
        assert Fact("R", ("a", 1)) == Fact("R", ("a", 1))
        assert hash(Fact("R", ("a", 1))) == hash(Fact("R", ("a", 1)))
        assert Fact("R", ("a", 1)) != Fact("R", ("a", 2))
        assert Fact("R", ("a", 1)) != Fact("S", ("a", 1))

    def test_arity(self):
        assert Fact("R", ("a", "b", "c")).arity == 3

    def test_key_projection(self):
        fact = Fact("Stock", ("Tesla X", "Boston", 35))
        assert fact.key(2) == ("Tesla X", "Boston")
        assert fact.key(1) == ("Tesla X",)

    def test_key_equality(self):
        first = Fact("Stock", ("Tesla X", "Boston", 35))
        second = Fact("Stock", ("Tesla X", "Boston", 40))
        third = Fact("Stock", ("Tesla Y", "Boston", 35))
        assert first.is_key_equal(second, 2)
        assert not first.is_key_equal(third, 2)

    def test_key_equality_requires_same_relation(self):
        assert not Fact("R", ("a",)).is_key_equal(Fact("S", ("a",)), 1)

    def test_values_stored_as_tuple(self):
        fact = Fact("R", ["a", "b"])
        assert isinstance(fact.values, tuple)

    def test_str_rendering(self):
        assert str(Fact("R", ("a", 1))) == "R('a', 1)"


class TestNumericHelpers:
    def test_is_numeric_constant(self):
        assert is_numeric_constant(3)
        assert is_numeric_constant(3.5)
        assert is_numeric_constant(Fraction(1, 2))
        assert not is_numeric_constant("3")
        assert not is_numeric_constant(True)

    def test_as_fraction_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_as_fraction_fraction_identity(self):
        value = Fraction(7, 3)
        assert as_fraction(value) is value

    def test_as_fraction_float(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_as_fraction_rejects_strings(self):
        with pytest.raises(TypeError):
            as_fraction("3")
