"""Differential parity harness: sharded execution must equal unsharded, exactly.

The sharded executor (``repro.engine.sharding``) is only allowed to exist
because it is *indistinguishable* from the unsharded engine: for every
workload scenario, every backend and every shard count, ``answer(...,
shards=N)`` must return the very same Fraction-exact bounds (and the very
same GROUP BY keys and ⊥ cases) as ``answer(...)``.  A wrong merge would
silently corrupt glb/lub bounds, so this harness is the tentpole's safety
net, not an afterthought.

Scenario seeds derive from the session ``repro_seed`` fixture via
``derive_seed``, so every failure message pins the exact instance that
produced it (re-run with ``REPRO_TEST_SEED=<seed>`` to explore other
slices deterministically).
"""

from __future__ import annotations

import asyncio
from fractions import Fraction

import pytest

from repro.core.evaluator import BOTTOM
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.embeddings.embeddings import embeddings_of
from repro.engine import AnswerOptions, ConsistentAnswerEngine, ShardPlanner
from repro.engine.sharding import STRATEGY_BALANCED, STRATEGY_HASHED
from repro.query.parser import parse_aggregation_query
from repro.workloads.generators import (
    InconsistentDatabaseGenerator,
    WorkloadSpec,
    derive_seed,
)
from repro.workloads.queries import (
    stock_count_query,
    stock_groupby_query,
    stock_query,
    stock_sum_query,
    stock_total_query,
    stock_town_groupby_query,
)
from repro.workloads.scenarios import (
    fig1_stock_instance,
    fig3_running_example_instance,
    fig3_running_example_schema,
)

from tests.conftest import make_random_instance

BACKENDS = ("operational", "sqlite", "branch_and_bound")
SHARD_COUNTS = (1, 2, 3, 7)


def _engine(backend: str) -> ConsistentAnswerEngine:
    return ConsistentAnswerEngine(backend=backend)


def _assert_exact(answer) -> None:
    """Every bound is ⊥ or an exact Fraction — never a float."""
    for value in (answer.glb, answer.lub):
        assert value is BOTTOM or isinstance(value, Fraction), repr(value)


def assert_parity(engine, query, instance, shard_counts=SHARD_COUNTS, label=""):
    """The harness core: sharded == unsharded for every shard count."""
    if query.free_variables:
        baseline = engine.answer_group_by(query, instance)
        for answer in baseline.values():
            _assert_exact(answer)
        for shards in shard_counts:
            sharded = engine.answer_group_by(
                query, instance, AnswerOptions(shards=shards)
            )
            assert sharded == baseline, (
                f"{label}: GROUP BY parity broken for shards={shards}, "
                f"query={query}"
            )
            assert list(sharded) == list(baseline), (
                f"{label}: group order changed for shards={shards}"
            )
    else:
        baseline = engine.answer(query, instance)
        _assert_exact(baseline)
        for shards in shard_counts:
            sharded = engine.answer(
                query, instance, options=AnswerOptions(shards=shards)
            )
            assert sharded == baseline, (
                f"{label}: parity broken for shards={shards}, query={query}: "
                f"{sharded} != {baseline}"
            )
    return baseline


# -- worked examples (Fig. 1 and Fig. 3) ------------------------------------------------


class TestWorkedExampleParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stock_queries_all_aggregates(self, backend):
        engine = _engine(backend)
        instance = fig1_stock_instance()
        for query in (
            stock_sum_query(),
            stock_count_query(),
            stock_query("MIN"),
            stock_query("MAX"),
            stock_total_query("SUM"),
            stock_total_query("MIN"),
            stock_total_query("MAX"),
        ):
            assert_parity(engine, query, instance, label=f"fig1/{backend}")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stock_group_by(self, backend):
        engine = _engine(backend)
        # Extend Fig. 1 with a dealer whose second possible town has no
        # stock: Jones's group answer is ⊥, and ⊥ groups must survive
        # sharding bit-for-bit.
        instance = fig1_stock_instance()
        instance.add_row("Dealers", "Jones", "Boston")
        instance.add_row("Dealers", "Jones", "Nowhere")
        answers = assert_parity(
            engine, stock_groupby_query(), instance, label=f"fig1-gb/{backend}"
        )
        assert any(answer.is_bottom for answer in answers.values())
        assert any(not answer.is_bottom for answer in answers.values())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_running_example(self, backend):
        engine = _engine(backend)
        query = parse_aggregation_query(
            fig3_running_example_schema(), "SUM(r) <- R(x,y), S(y,z,'d',r)"
        )
        assert_parity(
            engine, query, fig3_running_example_instance(), label=f"fig3/{backend}"
        )


# -- generated workloads ----------------------------------------------------------------


def _workload(
    seed: int,
    stock_facts: int = 24,
    inconsistency: float = 0.3,
    extra_facts_per_block: int = 2,
    max_inconsistent: int = None,
):
    """A small generated workload instance, deterministic in ``seed``.

    ``max_inconsistent`` bounds the number of inconsistent blocks by
    regenerating under derived sub-seeds until the bound holds: the
    branch_and_bound baseline is exponential in that count, so tests that
    run it over the *whole* relation must stay seed-robust — whatever base
    seed CI picks, the search space stays small.  The retry loop is
    deterministic (sub-seeds derive from ``seed``) and in practice exits
    within a few attempts.
    """
    spec = WorkloadSpec(
        dealers=8,
        products=6,
        towns=5,
        stock_facts=stock_facts,
        inconsistency=inconsistency,
        extra_facts_per_block=extra_facts_per_block,
        seed=seed,
    )
    generator = InconsistentDatabaseGenerator(spec)
    instance = generator.generate()
    if max_inconsistent is None:
        return instance
    attempt = 0
    while len(instance.inconsistent_blocks()) > max_inconsistent:
        attempt += 1
        assert attempt < 64, "workload shape cannot satisfy the bound"
        instance = generator.generate(seed=derive_seed(seed, "retry", attempt))
    return instance


class TestGeneratedWorkloadParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dealer_join_queries(self, backend, repro_seed):
        engine = _engine(backend)
        instance = _workload(
            derive_seed(repro_seed, "dealer-join", backend), max_inconsistent=8
        )
        for dealer in ("dealer0", "dealer3"):
            assert_parity(
                engine,
                stock_sum_query(dealer),
                instance,
                label=f"workload/{backend}/{dealer}",
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_whole_relation_queries(self, backend, repro_seed):
        engine = _engine(backend)
        # Keep the open-block count small and *bounded*: lub(SUM) has no
        # rewriting (Theorem 7.8), so its baseline branches over every
        # inconsistent block of the whole relation.
        instance = _workload(
            derive_seed(repro_seed, "whole-relation", backend),
            stock_facts=18,
            inconsistency=0.25,
            extra_facts_per_block=1,
            max_inconsistent=7,
        )
        for aggregate in ("SUM", "MIN", "MAX", "COUNT"):
            query = (
                stock_count_query()
                if aggregate == "COUNT"
                else stock_total_query(aggregate)
            )
            assert_parity(
                engine, query, instance, label=f"workload-total/{backend}/{aggregate}"
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_group_by_workloads(self, backend, repro_seed):
        engine = _engine(backend)
        instance = _workload(
            derive_seed(repro_seed, "group-by", backend), max_inconsistent=8
        )
        for query in (stock_groupby_query(), stock_town_groupby_query()):
            assert_parity(engine, query, instance, label=f"workload-gb/{backend}")


# -- random instances: ⊥ cases and locally uncertain shards -----------------------------


_TWO_ATOM_SCHEMA = Schema(
    [
        RelationSignature("R", 2, 1, attribute_names=("a", "b")),
        RelationSignature(
            "S", 3, 1, numeric_positions=(3,), attribute_names=("c", "d", "e")
        ),
    ]
)

_TWO_ATOM_QUERIES = tuple(
    parse_aggregation_query(_TWO_ATOM_SCHEMA, text)
    for text in (
        "SUM(e) <- R(x,y), S(y,z,e)",
        "COUNT(1) <- R(x,y), S(y,z,e)",
        "MIN(e) <- R(x,y), S(y,z,e)",
        "MAX(e) <- R(x,y), S(y,z,e)",
        "AVG(e) <- R(x,y), S(y,z,e)",
        "COUNT_DISTINCT(e) <- R(x,y), S(y,z,e)",
        "(x, SUM(e)) <- R(x,y), S(y,z,e)",
    )
)

SUMMARY_AGGREGATE_NAMES = ("AVG", "PRODUCT", "COUNT_DISTINCT", "SUM_DISTINCT")


class TestRandomInstanceParity:
    """Sparse random instances hit the cases structured workloads miss:
    bodies that are not certain (⊥ answers) and shards whose body is not
    *locally* certain (the empty-repair merge cases)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sparse_instances(self, backend, repro_seed):
        engine = _engine(backend)
        # Seeds are backend-independent on purpose: the three backends see
        # the same instances, which makes this a three-way differential test.
        for trial in range(6):
            seed = derive_seed(repro_seed, "sparse", trial)
            instance = make_random_instance(
                _TWO_ATOM_SCHEMA, seed, facts_per_relation=4, domain_size=4
            )
            for query in _TWO_ATOM_QUERIES:
                assert_parity(
                    engine,
                    query,
                    instance,
                    label=f"sparse/{backend}/seed={seed}",
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bottom_instances(self, backend, repro_seed):
        """Parity on instances whose closed answers are ⊥ — found by a
        deterministic scan over derived seeds, so the ⊥ path is exercised
        whatever base seed CI picks."""
        probe = ConsistentAnswerEngine()
        closed = [q for q in _TWO_ATOM_QUERIES if not q.free_variables]
        found = []
        for trial in range(64):
            seed = derive_seed(repro_seed, "bottom-scan", trial)
            instance = make_random_instance(
                _TWO_ATOM_SCHEMA, seed, facts_per_relation=3, domain_size=5
            )
            if probe.answer(closed[0], instance).is_bottom:
                found.append((seed, instance))
            if len(found) == 3:
                break
        assert found, "no ⊥ instance in 64 derived seeds; shape too dense"
        engine = _engine(backend)
        for seed, instance in found:
            for query in _TWO_ATOM_QUERIES:
                baseline = assert_parity(
                    engine, query, instance, label=f"bottom/{backend}/seed={seed}"
                )
                if not query.free_variables:
                    assert baseline.is_bottom

    def test_uncertain_shard_contributes_through_merge(self):
        """Full instance certain, one component locally uncertain: the
        uncertain component must contribute 0/value to SUM, ±∞-style
        neutrality to MIN/MAX — exactly as the unsharded answer does."""
        schema = Schema(
            [
                RelationSignature("R", 2, 1, attribute_names=("a", "b")),
                RelationSignature(
                    "S", 2, 1, numeric_positions=(2,), attribute_names=("c", "v")
                ),
            ]
        )
        instance = DatabaseInstance.from_rows(
            schema,
            {
                "R": [("a1", "b1"), ("a2", "b2"), ("a2", "b3")],
                "S": [("b1", 5), ("b2", 7)],
            },
        )
        engine = ConsistentAnswerEngine()
        expected = {
            "SUM(v)": (Fraction(5), Fraction(12)),
            "MIN(v)": (Fraction(5), Fraction(5)),
            "MAX(v)": (Fraction(5), Fraction(7)),
            "COUNT(1)": (Fraction(1), Fraction(2)),
        }
        for head, (glb, lub) in expected.items():
            query = parse_aggregation_query(schema, f"{head} <- R(x,y), S(y,v)")
            baseline = engine.answer(query, instance)
            assert (baseline.glb, baseline.lub) == (glb, lub)
            assert_parity(engine, query, instance, label=f"uncertain/{head}")


# -- structural invariants of the planner -----------------------------------------------


class TestShardPlanStructure:
    def _plan(self, query, instance, shards, strategy=STRATEGY_BALANCED):
        engine = ConsistentAnswerEngine()
        plan = engine.compile(query)
        return ShardPlanner(strategy).plan(plan.query, instance, shards)

    @pytest.mark.parametrize("strategy", [STRATEGY_BALANCED, STRATEGY_HASHED])
    def test_partition_is_exact_and_block_closed(self, strategy, repro_seed):
        instance = _workload(derive_seed(repro_seed, "structure", strategy))
        query = stock_sum_query("dealer0")
        shard_plan = self._plan(query, instance, 3, strategy)
        assert shard_plan.is_sharded
        # Every fact lands in exactly one shard.
        all_facts = [fact for shard in shard_plan.shards for fact in shard]
        assert len(all_facts) == len(instance)
        assert set(all_facts) == set(instance.facts)
        # Blocks are never split across shards.
        for block in instance.blocks():
            owners = {
                index
                for index, shard in enumerate(shard_plan.shards)
                for fact in block
                if fact in shard
            }
            assert len(owners) == 1, f"block {sorted(block, key=repr)} split"

    def test_partition_is_embedding_closed(self, repro_seed):
        instance = _workload(derive_seed(repro_seed, "embedding-closed"))
        for query in (stock_sum_query("dealer0"), stock_groupby_query()):
            engine = ConsistentAnswerEngine()
            plan = engine.compile(query)
            shard_plan = ShardPlanner().plan(plan.query, instance, 4)
            total = len(embeddings_of(plan.query.body, instance))
            per_shard = sum(
                len(embeddings_of(plan.query.body, shard))
                for shard in shard_plan.shards
            )
            # No embedding is lost and none spans two shards.
            assert per_shard == total

    def test_balanced_strategy_balances_weights(self, repro_seed):
        instance = _workload(derive_seed(repro_seed, "balance"), stock_facts=40)
        shard_plan = self._plan(stock_total_query(), instance, 4)
        assert shard_plan.is_sharded
        weights = shard_plan.weights
        assert sum(weights) == len(instance)
        # Single-block components over ~40 blocks: greedy stays within one
        # maximal block size of perfect balance.
        assert max(weights) - min(weights) <= max(
            len(block) for block in instance.blocks()
        )

    def test_hashed_strategy_is_stable(self, repro_seed):
        instance = _workload(derive_seed(repro_seed, "hash-stable"))
        query = stock_total_query()
        first = self._plan(query, instance, 3, STRATEGY_HASHED)
        second = self._plan(query, instance, 3, STRATEGY_HASHED)
        assert [s.facts for s in first.shards] == [s.facts for s in second.shards]

    def test_more_shards_than_components_leaves_empty_shards(self):
        instance = fig1_stock_instance()
        shard_plan = self._plan(stock_total_query(), instance, 7)
        assert shard_plan.is_sharded
        assert len(shard_plan.shards) == 7
        assert 0 in shard_plan.weights

    def test_hashed_strategy_parity(self, repro_seed):
        from repro.engine.sharding import execute_sharded

        instance = _workload(derive_seed(repro_seed, "hash-parity"))
        engine = ConsistentAnswerEngine()
        for query in (stock_total_query(), stock_sum_query("dealer0")):
            baseline = engine.answer(query, instance)
            sharded = execute_sharded(
                engine, query, instance, 3, binding={}, strategy=STRATEGY_HASHED
            )
            assert sharded == baseline


# -- shard-plan cache -------------------------------------------------------------------


class TestShardPlanCache:
    def setup_method(self):
        from repro.engine import clear_shard_plan_cache

        clear_shard_plan_cache()

    def test_repeat_requests_reuse_the_partition(self, monkeypatch):
        from repro.engine import shard_plan_cache_stats

        calls = []
        original = ShardPlanner.plan

        def counting_plan(self, query, instance, shards):
            calls.append(shards)
            return original(self, query, instance, shards)

        monkeypatch.setattr(ShardPlanner, "plan", counting_plan)
        engine = ConsistentAnswerEngine()
        instance = fig1_stock_instance()
        query = stock_total_query()
        first = engine.answer(query, instance, options=AnswerOptions(shards=3))
        assert engine.answer(query, instance, options=AnswerOptions(shards=3)) == first
        assert engine.answer(query, instance, options=AnswerOptions(shards=3)) == first
        # One partition computation, two cache hits (the serving pattern:
        # many requests against one registered instance).
        assert len(calls) == 1
        assert shard_plan_cache_stats()["hits"] == 2
        # A different shard count is a different partition.
        engine.answer(query, instance, options=AnswerOptions(shards=2))
        assert len(calls) == 2

    def test_mutated_instance_invalidates_the_cached_partition(self):
        engine = ConsistentAnswerEngine()
        instance = fig1_stock_instance()
        query = stock_total_query()
        before = engine.answer(query, instance, options=AnswerOptions(shards=3))
        instance.add_row("Stock", "Tesla Z", "Chicago", 400)
        after = engine.answer(query, instance, options=AnswerOptions(shards=3))
        assert after == engine.answer(query, instance)
        assert after != before  # the new fact raised the MAX/SUM bounds


# -- process fan-out --------------------------------------------------------------------


class TestParallelShardExecution:
    """The process-pool path must agree with the serial path (workers build
    their own engines from config and summaries cross a pickle boundary)."""

    def test_process_pool_parity(self, repro_seed):
        from repro.engine.sharding import execute_sharded

        instance = _workload(derive_seed(repro_seed, "parallel"), stock_facts=40)
        engine = ConsistentAnswerEngine(batch_workers=3)
        query = stock_total_query("MAX")
        baseline = engine.answer(query, instance)
        parallel = execute_sharded(
            engine, query, instance, 3, binding={}, max_workers=3
        )
        assert parallel == baseline
        group_query = stock_town_groupby_query()
        group_baseline = engine.answer_group_by(group_query, instance)
        group_parallel = execute_sharded(
            engine, group_query, instance, 3, max_workers=3
        )
        assert group_parallel == group_baseline


# -- summary-state aggregates (AVG / PRODUCT / DISTINCT) --------------------------------


class TestSummaryAggregateParity:
    """The lifted aggregates ride on summary states instead of scalar
    monoid values; the same harness must hold: sharded == unsharded for
    every backend, every shard count, ⊥ groups, empty shards and the
    pickled pool path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worked_example(self, backend):
        engine = _engine(backend)
        instance = fig1_stock_instance()
        for aggregate in SUMMARY_AGGREGATE_NAMES:
            for query in (stock_query(aggregate), stock_total_query(aggregate)):
                assert_parity(
                    engine, query, instance, label=f"fig1/{backend}/{aggregate}"
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_generated_workloads(self, backend, repro_seed):
        engine = _engine(backend)
        instance = _workload(
            derive_seed(repro_seed, "summary-workload", backend),
            stock_facts=18,
            inconsistency=0.25,
            extra_facts_per_block=1,
            max_inconsistent=6,
        )
        for aggregate in SUMMARY_AGGREGATE_NAMES:
            assert_parity(
                engine,
                stock_total_query(aggregate),
                instance,
                label=f"summary-workload/{backend}/{aggregate}",
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_group_by_with_bottom_groups(self, backend):
        engine = _engine(backend)
        instance = fig1_stock_instance()
        # Jones's only possible towns include one with no stock: the body is
        # not certain in that group, so its answer is ⊥ and must stay ⊥
        # through the summary-state merge.
        instance.add_row("Dealers", "Jones", "Boston")
        instance.add_row("Dealers", "Jones", "Nowhere")
        for aggregate in SUMMARY_AGGREGATE_NAMES:
            query = parse_aggregation_query(
                instance.schema, f"(d, {aggregate}(y)) <- Dealers(d, t), Stock(p, t, y)"
            )
            answers = assert_parity(
                engine, query, instance, label=f"summary-gb/{backend}/{aggregate}"
            )
            assert any(answer.is_bottom for answer in answers.values())
            assert any(not answer.is_bottom for answer in answers.values())

    def test_empty_shards_merge_as_identity(self):
        # 7 shards over Fig. 1's handful of components leaves empty shards;
        # their summaries must be neutral in the merge.
        engine = ConsistentAnswerEngine()
        instance = fig1_stock_instance()
        for aggregate in SUMMARY_AGGREGATE_NAMES:
            assert_parity(
                engine,
                stock_total_query(aggregate),
                instance,
                shard_counts=(7,),
                label=f"empty-shards/{aggregate}",
            )

    def test_negative_and_zero_values(self):
        """PRODUCT sign flips and SUM_DISTINCT's negative-value pruning
        guard need mixed-sign domains, which the stock workloads never
        produce."""
        schema = Schema(
            [
                RelationSignature("R", 2, 1, attribute_names=("a", "b")),
                RelationSignature(
                    "S", 2, 1, numeric_positions=(2,), attribute_names=("c", "v")
                ),
            ]
        )
        instance = DatabaseInstance.from_rows(
            schema,
            {
                "R": [("a1", "b1"), ("a1", "b2"), ("a2", "b2"), ("a2", "b3")],
                "S": [("b1", -2), ("b1", 3), ("b2", -5), ("b2", 0), ("b3", 7)],
            },
        )
        engine = ConsistentAnswerEngine()
        for aggregate in SUMMARY_AGGREGATE_NAMES:
            query = parse_aggregation_query(schema, f"{aggregate}(v) <- R(x,y), S(y,v)")
            assert_parity(engine, query, instance, label=f"signed/{aggregate}")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_random_instances(self, backend, repro_seed):
        engine = _engine(backend)
        for trial in range(3):
            seed = derive_seed(repro_seed, "summary-sparse", trial)
            instance = make_random_instance(
                _TWO_ATOM_SCHEMA, seed, facts_per_relation=4, domain_size=4
            )
            for aggregate in SUMMARY_AGGREGATE_NAMES:
                query = parse_aggregation_query(
                    _TWO_ATOM_SCHEMA, f"{aggregate}(e) <- R(x,y), S(y,z,e)"
                )
                assert_parity(
                    engine,
                    query,
                    instance,
                    label=f"summary-sparse/{backend}/{aggregate}/seed={seed}",
                )

    def test_fork_pool_parity(self, repro_seed):
        """Summaries cross a pickle boundary into fork-pool workers."""
        from repro.engine.sharding import execute_sharded

        instance = _workload(
            derive_seed(repro_seed, "summary-parallel"),
            stock_facts=18,
            inconsistency=0.25,
            extra_facts_per_block=1,
            max_inconsistent=6,
        )
        engine = ConsistentAnswerEngine(batch_workers=3)
        for aggregate in SUMMARY_AGGREGATE_NAMES:
            query = stock_total_query(aggregate)
            baseline = engine.answer(query, instance)
            parallel = execute_sharded(
                engine, query, instance, 3, binding={}, max_workers=3
            )
            assert parallel == baseline, aggregate
        group_query = parse_aggregation_query(
            instance.schema, "(t, AVG(y)) <- Stock(p, t, y)"
        )
        group_baseline = engine.answer_group_by(group_query, instance)
        group_parallel = execute_sharded(
            engine, group_query, instance, 3, max_workers=3
        )
        assert group_parallel == group_baseline

    def test_worker_pool_parity(self, repro_seed):
        """The long-lived worker pool reuses adopted instances; its workers
        return pickled summary states that must re-merge identically."""
        from repro.engine.workers import WorkerPool

        instance = _workload(
            derive_seed(repro_seed, "summary-pool"),
            stock_facts=18,
            inconsistency=0.25,
            extra_facts_per_block=1,
            max_inconsistent=6,
        )
        engine = ConsistentAnswerEngine()
        pool = WorkerPool(workers=2)
        pool.start()
        try:
            engine.set_worker_pool(pool)
            for aggregate in SUMMARY_AGGREGATE_NAMES:
                query = stock_total_query(aggregate)
                baseline = engine.answer(query, instance)
                assert engine.answer(query, instance, options=AnswerOptions(shards=3)) == baseline, aggregate
        finally:
            pool.shutdown()


# -- fallbacks --------------------------------------------------------------------------


class TestShardingFallbacks:
    def test_summary_aggregates_shard_without_fallback(self):
        """AVG/PRODUCT/DISTINCT used to force the unsharded fallback; with
        mergeable summary states they shard like every other aggregate."""
        instance = fig1_stock_instance()
        engine = ConsistentAnswerEngine()
        for aggregate in SUMMARY_AGGREGATE_NAMES:
            query = stock_query(aggregate)
            assert ShardPlanner.fallback_reason(query) is None
            baseline = engine.answer(query, instance)
            assert engine.answer(query, instance, options=AnswerOptions(shards=4)) == baseline
        stats = engine.shard_stats()
        assert stats["fallbacks"] == 0
        assert stats["sharded"] == len(SUMMARY_AGGREGATE_NAMES)
        for aggregate in SUMMARY_AGGREGATE_NAMES:
            assert aggregate in stats["shardable_aggregates"]

    def test_unknown_aggregate_reports_reason(self):
        query = stock_query("SUM").with_aggregate("MEDIAN")
        reason = ShardPlanner.fallback_reason(query)
        assert reason is not None and "MEDIAN" in reason

    def test_cartesian_product_falls_back(self):
        schema = Schema(
            [
                RelationSignature("A", 1, 1, attribute_names=("a",)),
                RelationSignature(
                    "B", 2, 1, numeric_positions=(2,), attribute_names=("b", "v")
                ),
            ]
        )
        query = parse_aggregation_query(schema, "SUM(v) <- A(x), B(y, v)")
        reason = ShardPlanner.fallback_reason(query)
        assert reason is not None and "disconnected" in reason
        instance = DatabaseInstance.from_rows(
            schema, {"A": [("a1",), ("a2",)], "B": [("b1", 3), ("b1", 4), ("b2", 5)]}
        )
        engine = ConsistentAnswerEngine()
        baseline = engine.answer(query, instance)
        assert engine.answer(query, instance, options=AnswerOptions(shards=3)) == baseline

    def test_shardable_queries_report_no_reason(self):
        for query in (stock_sum_query(), stock_total_query(), stock_groupby_query()):
            assert ShardPlanner.fallback_reason(query) is None

    def test_stats_count_sharded_requests(self):
        engine = ConsistentAnswerEngine()
        instance = fig1_stock_instance()
        engine.answer(stock_total_query(), instance, options=AnswerOptions(shards=3))
        stats = engine.shard_stats()
        assert stats["requests"] == stats["sharded"] == 1
        assert stats["shards_planned"] == 3


# -- the serving layer's opt-in sharded path --------------------------------------------


class TestServeShardedPath:
    def test_registry_shard_config_validation(self):
        from repro.serve import InstanceRegistry
        from repro.serve.registry import RegistryError

        registry = InstanceRegistry()
        entry = registry.register("stock", fig1_stock_instance(), shards=4)
        assert entry.shards == 4
        assert entry.describe()["shards"] == 4
        with pytest.raises(RegistryError):
            registry.register("bad", fig1_stock_instance(), shards=0)

    def test_sharded_instance_answers_match_unsharded(self):
        from repro.serve import ConsistentAnswerServer, ServeClient, ServeConfig

        async def scenario():
            server = ConsistentAnswerServer(ServeConfig(port=0, workers=2))
            await server.start()
            try:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    await client.register_instance(
                        "stock_sharded", fig1_stock_instance(), shards=3
                    )
                    query = "SUM(y) <- Stock(p, t, y)"
                    plain = await client.answer("stock", query)
                    sharded = await client.answer("stock_sharded", query)
                    group_plain = await client.answer_group_by(
                        "stock", "(t, SUM(y)) <- Stock(p, t, y)"
                    )
                    group_sharded = await client.answer_group_by(
                        "stock_sharded", "(t, SUM(y)) <- Stock(p, t, y)"
                    )
                    metrics = await client.metrics()
                    return plain, sharded, group_plain, group_sharded, metrics
            finally:
                await server.stop()

        plain, sharded, group_plain, group_sharded, metrics = asyncio.run(scenario())
        assert sharded == plain
        assert group_sharded == group_plain
        sharding = metrics["sharding"]
        assert sharding["requests"] >= 2
        assert sharding["sharded"] >= 2
        assert sharding["shards_planned"] >= 6
