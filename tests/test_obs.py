"""Observability tests: span trees, cross-process re-parenting, structured
logs, the metrics registry, and Prometheus text exposition.

The serving-layer pieces (trace-id echo, explain mode, ``GET /traces/{id}``,
the slow-query log) are exercised end to end against a live server on an
ephemeral port; the worker-pool pieces use the pool's deterministic
``sleep`` diagnostic job so a worker can be killed provably mid-span.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import time

import pytest

from repro.engine import WorkerPool
from repro.obs import TRACE_HEADER, TraceBuffer, get_logger, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    current_span,
    current_trace_id,
    new_trace_id,
    propagation_context,
    remote_root,
    set_tracing,
    span,
    start_trace,
    tracing_enabled,
)
from repro.serve.app import ConsistentAnswerServer, ServeConfig
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.metrics import LatencyHistogram
from repro.workloads.queries import stock_sum_query
from repro.workloads.scenarios import fig1_stock_instance

STOCK_SUM = "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"


@pytest.fixture(autouse=True)
def _tracing_on():
    """Tests (and servers built inside them) flip the process-global tracing
    switch; every test starts and ends with it on."""
    set_tracing(True)
    yield
    set_tracing(True)


def serve_scenario(coro_fn, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("workers", 2)

    async def main():
        server = ConsistentAnswerServer(ServeConfig(**config_kwargs))
        await server.start()
        try:
            host, port = server.address
            async with ServeClient(host, port) as client:
                return await coro_fn(server, client)
        finally:
            await server.stop()

    return asyncio.run(main())


async def _raw_request(host, port, method, path, headers=None, body=b""):
    """One HTTP exchange over a raw socket: (status, headers, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    head = f"{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n"
    head += f"Content-Length: {len(body)}\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    writer.write(head.encode("latin-1") + b"\r\n" + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    parsed = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    return status, parsed, payload


# -- span trees --------------------------------------------------------------------------


class TestSpans:
    def test_nested_spans_build_a_tree(self):
        with start_trace("root", method="POST") as root:
            assert current_span() is root
            assert current_trace_id() == root.trace_id
            with span("child", layer=1) as child:
                assert current_span() is child
                with span("grandchild") as grandchild:
                    assert grandchild.parent_id == child.span_id
            assert current_span() is root
        assert current_span() is None
        tree = root.to_dict()
        assert tree["name"] == "root"
        assert tree["tags"] == {"method": "POST"}
        assert tree["duration_ms"] is not None
        (child_dict,) = tree["children"]
        assert child_dict["name"] == "child"
        assert child_dict["parent_id"] == tree["span_id"]
        (grandchild_dict,) = child_dict["children"]
        assert grandchild_dict["trace_id"] == root.trace_id

    def test_span_is_noop_outside_a_trace(self):
        with span("orphan") as opened:
            assert opened is None
        assert current_span() is None

    def test_disabled_tracing_short_circuits_everything(self):
        set_tracing(False)
        assert not tracing_enabled()
        with start_trace("root") as root:
            assert root is None
            with span("child") as child:
                assert child is None
            assert propagation_context() is None
        assert current_trace_id() is None

    def test_remote_root_grafts_under_the_dispatch_span(self):
        with start_trace("root") as root:
            with span("pool.answer") as dispatch:
                context = propagation_context()
                assert context == (root.trace_id, dispatch.span_id)
        # Simulate the worker side of the hop (it runs in another process,
        # where the parent's contextvar is absent).
        with remote_root("worker.answer", context, worker=3) as worker_span:
            with span("shard.summarize", shard=0):
                pass
        shipped = [worker_span.to_dict()]
        dispatch.add_remote_children(shipped)
        tree = root.to_dict()
        (dispatch_dict,) = tree["children"]
        (worker_dict,) = dispatch_dict["children"]
        assert worker_dict["name"] == "worker.answer"
        assert worker_dict["trace_id"] == root.trace_id
        assert worker_dict["parent_id"] == dispatch_dict["span_id"]
        (summarize,) = worker_dict["children"]
        assert summarize["trace_id"] == root.trace_id
        assert summarize["parent_id"] == worker_dict["span_id"]

    def test_remote_root_without_context_is_noop(self):
        with remote_root("worker.answer", None) as worker_span:
            assert worker_span is None


# -- latency histogram percentiles -------------------------------------------------------


class TestHistogramPercentiles:
    def test_empty_histogram_has_no_percentiles(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.5) is None
        assert histogram.percentile(0.99) is None
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_ms"] is None
        assert snapshot["p95_ms"] is None
        assert snapshot["p99_ms"] is None

    def test_overflow_observations_fall_back_to_the_mean(self):
        histogram = LatencyHistogram()
        histogram.observe(20.0)  # beyond the 10s top bound: +Inf bucket
        histogram.observe(40.0)
        assert histogram.percentile(0.5) == pytest.approx(30.0)
        assert histogram.percentile(0.99) == pytest.approx(30.0)

    def test_percentile_interpolates_within_the_bucket(self):
        histogram = LatencyHistogram(buckets=(0.1, 0.2))
        for _ in range(10):
            histogram.observe(0.15)  # all land in the (0.1, 0.2] bucket
        # rank 5 of 10 → halfway through the containing bucket
        assert histogram.percentile(0.5) == pytest.approx(0.15)
        assert histogram.percentile(1.0) == pytest.approx(0.2)


# -- registry instruments ----------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_with_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "help")
        counter.inc(reason="single_shard")
        counter.inc(reason="single_shard")
        counter.inc(reason="empty_body")
        assert counter.value(reason="single_shard") == 2
        assert counter.value(reason="empty_body") == 1
        assert counter.value(reason="missing") == 0

    def test_histogram_samples_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "help", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        samples = dict(
            ((name, labels), value) for name, labels, value in histogram.samples()
        )
        assert samples[("lat_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_bucket", (("le", "1.0"),))] == 2
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 3
        assert samples[("lat_count", ())] == 3

    def test_kind_mismatch_is_a_type_error(self):
        registry = MetricsRegistry()
        registry.counter("thing", "help")
        with pytest.raises(TypeError):
            registry.gauge("thing", "help")

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")


# -- trace buffer ------------------------------------------------------------------------


class TestTraceBuffer:
    def test_eviction_is_oldest_first(self):
        buffer = TraceBuffer(capacity=2)
        buffer.record({"trace_id": "a"})
        buffer.record({"trace_id": "b"})
        buffer.record({"trace_id": "c"})
        assert buffer.get("a") is None
        assert buffer.get("b") is not None
        assert buffer.trace_ids() == ["b", "c"]

    def test_re_record_latest_wins(self):
        buffer = TraceBuffer(capacity=2)
        buffer.record({"trace_id": "a", "attempt": 1})
        buffer.record({"trace_id": "b"})
        buffer.record({"trace_id": "a", "attempt": 2})
        assert buffer.get("a")["attempt"] == 2
        assert buffer.trace_ids() == ["b", "a"]

    def test_capacity_is_validated(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


# -- structured logging ------------------------------------------------------------------


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__()
        self.lines = []

    def emit(self, record):
        self.lines.append(record.getMessage())


@pytest.fixture()
def captured_log():
    handler = _Capture()
    logger = logging.getLogger("repro.obs")
    logger.addHandler(handler)
    try:
        yield handler
    finally:
        logger.removeHandler(handler)


class TestStructuredLog:
    def test_events_are_one_json_line_with_the_trace_id(self, captured_log):
        log = get_logger("test")
        with start_trace("root") as root:
            log.info("something_happened", detail=42)
        (line,) = captured_log.lines
        event = json.loads(line)
        assert event["component"] == "test"
        assert event["event"] == "something_happened"
        assert event["detail"] == 42
        assert event["trace_id"] == root.trace_id
        assert event["level"] == "info"

    def test_trace_id_is_null_outside_a_request(self, captured_log):
        get_logger("test").warning("standalone")
        event = json.loads(captured_log.lines[0])
        assert event["trace_id"] is None


# -- Prometheus exposition ---------------------------------------------------------------


def parse_prometheus(text):
    """A tiny exposition-format parser: validates line shapes as it goes.

    Returns ``{family: {"type": kind, "samples": {(name, labels): value}}}``
    where ``labels`` is a sorted tuple of ``(label, value)`` pairs.
    """
    families = {}
    current = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            family = rest.split(" ", 1)[0]
            current = families.setdefault(family, {"type": None, "samples": {}})
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) >= 4, f"line {line_number}: malformed TYPE"
            family, kind = parts[2], parts[3]
            assert kind in ("counter", "gauge", "histogram", "summary", "untyped")
            current = families.setdefault(family, {"type": None, "samples": {}})
            current["type"] = kind
            continue
        assert not line.startswith("#"), f"line {line_number}: unknown comment"
        name_and_labels, _, value_text = line.rpartition(" ")
        assert name_and_labels, f"line {line_number}: no sample name"
        if "{" in name_and_labels:
            name, _, label_blob = name_and_labels.partition("{")
            assert label_blob.endswith("}"), f"line {line_number}: unclosed labels"
            labels = []
            for pair in filter(None, label_blob[:-1].split(",")):
                label, _, quoted = pair.partition("=")
                assert quoted.startswith('"') and quoted.endswith('"'), (
                    f"line {line_number}: unquoted label value in {pair!r}"
                )
                labels.append((label, quoted[1:-1]))
            labels = tuple(sorted(labels))
        else:
            name, labels = name_and_labels, ()
        value = float(value_text)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
        assert family in families, f"line {line_number}: sample {name!r} before TYPE"
        families[family]["samples"][(name, labels)] = value
    return families


class TestPrometheusRender:
    def test_rendered_page_parses_and_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_test_seconds", "help", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        registry.counter("repro_test_total", "help").inc(reason="a b\"c\\d\n")
        snapshot = {
            "uptime_seconds": 1.5,
            "in_flight": 1,
            "rejected_total": 0,
            "timeout_total": 0,
            "requests_total": {"POST /answer": {"200": 3}},
            "latency": {
                "POST /answer": {
                    "count": 3,
                    "sum_seconds": 0.03,
                    "buckets": {"0.001": 1, "0.01": 2, "+Inf": 0},
                }
            },
        }
        families = parse_prometheus(render_prometheus(snapshot, registry))
        latency = families["repro_request_latency_seconds"]
        assert latency["type"] == "histogram"
        endpoint = ("endpoint", "POST /answer")
        assert latency["samples"][
            ("repro_request_latency_seconds_bucket", tuple(sorted((endpoint, ("le", "0.001")))))
        ] == 1
        assert latency["samples"][
            ("repro_request_latency_seconds_bucket", tuple(sorted((endpoint, ("le", "0.01")))))
        ] == 3  # cumulative, not per-bucket
        assert latency["samples"][
            ("repro_request_latency_seconds_count", (endpoint,))
        ] == 3
        test_hist = families["repro_test_seconds"]
        assert test_hist["samples"][("repro_test_seconds_bucket", (("le", "+Inf"),))] == 2
        # label escaping survives the round trip
        counter_samples = families["repro_test_total"]["samples"]
        ((_, labels),) = counter_samples.keys()
        assert labels == (("reason", 'a b\\"c\\\\d\\n'),)
        assert families["repro_requests_total"]["samples"][
            ("repro_requests_total", (("endpoint", "POST /answer"), ("status", "200")))
        ] == 3


# -- server integration ------------------------------------------------------------------


class TestServerTracing:
    def test_trace_header_echoed_on_success_and_errors(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)
            success_id = client.last_trace_id
            assert success_id
            with pytest.raises(ServeClientError) as excinfo:
                await client.answer("no_such_instance", STOCK_SUM)
            error = excinfo.value
            assert error.status == 404
            assert error.trace_id
            assert error.trace_id != success_id
            assert error.body["error"]["trace_id"] == error.trace_id

        serve_scenario(scenario)

    def test_inbound_trace_id_is_honored_and_echoed(self):
        async def scenario(server, client):
            host, port = server.address
            inbound = new_trace_id()
            status, headers, payload = await _raw_request(
                host,
                port,
                "POST",
                "/answer",
                headers={TRACE_HEADER: inbound},
                body=json.dumps({"instance": "stock", "query": STOCK_SUM}).encode(),
            )
            assert status == 200
            assert headers[TRACE_HEADER.lower()] == inbound
            retained = await client.trace(inbound)
            assert retained["trace_id"] == inbound
            assert retained["name"] == "http.request"

        serve_scenario(scenario)

    def test_explain_inlines_the_span_tree(self):
        async def scenario(server, client):
            status, body = await client.request(
                "POST",
                "/answer",
                {"instance": "stock", "query": STOCK_SUM, "explain": True},
            )
            assert status == 200
            tree = body["trace"]
            assert tree["trace_id"] == client.last_trace_id
            names = _span_names(tree)
            assert "plan.lookup" in names
            assert any(n.startswith("execute.") for n in names)
            # Same request without explain stays lean.
            status, body = await client.request(
                "POST", "/answer", {"instance": "stock", "query": STOCK_SUM}
            )
            assert status == 200 and "trace" not in body

        serve_scenario(scenario)

    def test_unknown_trace_is_a_404(self):
        async def scenario(server, client):
            with pytest.raises(ServeClientError) as excinfo:
                await client.trace("deadbeef")
            assert excinfo.value.status == 404

        serve_scenario(scenario)

    def test_tracing_disabled_still_echoes_ids_but_retains_nothing(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)
            assert client.last_trace_id
            with pytest.raises(ServeClientError) as excinfo:
                await client.trace(client.last_trace_id)
            assert excinfo.value.status == 404

        serve_scenario(scenario, tracing=False)

    def test_slow_query_log_emits_the_full_tree(self):
        captured = _Capture()
        logging.getLogger("repro.obs").addHandler(captured)
        try:

            async def scenario(server, client):
                await client.answer("stock", STOCK_SUM)
                return client.last_trace_id

            trace_id = serve_scenario(scenario, slow_query_ms=0)
        finally:
            logging.getLogger("repro.obs").removeHandler(captured)
        events = [json.loads(line) for line in captured.lines]
        slow = [
            e
            for e in events
            if e["event"] == "slow_query" and e["trace_id"] == trace_id
        ]
        assert slow, f"no slow_query event for {trace_id} in {events}"
        assert slow[0]["trace"]["trace_id"] == trace_id
        assert slow[0]["path"] == "/answer"

    def test_metrics_prometheus_format_is_parseable(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)
            host, port = server.address
            status, headers, payload = await _raw_request(
                host, port, "GET", "/metrics?format=prometheus"
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            families = parse_prometheus(payload.decode("utf-8"))
            assert "repro_uptime_seconds" in families
            requests_total = families["repro_requests_total"]["samples"]
            assert any(
                labels == (("endpoint", "POST /answer"), ("status", "200"))
                for _, labels in requests_total
            )
            # JSON snapshot is unchanged by the new format knob.
            plain = await client.metrics()
            assert "requests_total" in plain and "latency" in plain

        serve_scenario(scenario)

    def test_trace_propagates_through_answer_many_fan_out(self):
        async def scenario(server, client):
            host, port = server.address
            inbound = new_trace_id()
            body = json.dumps(
                {
                    "items": [
                        {"instance": "stock", "query": STOCK_SUM},
                        {"instance": "stock", "query": STOCK_SUM},
                        {"instance": "stock", "query": STOCK_SUM},
                    ]
                }
            ).encode()
            status, headers, _ = await _raw_request(
                host,
                port,
                "POST",
                "/answer_many",
                headers={TRACE_HEADER: inbound},
                body=body,
            )
            assert status == 200
            assert headers[TRACE_HEADER.lower()] == inbound
            tree = await client.trace(inbound)
            names = _span_names(tree)
            assert "pool.chunks" in names, names
            assert any(n.startswith("worker.chunk") for n in names), names
            _assert_single_trace_id(tree, inbound)

        serve_scenario(scenario, worker_processes=2)

    def test_sharded_worker_spans_reparent_under_the_request(self):
        async def scenario(server, client):
            await client.register_instance("sharded", fig1_stock_instance(), shards=2)
            status, body = await client.request(
                "POST",
                "/answer",
                {"instance": "sharded", "query": STOCK_SUM, "explain": True},
            )
            assert status == 200
            tree = body["trace"]
            names = _span_names(tree)
            assert "shard.plan" in names
            assert "pool.shards" in names
            assert "worker.shards" in names
            assert "shard.summarize" in names
            assert "shard.merge" in names
            _assert_single_trace_id(tree, tree["trace_id"])
            _assert_all_closed(tree)

        serve_scenario(scenario, worker_processes=2)


def _span_names(tree):
    names = [tree["name"]]
    for child in tree.get("children", ()):
        names.extend(_span_names(child))
    return names


def _assert_single_trace_id(tree, trace_id):
    assert tree["trace_id"] == trace_id, (tree["name"], tree["trace_id"])
    for child in tree.get("children", ()):
        _assert_single_trace_id(child, trace_id)


def _assert_all_closed(tree):
    assert tree["duration_ms"] is not None, f"span {tree['name']} never finished"
    for child in tree.get("children", ()):
        _assert_all_closed(child)


# -- cross-process re-parenting under crashes --------------------------------------------


class TestWorkerCrashTracing:
    def test_killed_worker_leaks_no_open_span_and_the_retry_reparents(self):
        with WorkerPool(workers=2) as pool:
            with start_trace("request") as root:
                with span("pool.answer") as dispatch:
                    future = pool._submit(0, "sleep", (0.4,), parent_span=dispatch)
                    time.sleep(0.1)  # the job is provably running now
                    os.kill(pool.worker_pids()[0], signal.SIGKILL)
                    assert future.result(timeout=15) == 0.4  # retried on respawn
            assert current_span() is None  # nothing leaked onto the context
            tree = root.to_dict()
            _assert_all_closed(tree)
            _assert_single_trace_id(tree, root.trace_id)
            names = _span_names(tree)
            # The respawned worker's attempt grafted under the dispatch span.
            assert "worker.sleep" in names, names
            assert pool.stats()["retries"] >= 1

    def test_pool_answer_collects_worker_spans(self):
        instance = fig1_stock_instance()
        query = stock_sum_query()
        with WorkerPool(workers=2) as pool:
            with start_trace("request") as root:
                pool.answer(query, instance)
            names = _span_names(root.to_dict())
            assert "pool.answer" in names
            assert "worker.answer" in names
            assert "worker.instance_load" in names

    def test_untraced_pool_calls_ship_no_context(self):
        instance = fig1_stock_instance()
        query = stock_sum_query()
        with WorkerPool(workers=2) as pool:
            # No active trace: jobs carry context None and return no spans.
            expected = pool.answer(query, instance)
            assert current_span() is None
            assert expected is not None
