"""Observability tests: span trees, cross-process re-parenting, structured
logs, the metrics registry, and Prometheus text exposition.

The serving-layer pieces (trace-id echo, explain mode, ``GET /traces/{id}``,
the slow-query log) are exercised end to end against a live server on an
ephemeral port; the worker-pool pieces use the pool's deterministic
``sleep`` diagnostic job so a worker can be killed provably mid-span.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import time
import warnings

import pytest

from repro.engine import WorkerPool
from repro.obs import TRACE_HEADER, TraceBuffer, get_logger, render_prometheus
from repro.obs.admission import (
    REASON_COLD_KEY,
    REASON_COST_OK,
    REASON_DEPTH,
    REASON_PREDICTED_COST,
    CostPredictor,
    retry_after_s,
)
from repro.obs.control import MAX_RATE, AdaptiveSamplingController
from repro.obs.cost import CostTable, add_cost, rollup
from repro.obs.export import SpanExporter
from repro.obs.log import (
    _reset_env_warnings as _reset_log_warnings,
    parse_log_level,
    set_log_level,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sample import (
    DroppedTraceLog,
    TraceSampler,
    _reset_env_warnings as _reset_sample_warnings,
    parse_sample_rate,
)
from repro.obs.trace import (
    current_span,
    current_trace_id,
    new_trace_id,
    propagation_context,
    remote_root,
    set_tracing,
    span,
    start_trace,
    tracing_enabled,
)
from repro.serve.app import AdmissionGate, ConsistentAnswerServer, ServeConfig
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.metrics import LatencyHistogram
from repro.workloads.queries import stock_sum_query
from repro.workloads.scenarios import fig1_stock_instance

STOCK_SUM = "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"


@pytest.fixture(autouse=True)
def _tracing_on():
    """Tests (and servers built inside them) flip the process-global tracing
    switch; every test starts and ends with it on."""
    set_tracing(True)
    yield
    set_tracing(True)


def serve_scenario(coro_fn, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("workers", 2)

    async def main():
        server = ConsistentAnswerServer(ServeConfig(**config_kwargs))
        await server.start()
        try:
            host, port = server.address
            async with ServeClient(host, port) as client:
                return await coro_fn(server, client)
        finally:
            await server.stop()

    return asyncio.run(main())


async def _raw_request(host, port, method, path, headers=None, body=b""):
    """One HTTP exchange over a raw socket: (status, headers, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    head = f"{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n"
    head += f"Content-Length: {len(body)}\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    writer.write(head.encode("latin-1") + b"\r\n" + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    parsed = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    return status, parsed, payload


# -- span trees --------------------------------------------------------------------------


class TestSpans:
    def test_nested_spans_build_a_tree(self):
        with start_trace("root", method="POST") as root:
            assert current_span() is root
            assert current_trace_id() == root.trace_id
            with span("child", layer=1) as child:
                assert current_span() is child
                with span("grandchild") as grandchild:
                    assert grandchild.parent_id == child.span_id
            assert current_span() is root
        assert current_span() is None
        tree = root.to_dict()
        assert tree["name"] == "root"
        assert tree["tags"] == {"method": "POST"}
        assert tree["duration_ms"] is not None
        (child_dict,) = tree["children"]
        assert child_dict["name"] == "child"
        assert child_dict["parent_id"] == tree["span_id"]
        (grandchild_dict,) = child_dict["children"]
        assert grandchild_dict["trace_id"] == root.trace_id

    def test_span_is_noop_outside_a_trace(self):
        with span("orphan") as opened:
            assert opened is None
        assert current_span() is None

    def test_disabled_tracing_short_circuits_everything(self):
        set_tracing(False)
        assert not tracing_enabled()
        with start_trace("root") as root:
            assert root is None
            with span("child") as child:
                assert child is None
            assert propagation_context() is None
        assert current_trace_id() is None

    def test_remote_root_grafts_under_the_dispatch_span(self):
        with start_trace("root") as root:
            with span("pool.answer") as dispatch:
                context = propagation_context()
                assert context == (root.trace_id, dispatch.span_id)
        # Simulate the worker side of the hop (it runs in another process,
        # where the parent's contextvar is absent).
        with remote_root("worker.answer", context, worker=3) as worker_span:
            with span("shard.summarize", shard=0):
                pass
        shipped = [worker_span.to_dict()]
        dispatch.add_remote_children(shipped)
        tree = root.to_dict()
        (dispatch_dict,) = tree["children"]
        (worker_dict,) = dispatch_dict["children"]
        assert worker_dict["name"] == "worker.answer"
        assert worker_dict["trace_id"] == root.trace_id
        assert worker_dict["parent_id"] == dispatch_dict["span_id"]
        (summarize,) = worker_dict["children"]
        assert summarize["trace_id"] == root.trace_id
        assert summarize["parent_id"] == worker_dict["span_id"]

    def test_remote_root_without_context_is_noop(self):
        with remote_root("worker.answer", None) as worker_span:
            assert worker_span is None


# -- latency histogram percentiles -------------------------------------------------------


class TestHistogramPercentiles:
    def test_empty_histogram_has_no_percentiles(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.5) is None
        assert histogram.percentile(0.99) is None
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_ms"] is None
        assert snapshot["p95_ms"] is None
        assert snapshot["p99_ms"] is None

    def test_overflow_observations_fall_back_to_the_mean(self):
        histogram = LatencyHistogram()
        histogram.observe(20.0)  # beyond the 10s top bound: +Inf bucket
        histogram.observe(40.0)
        assert histogram.percentile(0.5) == pytest.approx(30.0)
        assert histogram.percentile(0.99) == pytest.approx(30.0)

    def test_percentile_interpolates_within_the_bucket(self):
        histogram = LatencyHistogram(buckets=(0.1, 0.2))
        for _ in range(10):
            histogram.observe(0.15)  # all land in the (0.1, 0.2] bucket
        # rank 5 of 10 → halfway through the containing bucket
        assert histogram.percentile(0.5) == pytest.approx(0.15)
        assert histogram.percentile(1.0) == pytest.approx(0.2)


# -- registry instruments ----------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_with_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "help")
        counter.inc(reason="single_shard")
        counter.inc(reason="single_shard")
        counter.inc(reason="empty_body")
        assert counter.value(reason="single_shard") == 2
        assert counter.value(reason="empty_body") == 1
        assert counter.value(reason="missing") == 0

    def test_histogram_samples_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "help", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        samples = dict(
            ((name, labels), value) for name, labels, value in histogram.samples()
        )
        assert samples[("lat_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_bucket", (("le", "1.0"),))] == 2
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 3
        assert samples[("lat_count", ())] == 3

    def test_kind_mismatch_is_a_type_error(self):
        registry = MetricsRegistry()
        registry.counter("thing", "help")
        with pytest.raises(TypeError):
            registry.gauge("thing", "help")

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")


# -- trace buffer ------------------------------------------------------------------------


class TestTraceBuffer:
    def test_eviction_is_oldest_first(self):
        buffer = TraceBuffer(capacity=2)
        buffer.record({"trace_id": "a"})
        buffer.record({"trace_id": "b"})
        buffer.record({"trace_id": "c"})
        assert buffer.get("a") is None
        assert buffer.get("b") is not None
        assert buffer.trace_ids() == ["b", "c"]

    def test_re_record_latest_wins(self):
        buffer = TraceBuffer(capacity=2)
        buffer.record({"trace_id": "a", "attempt": 1})
        buffer.record({"trace_id": "b"})
        buffer.record({"trace_id": "a", "attempt": 2})
        assert buffer.get("a")["attempt"] == 2
        assert buffer.trace_ids() == ["b", "a"]

    def test_capacity_is_validated(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


# -- structured logging ------------------------------------------------------------------


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__()
        self.lines = []

    def emit(self, record):
        self.lines.append(record.getMessage())


@pytest.fixture()
def captured_log():
    handler = _Capture()
    logger = logging.getLogger("repro.obs")
    logger.addHandler(handler)
    try:
        yield handler
    finally:
        logger.removeHandler(handler)


class TestStructuredLog:
    def test_events_are_one_json_line_with_the_trace_id(self, captured_log):
        log = get_logger("test")
        with start_trace("root") as root:
            log.info("something_happened", detail=42)
        (line,) = captured_log.lines
        event = json.loads(line)
        assert event["component"] == "test"
        assert event["event"] == "something_happened"
        assert event["detail"] == 42
        assert event["trace_id"] == root.trace_id
        assert event["level"] == "info"

    def test_trace_id_is_null_outside_a_request(self, captured_log):
        get_logger("test").warning("standalone")
        event = json.loads(captured_log.lines[0])
        assert event["trace_id"] is None


# -- Prometheus exposition ---------------------------------------------------------------


def _parse_label_blob(label_blob, line_number):
    """Parse a ``label="value",...`` blob (no braces) into sorted pairs."""
    labels = []
    for pair in filter(None, label_blob.split(",")):
        label, _, quoted = pair.partition("=")
        assert quoted.startswith('"') and quoted.endswith('"'), (
            f"line {line_number}: unquoted label value in {pair!r}"
        )
        labels.append((label, quoted[1:-1]))
    return tuple(sorted(labels))


def parse_prometheus(text):
    """A tiny exposition-format parser: validates line shapes as it goes.

    Returns ``{family: {"type": kind, "samples": {...}, "exemplars": {...}}}``
    where ``samples`` maps ``(name, labels)`` to the float value, ``labels``
    is a sorted tuple of ``(label, value)`` pairs, and ``exemplars`` maps the
    same keys to ``(exemplar_labels, exemplar_value, timestamp_or_None)`` for
    sample lines carrying OpenMetrics exemplar syntax
    (``... # {trace_id="..."} value [ts]``).
    """
    families = {}
    current = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            family = rest.split(" ", 1)[0]
            current = families.setdefault(
                family, {"type": None, "samples": {}, "exemplars": {}}
            )
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) >= 4, f"line {line_number}: malformed TYPE"
            family, kind = parts[2], parts[3]
            assert kind in ("counter", "gauge", "histogram", "summary", "untyped")
            current = families.setdefault(
                family, {"type": None, "samples": {}, "exemplars": {}}
            )
            current["type"] = kind
            continue
        assert not line.startswith("#"), f"line {line_number}: unknown comment"
        sample_part, exemplar_sep, exemplar_part = line.partition(" # ")
        exemplar = None
        if exemplar_sep:
            # OpenMetrics exemplar: `{label="value",...} value [timestamp]`
            assert exemplar_part.startswith("{"), (
                f"line {line_number}: exemplar must start with labels"
            )
            blob, _, rest = exemplar_part[1:].partition("}")
            exemplar_labels = _parse_label_blob(blob, line_number)
            assert exemplar_labels, f"line {line_number}: empty exemplar labels"
            fields = rest.split()
            assert 1 <= len(fields) <= 2, (
                f"line {line_number}: exemplar needs a value and optional ts"
            )
            exemplar = (
                exemplar_labels,
                float(fields[0]),
                float(fields[1]) if len(fields) == 2 else None,
            )
        name_and_labels, _, value_text = sample_part.rpartition(" ")
        assert name_and_labels, f"line {line_number}: no sample name"
        if "{" in name_and_labels:
            name, _, label_blob = name_and_labels.partition("{")
            assert label_blob.endswith("}"), f"line {line_number}: unclosed labels"
            labels = _parse_label_blob(label_blob[:-1], line_number)
        else:
            name, labels = name_and_labels, ()
        value = float(value_text)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
        assert family in families, f"line {line_number}: sample {name!r} before TYPE"
        families[family]["samples"][(name, labels)] = value
        if exemplar is not None:
            assert name.endswith("_bucket"), (
                f"line {line_number}: exemplar on a non-bucket sample"
            )
            families[family]["exemplars"][(name, labels)] = exemplar
    return families


class TestPrometheusRender:
    def test_rendered_page_parses_and_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_test_seconds", "help", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        registry.counter("repro_test_total", "help").inc(reason="a b\"c\\d\n")
        snapshot = {
            "uptime_seconds": 1.5,
            "in_flight": 1,
            "rejected_total": 0,
            "timeout_total": 0,
            "requests_total": {"POST /answer": {"200": 3}},
            "latency": {
                "POST /answer": {
                    "count": 3,
                    "sum_seconds": 0.03,
                    "buckets": {"0.001": 1, "0.01": 2, "+Inf": 0},
                }
            },
        }
        families = parse_prometheus(render_prometheus(snapshot, registry))
        latency = families["repro_request_latency_seconds"]
        assert latency["type"] == "histogram"
        endpoint = ("endpoint", "POST /answer")
        assert latency["samples"][
            ("repro_request_latency_seconds_bucket", tuple(sorted((endpoint, ("le", "0.001")))))
        ] == 1
        assert latency["samples"][
            ("repro_request_latency_seconds_bucket", tuple(sorted((endpoint, ("le", "0.01")))))
        ] == 3  # cumulative, not per-bucket
        assert latency["samples"][
            ("repro_request_latency_seconds_count", (endpoint,))
        ] == 3
        test_hist = families["repro_test_seconds"]
        assert test_hist["samples"][("repro_test_seconds_bucket", (("le", "+Inf"),))] == 2
        # label escaping survives the round trip
        counter_samples = families["repro_test_total"]["samples"]
        ((_, labels),) = counter_samples.keys()
        assert labels == (("reason", 'a b\\"c\\\\d\\n'),)
        assert families["repro_requests_total"]["samples"][
            ("repro_requests_total", (("endpoint", "POST /answer"), ("status", "200")))
        ] == 3


# -- server integration ------------------------------------------------------------------


class TestServerTracing:
    def test_trace_header_echoed_on_success_and_errors(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)
            success_id = client.last_trace_id
            assert success_id
            with pytest.raises(ServeClientError) as excinfo:
                await client.answer("no_such_instance", STOCK_SUM)
            error = excinfo.value
            assert error.status == 404
            assert error.trace_id
            assert error.trace_id != success_id
            assert error.body["error"]["trace_id"] == error.trace_id

        serve_scenario(scenario)

    def test_inbound_trace_id_is_honored_and_echoed(self):
        async def scenario(server, client):
            host, port = server.address
            inbound = new_trace_id()
            status, headers, payload = await _raw_request(
                host,
                port,
                "POST",
                "/answer",
                headers={TRACE_HEADER: inbound},
                body=json.dumps({"instance": "stock", "query": STOCK_SUM}).encode(),
            )
            assert status == 200
            assert headers[TRACE_HEADER.lower()] == inbound
            retained = await client.trace(inbound)
            assert retained["trace_id"] == inbound
            assert retained["name"] == "http.request"

        serve_scenario(scenario)

    def test_explain_inlines_the_span_tree(self):
        async def scenario(server, client):
            status, body = await client.request(
                "POST",
                "/answer",
                {"instance": "stock", "query": STOCK_SUM, "explain": True},
            )
            assert status == 200
            tree = body["trace"]
            assert tree["trace_id"] == client.last_trace_id
            names = _span_names(tree)
            assert "plan.lookup" in names
            assert any(n.startswith("execute.") for n in names)
            # Same request without explain stays lean.
            status, body = await client.request(
                "POST", "/answer", {"instance": "stock", "query": STOCK_SUM}
            )
            assert status == 200 and "trace" not in body

        serve_scenario(scenario)

    def test_unknown_trace_is_a_404(self):
        async def scenario(server, client):
            with pytest.raises(ServeClientError) as excinfo:
                await client.trace("deadbeef")
            assert excinfo.value.status == 404

        serve_scenario(scenario)

    def test_tracing_disabled_still_echoes_ids_but_retains_nothing(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)
            assert client.last_trace_id
            with pytest.raises(ServeClientError) as excinfo:
                await client.trace(client.last_trace_id)
            assert excinfo.value.status == 404

        serve_scenario(scenario, tracing=False)

    def test_slow_query_log_emits_the_full_tree(self):
        captured = _Capture()
        logging.getLogger("repro.obs").addHandler(captured)
        try:

            async def scenario(server, client):
                await client.answer("stock", STOCK_SUM)
                return client.last_trace_id

            trace_id = serve_scenario(scenario, slow_query_ms=0)
        finally:
            logging.getLogger("repro.obs").removeHandler(captured)
        events = [json.loads(line) for line in captured.lines]
        slow = [
            e
            for e in events
            if e["event"] == "slow_query" and e["trace_id"] == trace_id
        ]
        assert slow, f"no slow_query event for {trace_id} in {events}"
        assert slow[0]["trace"]["trace_id"] == trace_id
        assert slow[0]["path"] == "/answer"

    def test_metrics_prometheus_format_is_parseable(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)
            host, port = server.address
            status, headers, payload = await _raw_request(
                host, port, "GET", "/metrics?format=prometheus"
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            families = parse_prometheus(payload.decode("utf-8"))
            assert "repro_uptime_seconds" in families
            requests_total = families["repro_requests_total"]["samples"]
            assert any(
                labels == (("endpoint", "POST /answer"), ("status", "200"))
                for _, labels in requests_total
            )
            # JSON snapshot is unchanged by the new format knob.
            plain = await client.metrics()
            assert "requests_total" in plain and "latency" in plain

        serve_scenario(scenario)

    def test_trace_propagates_through_answer_many_fan_out(self):
        async def scenario(server, client):
            host, port = server.address
            inbound = new_trace_id()
            body = json.dumps(
                {
                    "items": [
                        {"instance": "stock", "query": STOCK_SUM},
                        {"instance": "stock", "query": STOCK_SUM},
                        {"instance": "stock", "query": STOCK_SUM},
                    ]
                }
            ).encode()
            status, headers, _ = await _raw_request(
                host,
                port,
                "POST",
                "/answer_many",
                headers={TRACE_HEADER: inbound},
                body=body,
            )
            assert status == 200
            assert headers[TRACE_HEADER.lower()] == inbound
            tree = await client.trace(inbound)
            names = _span_names(tree)
            assert "pool.chunks" in names, names
            assert any(n.startswith("worker.chunk") for n in names), names
            _assert_single_trace_id(tree, inbound)

        serve_scenario(scenario, worker_processes=2)

    def test_sharded_worker_spans_reparent_under_the_request(self):
        async def scenario(server, client):
            await client.register_instance("sharded", fig1_stock_instance(), shards=2)
            status, body = await client.request(
                "POST",
                "/answer",
                {"instance": "sharded", "query": STOCK_SUM, "explain": True},
            )
            assert status == 200
            tree = body["trace"]
            names = _span_names(tree)
            assert "shard.plan" in names
            assert "pool.shards" in names
            assert "worker.shards" in names
            assert "shard.summarize" in names
            assert "shard.merge" in names
            _assert_single_trace_id(tree, tree["trace_id"])
            _assert_all_closed(tree)

        serve_scenario(scenario, worker_processes=2)


def _span_names(tree):
    names = [tree["name"]]
    for child in tree.get("children", ()):
        names.extend(_span_names(child))
    return names


def _assert_single_trace_id(tree, trace_id):
    assert tree["trace_id"] == trace_id, (tree["name"], tree["trace_id"])
    for child in tree.get("children", ()):
        _assert_single_trace_id(child, trace_id)


def _assert_all_closed(tree):
    assert tree["duration_ms"] is not None, f"span {tree['name']} never finished"
    for child in tree.get("children", ()):
        _assert_all_closed(child)


# -- cross-process re-parenting under crashes --------------------------------------------


class TestWorkerCrashTracing:
    def test_killed_worker_leaks_no_open_span_and_the_retry_reparents(self):
        with WorkerPool(workers=2) as pool:
            with start_trace("request") as root:
                with span("pool.answer") as dispatch:
                    future = pool._submit(0, "sleep", (0.4,), parent_span=dispatch)
                    time.sleep(0.1)  # the job is provably running now
                    os.kill(pool.worker_pids()[0], signal.SIGKILL)
                    assert future.result(timeout=15) == 0.4  # retried on respawn
            assert current_span() is None  # nothing leaked onto the context
            tree = root.to_dict()
            _assert_all_closed(tree)
            _assert_single_trace_id(tree, root.trace_id)
            names = _span_names(tree)
            # The respawned worker's attempt grafted under the dispatch span.
            assert "worker.sleep" in names, names
            assert pool.stats()["retries"] >= 1

    def test_pool_answer_collects_worker_spans(self):
        instance = fig1_stock_instance()
        query = stock_sum_query()
        with WorkerPool(workers=2) as pool:
            with start_trace("request") as root:
                pool.answer(query, instance)
            names = _span_names(root.to_dict())
            assert "pool.answer" in names
            assert "worker.answer" in names
            assert "worker.instance_load" in names

    def test_untraced_pool_calls_ship_no_context(self):
        instance = fig1_stock_instance()
        query = stock_sum_query()
        with WorkerPool(workers=2) as pool:
            # No active trace: jobs carry context None and return no spans.
            expected = pool.answer(query, instance)
            assert current_span() is None
            assert expected is not None


# -- sampling ----------------------------------------------------------------------------


class TestSampler:
    def test_head_rotation_is_deterministic(self):
        sampler = TraceSampler(3)
        decisions = [sampler.sample() for _ in range(9)]
        assert decisions == [True, False, False] * 3
        # the ≤ ceil(n/rate) bound is a guarantee, not an expectation
        assert sum(decisions) == 3

    def test_rate_one_keeps_everything(self):
        sampler = TraceSampler(1)
        assert all(sampler.sample() for _ in range(20))

    def test_parse_sample_rate_accepts_both_spellings(self):
        assert parse_sample_rate("10") == 10
        assert parse_sample_rate(" 1/10 ") == 10
        assert parse_sample_rate(None) == 1
        assert parse_sample_rate("") == 1

    def test_malformed_rate_warns_once_and_falls_back(self):
        _reset_sample_warnings()
        with pytest.warns(RuntimeWarning, match="REPRO_TRACE_SAMPLE"):
            assert parse_sample_rate("banana") == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warn would raise
            assert parse_sample_rate("banana") == 1
        _reset_sample_warnings()
        with pytest.warns(RuntimeWarning):
            assert parse_sample_rate("2/10") == 1
        _reset_sample_warnings()
        with pytest.warns(RuntimeWarning):
            assert parse_sample_rate("0") == 1
        _reset_sample_warnings()

    def test_decide_precedence_head_error_slow_drop(self):
        sampler = TraceSampler(10)
        decide = sampler.decide
        assert decide(sampled=True, status=500, duration_ms=0, slow_ms=None) == "head"
        assert decide(sampled=False, status=500, duration_ms=0, slow_ms=None) == "error"
        assert decide(sampled=False, status=200, duration_ms=90, slow_ms=50) == "slow"
        assert (
            decide(sampled=False, status=200, duration_ms=10, slow_ms=50)
            == "sampled_out"
        )
        # no slow threshold configured → nothing is rescued for slowness
        assert (
            decide(sampled=False, status=200, duration_ms=1e9, slow_ms=None)
            == "sampled_out"
        )
        stats = sampler.stats()
        assert stats["rate"] == 10
        assert stats["decisions"]["error"] >= 1

    def test_dropped_trace_log_is_bounded_and_deduped(self):
        log = DroppedTraceLog(capacity=2)
        log.record("a")
        log.record("a")
        assert len(log) == 1
        log.record("b")
        log.record("c")  # evicts "a"
        assert "a" not in log
        assert "b" in log and "c" in log
        with pytest.raises(ValueError):
            DroppedTraceLog(capacity=0)

    def test_unsampled_trace_withholds_propagation_context(self):
        with start_trace("request", sampled=False) as root:
            assert root.sampled is False
            assert propagation_context() is None
            with span("child") as child:
                assert child.sampled is False  # inherited
                assert propagation_context() is None
        with start_trace("request", sampled=True):
            assert propagation_context() is not None

    def test_unsampled_pool_jobs_ship_no_worker_spans(self):
        instance = fig1_stock_instance()
        query = stock_sum_query()
        with WorkerPool(workers=2) as pool:
            with start_trace("request", sampled=False) as root:
                answer = pool.answer(query, instance)
            assert answer is not None
            names = _span_names(root.to_dict())
            # parent-side spans still record; worker spans never cross the pipe
            assert "pool.answer" in names
            assert not any(n.startswith("worker.") for n in names), names


class TestSamplingIntegration:
    def test_tail_keep_retains_slow_and_error_traces(self, tmp_path):
        export_path = str(tmp_path / "spans.ndjson")

        async def scenario(server, client):
            async def boom(payload):
                raise RuntimeError("deliberate 5xx")

            server._routes[("GET", "/boom")] = boom
            kept, dropped, errors = [], [], []
            for index in range(12):
                if index % 4 == 3:
                    status, _ = await client.request("GET", "/boom")
                    assert status == 500
                    errors.append(client.last_trace_id)
                else:
                    await client.answer("stock", STOCK_SUM)
                    (kept if index == 0 else dropped).append(client.last_trace_id)
            # index 0 is the head-kept rotation slot; errors are tail-kept
            for trace_id in kept + errors:
                retained = await client.trace(trace_id)
                assert retained["trace_id"] == trace_id
            for trace_id in dropped:
                with pytest.raises(ServeClientError) as excinfo:
                    await client.trace(trace_id)
                assert excinfo.value.status == 404
                assert excinfo.value.body["error"]["sampled_out"] is True
                assert excinfo.value.body["error"]["reason"] == "sampled_out"
            # an id the server never saw reports evicted_or_unknown instead
            with pytest.raises(ServeClientError) as excinfo:
                await client.trace("feedfacefeedface")
            assert excinfo.value.body["error"]["sampled_out"] is False
            assert excinfo.value.body["error"]["reason"] == "evicted_or_unknown"
            metrics = await client.metrics()
            assert metrics["sampling"]["rate"] == 1000
            assert metrics["sampling"]["decisions"]["error"] >= len(errors)
            assert server.exporter.flush(timeout_s=10)
            return kept + errors, dropped

        retained_ids, dropped_ids = serve_scenario(
            scenario, trace_sample=1000, otlp_export=export_path
        )
        exported = set()
        with open(export_path, "r", encoding="utf-8") as handle:
            for line in handle:
                doc = json.loads(line)
                for resource in doc["resourceSpans"]:
                    for scope in resource["scopeSpans"]:
                        for otlp_span in scope["spans"]:
                            exported.add(otlp_span["traceId"])
        assert set(retained_ids) <= exported
        assert not (set(dropped_ids) & exported)

    def test_slow_threshold_rescues_sampled_out_traces(self):
        async def scenario(server, client):
            ids = []
            for _ in range(6):
                await client.answer("stock", STOCK_SUM)
                ids.append(client.last_trace_id)
            for trace_id in ids:  # slow_query_ms=0: every request is "slow"
                retained = await client.trace(trace_id)
                assert retained["trace_id"] == trace_id
            metrics = await client.metrics()
            decisions = metrics["sampling"]["decisions"]
            assert decisions["slow"] >= len(ids) - 1  # all but the head slot

        serve_scenario(scenario, trace_sample=1000, slow_query_ms=0)

    def test_explain_forces_retention_when_sampled_out(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)  # burn the head-kept slot
            status, body = await client.request(
                "POST",
                "/answer",
                {"instance": "stock", "query": STOCK_SUM, "explain": True},
            )
            assert status == 200 and "trace" in body
            explained_id = client.last_trace_id
            retained = await client.trace(explained_id)
            assert retained["trace_id"] == explained_id

        serve_scenario(scenario, trace_sample=1000)


# -- OTLP export -------------------------------------------------------------------------


class _FlakyExporter(SpanExporter):
    """Delivery fails ``failures`` times, then succeeds (or keeps failing)."""

    def __init__(self, *args, failures=0, **kwargs):
        super().__init__(*args, **kwargs)
        self.failures = failures
        self.delivered = []

    def _deliver(self, payload):
        if self.failures > 0:
            self.failures -= 1
            raise OSError("sink unavailable")
        self.delivered.append(payload)


def _finished_tree(name="http.request", **tags):
    with start_trace(name, **tags) as root:
        with span("child"):
            pass
    return root.to_dict()


class TestExporter:
    def test_ndjson_sink_round_trips_valid_otlp(self, tmp_path):
        path = str(tmp_path / "out.ndjson")
        exporter = SpanExporter(path, flush_interval_s=0.05).start()
        tree = _finished_tree(status=502)
        assert exporter.submit(tree)
        assert exporter.flush(timeout_s=5)
        exporter.close()
        (line,) = open(path, "r", encoding="utf-8").read().strip().splitlines()
        doc = json.loads(line)
        (resource,) = doc["resourceSpans"]
        attrs = {
            a["key"]: a["value"] for a in resource["resource"]["attributes"]
        }
        assert attrs["service.name"] == {"stringValue": "repro-serve"}
        (scope,) = resource["scopeSpans"]
        spans = scope["spans"]
        assert len(spans) == 2
        root_span, child_span = spans
        assert root_span["name"] == "http.request"
        assert root_span["parentSpanId"] == ""
        assert child_span["parentSpanId"] == root_span["spanId"]
        assert root_span["traceId"] == tree["trace_id"]
        assert int(root_span["endTimeUnixNano"]) >= int(
            root_span["startTimeUnixNano"]
        )
        assert root_span["status"]["code"] == 2  # 502 → STATUS_CODE_ERROR
        assert child_span["status"]["code"] == 1

    def test_retry_with_backoff_counts_retries(self, tmp_path):
        exporter = _FlakyExporter(
            str(tmp_path / "x"), failures=2, retries=3, backoff_s=0.0
        ).start()
        before = exporter.stats()
        exporter.submit(_finished_tree())
        assert exporter.flush(timeout_s=5)
        exporter.close()
        after = exporter.stats()
        assert len(exporter.delivered) == 1
        assert after["retries"] - before["retries"] == 2
        assert after["exported"] - before["exported"] == 1

    def test_delivery_failure_past_the_budget_drops_and_counts(self, tmp_path):
        exporter = _FlakyExporter(
            str(tmp_path / "x"), failures=99, retries=1, backoff_s=0.0
        ).start()
        before = exporter.stats()
        exporter.submit(_finished_tree())
        assert exporter.flush(timeout_s=5)
        exporter.close()
        after = exporter.stats()
        assert not exporter.delivered
        assert after["dropped_delivery"] - before["dropped_delivery"] == 1

    def test_full_queue_drops_without_blocking(self, tmp_path):
        exporter = SpanExporter(
            str(tmp_path / "x"), queue_size=1, flush_interval_s=30.0
        )
        before = exporter.stats()
        # never started: the queue cannot drain, so the second submit drops
        assert exporter.submit(_finished_tree())
        assert not exporter.submit(_finished_tree())
        after = exporter.stats()
        assert after["dropped_queue_full"] - before["dropped_queue_full"] == 1

    def test_empty_target_is_rejected(self):
        with pytest.raises(ValueError):
            SpanExporter("")

    def test_unknown_compression_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SpanExporter(str(tmp_path / "x"), compression="brotli")

    def test_gzip_http_sink_round_trips_valid_otlp(self, tmp_path):
        import gzip
        import http.server
        import threading

        received = []

        class Sink(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers.get("Content-Length", "0"))
                received.append((dict(self.headers), self.rfile.read(length)))
                self.send_response(200)
                self.end_headers()

            def log_message(self, *args):
                pass

        httpd = http.server.HTTPServer(("127.0.0.1", 0), Sink)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        tree = _finished_tree(status=502)
        try:
            exporter = SpanExporter(
                f"http://127.0.0.1:{httpd.server_address[1]}/v1/traces",
                flush_interval_s=0.05,
                compression="gzip",
            ).start()
            assert exporter.stats()["compression"] == "gzip"
            assert exporter.submit(tree)
            assert exporter.flush(timeout_s=5)
            exporter.close()
        finally:
            httpd.shutdown()
            thread.join(timeout=5)

        (headers, body) = received[0]
        assert headers["Content-Encoding"] == "gzip"
        assert headers["Content-Type"] == "application/json"
        doc = json.loads(gzip.decompress(body).decode("utf-8"))
        # decompressed payload is byte-identical to the NDJSON sink's line
        # for the same trace: one re-validation path covers both sinks
        path = str(tmp_path / "out.ndjson")
        file_exporter = SpanExporter(path, flush_interval_s=0.05).start()
        assert file_exporter.submit(tree)
        assert file_exporter.flush(timeout_s=5)
        file_exporter.close()
        (line,) = open(path, "r", encoding="utf-8").read().strip().splitlines()
        assert doc == json.loads(line)
        (resource,) = doc["resourceSpans"]
        (scope,) = resource["scopeSpans"]
        assert len(scope["spans"]) == 2
        assert scope["spans"][0]["status"]["code"] == 2  # 502 survives gzip


# -- cost accounting ---------------------------------------------------------------------


class TestCostRollup:
    def test_same_thread_descendants_do_not_double_count(self):
        tree = {
            "cpu_ms": 10.0,
            "tid": "1:1",
            "metrics": {"facts_scanned": 5},
            "children": [
                {"cpu_ms": 8.0, "tid": "1:1", "metrics": {"facts_scanned": 2}},
                {"cpu_ms": 3.0, "tid": "1:2"},  # executor thread: counts
                {"cpu_ms": 4.0, "tid": "2:1"},  # worker process: counts
            ],
        }
        rolled = rollup(tree)
        assert rolled["cpu_ms"] == pytest.approx(17.0)
        assert rolled["counters"] == {"facts_scanned": 7}

    def test_live_spans_carry_cpu_and_tid(self):
        with start_trace("root") as root:
            with span("child") as child:
                child.add_metric("facts_scanned", 3)
                sum(range(10000))
        tree = root.to_dict()
        assert tree["cpu_ms"] is not None and tree["cpu_ms"] >= 0
        assert ":" in tree["tid"]
        (child_dict,) = tree["children"]
        assert child_dict["tid"] == tree["tid"]  # same thread
        assert child_dict["metrics"] == {"facts_scanned": 3}
        rolled = rollup(tree)
        # same-thread child excluded: total equals the root's own clock
        assert rolled["cpu_ms"] == pytest.approx(tree["cpu_ms"], abs=0.001)

    def test_add_cost_is_a_noop_outside_a_trace(self):
        add_cost("facts_scanned", 5)  # must not raise
        with start_trace("root") as root:
            add_cost("facts_scanned", 5)
            add_cost("facts_scanned", 2)
        assert root.metrics == {"facts_scanned": 7}


class TestCostTable:
    def test_ewma_and_counter_rollup(self):
        table = CostTable(alpha=0.5)
        table.observe("i", "q", 10.0, 4.0, {"facts_scanned": 10}, "t1")
        table.observe("i", "q", 20.0, 8.0, {"facts_scanned": 30}, "t2")
        (row,) = table.top()
        assert row["count"] == 2
        assert row["ewma_latency_ms"] == pytest.approx(15.0)
        assert row["ewma_cpu_ms"] == pytest.approx(6.0)
        assert row["total_cpu_ms"] == pytest.approx(12.0)
        assert row["counters"] == {"facts_scanned": 40}
        assert row["last_trace_id"] == "t2"
        assert row["p95_ms"] == pytest.approx(20.0)

    def test_top_sort_orders(self):
        table = CostTable()
        table.observe("i", "cheap_but_frequent", 1.0, 1.0)
        table.observe("i", "cheap_but_frequent", 1.0, 1.0)
        table.observe("i", "cheap_but_frequent", 1.0, 1.0)
        table.observe("i", "expensive", 50.0, 40.0)
        assert table.top(sort="cpu")[0]["plan"] == "expensive"
        assert table.top(sort="p95")[0]["plan"] == "expensive"
        assert table.top(sort="count")[0]["plan"] == "cheap_but_frequent"
        with pytest.raises(ValueError):
            table.top(sort="alphabetical")

    def test_lru_eviction_drops_the_stalest_key(self):
        table = CostTable(capacity=2)
        table.observe("i", "a", 1.0, 1.0)
        table.observe("i", "b", 1.0, 1.0)
        table.observe("i", "a", 1.0, 1.0)  # refresh "a"
        table.observe("i", "c", 1.0, 1.0)  # evicts "b"
        plans = {row["plan"] for row in table.top(limit=10)}
        assert plans == {"a", "c"}
        assert table.summary()["evictions"] == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CostTable(capacity=0)
        with pytest.raises(ValueError):
            CostTable(alpha=0.0)


class TestDebugTopIntegration:
    def test_debug_top_ranks_the_workload(self):
        group_query = "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"

        async def scenario(server, client):
            for _ in range(5):
                await client.answer("stock", STOCK_SUM)
            await client.answer_group_by("stock", group_query)
            top = await client.debug_top(sort="count")
            assert top["sort"] == "count"
            rows = top["top"]
            assert rows[0]["plan"] == STOCK_SUM
            assert rows[0]["count"] == 5
            by_plan = {row["plan"]: row for row in rows}
            assert group_query in by_plan
            assert by_plan[STOCK_SUM]["counters"]["facts_scanned"] > 0
            assert by_plan[STOCK_SUM]["counters"]["blocks_touched"] > 0
            assert by_plan[STOCK_SUM]["last_trace_id"]
            # group-by scans instance × groups: more facts per request
            assert (
                by_plan[group_query]["counters"]["facts_scanned"]
                > by_plan[STOCK_SUM]["counters"]["facts_scanned"] / 5
            )
            # the /metrics JSON snapshot summarises the same table
            metrics = await client.metrics()
            assert metrics["cost"]["entries"] == len(rows)
            assert metrics["cost"]["counters"]["facts_scanned"] > 0
            assert "event_loop" in metrics
            # invalid sort is a structured 400
            status, body = await client.request("GET", "/debug/top?sort=bogus")
            assert status == 400 and body["error"]["type"] == "Protocol"

        serve_scenario(scenario)

    def test_cost_is_accounted_even_for_sampled_out_traces(self):
        async def scenario(server, client):
            for _ in range(4):
                await client.answer("stock", STOCK_SUM)
            top = await client.debug_top(sort="count")
            assert top["top"][0]["count"] == 4  # dropped traces still counted

        serve_scenario(scenario, trace_sample=1000)


# -- exemplars ---------------------------------------------------------------------------


class TestExemplars:
    def test_prometheus_buckets_carry_trace_id_exemplars(self):
        async def scenario(server, client):
            for _ in range(3):
                await client.answer("stock", STOCK_SUM)
            host, port = server.address
            status, _, payload = await _raw_request(
                host, port, "GET", "/metrics?format=prometheus"
            )
            assert status == 200
            families = parse_prometheus(payload.decode("utf-8"))
            exemplars = families["repro_request_latency_seconds"]["exemplars"]
            answer_exemplars = {
                key: ex
                for key, ex in exemplars.items()
                if ("endpoint", "POST /answer") in key[1]
            }
            assert answer_exemplars, "no exemplar on any POST /answer bucket"
            for (name, labels), (ex_labels, value, ts) in answer_exemplars.items():
                assert name == "repro_request_latency_seconds_bucket"
                (label, trace_id) = ex_labels[0]
                assert label == "trace_id" and len(trace_id) == 32
                assert value > 0 and ts is not None
            # the JSON snapshot carries the same exemplars
            metrics = await client.metrics()
            snapshot_exemplars = metrics["latency"]["POST /answer"]["exemplars"]
            assert any(
                ex["trace_id"] and ex["value_seconds"] > 0
                for ex in snapshot_exemplars.values()
            )

        serve_scenario(scenario)

    def test_histogram_exemplar_is_most_recent_per_bucket(self):
        histogram = LatencyHistogram(buckets=(0.1, 1.0))
        histogram.observe(0.05, trace_id="first")
        histogram.observe(0.06, trace_id="second")
        histogram.observe(5.0, trace_id="overflow")
        histogram.observe(0.5)  # no trace id: bucket gets no exemplar
        snap = histogram.snapshot()
        assert snap["exemplars"]["0.1"]["trace_id"] == "second"
        assert snap["exemplars"]["+Inf"]["trace_id"] == "overflow"
        assert "1.0" not in snap["exemplars"]


# -- log levels --------------------------------------------------------------------------


class TestLogLevel:
    def test_set_log_level_filters_below_threshold(self, captured_log):
        log = get_logger("test")
        try:
            set_log_level("error")
            log.debug("quiet")
            log.info("quiet_too")
            log.error("loud")
        finally:
            set_log_level("info")
        events = [json.loads(line)["event"] for line in captured_log.lines]
        assert events == ["loud"]

    def test_parse_log_level_accepts_known_names(self):
        assert parse_log_level("debug") == logging.DEBUG
        assert parse_log_level("WARNING") == logging.WARNING
        assert parse_log_level(None) is None
        assert parse_log_level("") is None

    def test_malformed_level_warns_once(self):
        _reset_log_warnings()
        with pytest.warns(RuntimeWarning, match="REPRO_LOG_LEVEL"):
            assert parse_log_level("loudest") is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second malformed parse is silent
            assert parse_log_level("loudest") is None
        _reset_log_warnings()

    def test_server_config_sets_the_level(self, captured_log):
        async def scenario(server, client):
            get_logger("test").info("should_be_filtered")
            get_logger("test").error("should_pass")
            return None

        try:
            serve_scenario(scenario, log_level="error")
        finally:
            set_log_level("info")
        events = [json.loads(line)["event"] for line in captured_log.lines]
        assert "should_be_filtered" not in events
        assert "should_pass" in events


# -- adaptive sampling control -----------------------------------------------------------


def _tick_second(controller, clock_cell, arrivals):
    """Feed one second of ``arrivals`` requests through the controller.

    The last arrival lands after the fake clock crosses the interval
    boundary, so it triggers the rate recomputation for the full window.
    """
    for _ in range(arrivals - 1):
        controller.observe_arrival()
    clock_cell[0] += 1.0
    controller.observe_arrival()


class TestAdaptiveSamplingController:
    def _controller(self, target_rps=10.0, **kwargs):
        sampler = TraceSampler(1)
        clock_cell = [0.0]
        kwargs.setdefault("alpha", 1.0)  # no smoothing: deterministic steps
        controller = AdaptiveSamplingController(
            sampler, target_rps, clock=lambda: clock_cell[0], **kwargs
        )
        return controller, sampler, clock_cell

    def test_converges_after_a_10x_step(self):
        controller, sampler, clock = self._controller(target_rps=10.0)
        # steady state at 100 rps: one window moves N to 100/10 = 10
        _tick_second(controller, clock, 100)
        assert sampler.rate == 10
        # a 10x arrival step: the next window re-lands the traced rate
        # inside the hysteresis band around the target
        _tick_second(controller, clock, 1000)
        assert sampler.rate == 100
        traced_rps = 1000 / sampler.rate
        assert 10.0 / 1.25 <= traced_rps <= 10.0 * 1.25
        # ...and holds there: no further adjustments while arrivals are flat
        adjustments = controller.stats()["adjustments"]
        for _ in range(3):
            _tick_second(controller, clock, 1000)
        assert controller.stats()["adjustments"] == adjustments
        assert sampler.rate == 100

    def test_hysteresis_absorbs_in_band_noise(self):
        controller, sampler, clock = self._controller(target_rps=10.0)
        _tick_second(controller, clock, 100)
        assert sampler.rate == 10
        # traced rate 11 rps is within the +-25% band: N must not flap
        _tick_second(controller, clock, 110)
        assert sampler.rate == 10
        assert controller.stats()["adjustments"] == 1

    def test_rate_recovers_downward_when_traffic_drops(self):
        controller, sampler, clock = self._controller(target_rps=10.0)
        _tick_second(controller, clock, 1000)
        assert sampler.rate == 100
        _tick_second(controller, clock, 20)
        assert sampler.rate == 2

    def test_rate_clamps_at_the_extremes(self):
        controller, sampler, clock = self._controller(target_rps=0.01)
        _tick_second(controller, clock, 100000)
        assert sampler.rate == MAX_RATE
        controller, sampler, clock = self._controller(target_rps=1000.0)
        sampler.set_rate(64)
        _tick_second(controller, clock, 10)
        assert sampler.rate == 1

    def test_stats_shape_and_validation(self):
        controller, sampler, clock = self._controller(target_rps=10.0)
        stats = controller.stats()
        assert stats["mode"] == "adaptive"
        assert stats["target_rps"] == 10.0
        assert stats["observed_rps"] is None  # no full window yet
        with pytest.raises(ValueError):
            AdaptiveSamplingController(TraceSampler(1), 0.0)
        with pytest.raises(ValueError):
            AdaptiveSamplingController(TraceSampler(1), 10.0, interval_s=0)
        with pytest.raises(ValueError):
            AdaptiveSamplingController(TraceSampler(1), 10.0, alpha=0)
        with pytest.raises(ValueError):
            AdaptiveSamplingController(TraceSampler(1), 10.0, hysteresis=-1)

    def test_server_reports_adaptive_vs_static_mode(self):
        async def scenario(server, client):
            metrics = await client.metrics()
            return metrics["sampling"]

        sampling = serve_scenario(scenario, trace_target_rps=50.0)
        assert sampling["mode"] == "adaptive"
        assert sampling["target_rps"] == 50.0
        sampling = serve_scenario(
            scenario, trace_sample=5, trace_target_rps=50.0
        )
        assert sampling["mode"] == "static"  # an explicit pin wins
        assert sampling["rate"] == 5


# -- cost-predictive admission -----------------------------------------------------------


class TestCostPredictor:
    def test_cold_and_single_observation_keys_return_none(self):
        table = CostTable()
        predictor = CostPredictor(table, min_observations=2)
        assert predictor.predict_ms("stock", "Q") is None
        table.observe("stock", "Q", 100.0, 40.0)
        assert predictor.predict_ms("stock", "Q") is None  # one outlier != signal
        table.observe("stock", "Q", 100.0, 40.0)
        assert predictor.predict_ms("stock", "Q") == pytest.approx(40.0)

    def test_prediction_uses_cpu_not_wall_latency(self):
        table = CostTable()
        predictor = CostPredictor(table, min_observations=1)
        # queueing inflates wall latency; CPU is the workload's true cost
        table.observe("stock", "Q", 5000.0, 2.0)
        assert predictor.predict_ms("stock", "Q") == pytest.approx(2.0)

    def test_missing_identifiers_return_none(self):
        predictor = CostPredictor(CostTable(), min_observations=1)
        assert predictor.predict_ms(None, "Q") is None
        assert predictor.predict_ms("stock", None) is None

    def test_lookup_does_not_perturb_the_table(self):
        table = CostTable(capacity=2)
        predictor = CostPredictor(table, min_observations=1)
        table.observe("i", "old", 1.0, 1.0)
        table.observe("i", "warm", 1.0, 1.0)
        # a prediction storm on the LRU-cold key must not keep it warm
        for _ in range(10):
            predictor.predict_ms("i", "old")
        table.observe("i", "new", 1.0, 1.0)  # evicts the true LRU tail
        assert predictor.predict_ms("i", "old") is None
        assert predictor.predict_ms("i", "warm") is not None


class TestAdmissionGateLedger:
    def test_depth_shed_when_full(self):
        gate = AdmissionGate(1)
        assert gate.admit() == (True, REASON_DEPTH, 0.0)
        admitted, reason, _ = gate.admit()
        assert not admitted and reason == REASON_DEPTH

    def test_cost_budget_sheds_expensive_backlog(self):
        gate = AdmissionGate(8)
        admitted, reason, queued = gate.admit(40.0, 100.0)
        assert admitted and reason == REASON_COST_OK and queued == 40.0
        admitted, reason, queued = gate.admit(50.0, 100.0)
        assert admitted and reason == REASON_COST_OK and queued == 90.0
        admitted, reason, queued = gate.admit(40.0, 100.0)
        assert not admitted and reason == REASON_PREDICTED_COST
        assert queued == 90.0

    def test_empty_gate_always_admits(self):
        gate = AdmissionGate(8)
        # a prediction alone over budget must still run on an idle server
        admitted, reason, _ = gate.admit(10_000.0, 1.0)
        assert admitted and reason == REASON_COST_OK

    def test_small_costs_are_exempt_from_the_budget_check(self):
        gate = AdmissionGate(8)
        gate.admit(95.0, 100.0)
        # a 2 ms point query extends the backlog negligibly: admitted even
        # though the ledger is saturated (it still deposits its cost)
        admitted, reason, queued = gate.admit(2.0, 100.0)
        assert admitted and reason == REASON_COST_OK
        assert queued == 97.0
        # a significant cost against the same ledger sheds
        admitted, reason, _ = gate.admit(20.0, 100.0)
        assert not admitted and reason == REASON_PREDICTED_COST

    def test_cold_keys_fall_back_to_depth(self):
        gate = AdmissionGate(8)
        gate.admit(40.0, 100.0)
        admitted, reason, queued = gate.admit(None, 100.0)
        assert admitted and reason == REASON_COLD_KEY
        assert queued == 40.0  # cold keys deposit nothing

    def test_release_drains_and_zeroes_the_ledger(self):
        gate = AdmissionGate(8)
        gate.admit(40.0, 100.0)
        gate.admit(50.0, 100.0)
        gate.release(40.0)
        assert gate.queued_cost_ms == 50.0
        gate.release(50.0)
        assert gate.in_use == 0
        assert gate.queued_cost_ms == 0.0  # idle gate carries no drift

    def test_retry_after_scales_with_backlog(self):
        assert retry_after_s(0.0) == 1
        assert retry_after_s(2500.0) == 3
        assert retry_after_s(1e9) == 30


class TestCostShedIntegration:
    def test_predicted_cost_shed_is_a_structured_503(self):
        async def scenario(server, client):
            # warm the cost table past min_observations
            for _ in range(3):
                await client.answer("stock", STOCK_SUM)
            # occupy the gate with an expensive backlog by hand — the
            # deterministic way to exercise the budget check
            admitted, _, _ = server.gate.admit(50.0, server.config.max_queue_cost_ms)
            assert admitted
            try:
                host, port = server.address
                status, headers, payload = await _raw_request(
                    host,
                    port,
                    "POST",
                    "/answer",
                    headers={"Content-Type": "application/json"},
                    body=json.dumps(
                        {"instance": "stock", "query": STOCK_SUM}
                    ).encode(),
                )
                body = json.loads(payload)
                assert status == 503
                error = body["error"]
                assert error["type"] == "AdmissionError"
                assert error["reason"] == "predicted_cost"
                admission = error["admission"]
                assert admission["admitted"] is False
                assert admission["predicted_cost_ms"] > 0.0
                assert admission["queued_cost_ms"] >= 50.0
                assert int(headers["retry-after"]) >= 1
            finally:
                server.gate.release(50.0)
            # with the backlog drained the same request is admitted again
            answer = await client.answer("stock", STOCK_SUM)
            assert answer is not None
            metrics = await client.metrics()
            assert metrics["admission"]["max_queue_cost_ms"] == 0.5
            return None

        serve_scenario(scenario, max_queue_cost_ms=0.5)

    def test_explain_payload_carries_the_admission_verdict(self):
        async def scenario(server, client):
            status, body = await client.request(
                "POST",
                "/answer",
                {"instance": "stock", "query": STOCK_SUM, "explain": True},
            )
            assert status == 200
            admission = body["admission"]
            # an idle server admits; the cold cost table gives no prediction
            assert admission["admitted"] is True
            assert admission["reason"] == REASON_COLD_KEY
            assert admission["predicted_cost_ms"] is None
            # once the key is warm, the verdict carries the prediction
            for _ in range(2):
                await client.answer("stock", STOCK_SUM)
            status, body = await client.request(
                "POST",
                "/answer",
                {"instance": "stock", "query": STOCK_SUM, "explain": True},
            )
            assert status == 200
            admission = body["admission"]
            assert admission["reason"] == REASON_COST_OK
            assert admission["predicted_cost_ms"] >= 0.0
            return None

        serve_scenario(scenario, max_queue_cost_ms=10_000.0)

    def test_depth_only_servers_report_depth_reason(self):
        async def scenario(server, client):
            status, body = await client.request(
                "POST",
                "/answer",
                {"instance": "stock", "query": STOCK_SUM, "explain": True},
            )
            assert status == 200
            assert body["admission"]["reason"] == REASON_DEPTH
            return None

        serve_scenario(scenario)  # no max_queue_cost_ms: depth-only


class TestDebugTopValidation:
    def test_unknown_sort_is_a_structured_400(self):
        async def scenario(server, client):
            status, body = await client.request("GET", "/debug/top?sort=bogus")
            assert status == 400
            assert body["error"]["type"] == "Protocol"
            assert body["error"]["valid_sorts"] == ["cpu", "p95", "count"]
            # an explicitly empty sort is an unknown key, not the default
            status, body = await client.request("GET", "/debug/top?sort=")
            assert status == 400
            assert body["error"]["valid_sorts"] == ["cpu", "p95", "count"]
            status, body = await client.request("GET", "/debug/top?limit=x")
            assert status == 400
            return None

        serve_scenario(scenario)
