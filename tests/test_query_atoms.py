"""Tests for terms and atoms."""

import pytest

from repro.datamodel.facts import Fact
from repro.datamodel.signature import RelationSignature
from repro.exceptions import QueryError
from repro.query.atom import Atom
from repro.query.terms import Variable, is_variable, term_str


class TestVariable:
    def test_equality_includes_numeric_flag(self):
        assert Variable("x") == Variable("x")
        assert Variable("x", numeric=True) != Variable("x")

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable("x")
        assert not is_variable(3)

    def test_term_str(self):
        assert term_str(Variable("x")) == "x"
        assert term_str("a") == "'a'"
        assert term_str(5) == "5"


@pytest.fixture
def stock_signature():
    return RelationSignature(
        "Stock", 3, 2, numeric_positions=(3,), attribute_names=("Product", "Town", "Qty")
    )


class TestAtom:
    def test_arity_checked(self, stock_signature):
        with pytest.raises(QueryError):
            Atom(stock_signature, (Variable("p"), Variable("t")))

    def test_key_and_nonkey_variables(self, stock_signature):
        atom = Atom(stock_signature, (Variable("p"), Variable("t"), Variable("y", True)))
        assert atom.key_variables == frozenset({Variable("p"), Variable("t")})
        assert atom.nonkey_variables == frozenset({Variable("y", True)})
        assert atom.variables == frozenset(
            {Variable("p"), Variable("t"), Variable("y", True)}
        )

    def test_constants_not_in_variable_sets(self, stock_signature):
        atom = Atom(stock_signature, ("Tesla X", Variable("t"), 35))
        assert atom.variables == frozenset({Variable("t")})
        assert atom.key_variables == frozenset({Variable("t")})

    def test_variable_positions(self, stock_signature):
        atom = Atom(stock_signature, (Variable("x"), Variable("x"), Variable("y", True)))
        assert atom.variable_positions(Variable("x")) == (1, 2)

    def test_substitute(self, stock_signature):
        atom = Atom(stock_signature, (Variable("p"), Variable("t"), Variable("y", True)))
        grounded = atom.substitute({Variable("p"): "Tesla X"})
        assert grounded.terms[0] == "Tesla X"
        assert grounded.terms[1] == Variable("t")

    def test_apply_valuation_by_name(self, stock_signature):
        atom = Atom(stock_signature, (Variable("p"), Variable("t"), Variable("y", True)))
        grounded = atom.apply_valuation({"t": "Boston"})
        assert grounded.terms[1] == "Boston"

    def test_match_success(self, stock_signature):
        atom = Atom(stock_signature, (Variable("p"), "Boston", Variable("y", True)))
        fact = Fact("Stock", ("Tesla X", "Boston", 35))
        assert atom.match(fact) == {"p": "Tesla X", "y": 35}

    def test_match_constant_mismatch(self, stock_signature):
        atom = Atom(stock_signature, (Variable("p"), "Boston", Variable("y", True)))
        assert atom.match(Fact("Stock", ("Tesla X", "New York", 35))) is None

    def test_match_repeated_variable_must_agree(self, stock_signature):
        atom = Atom(stock_signature, (Variable("x"), Variable("x"), Variable("y", True)))
        assert atom.match(Fact("Stock", ("a", "a", 1))) == {"x": "a", "y": 1}
        assert atom.match(Fact("Stock", ("a", "b", 1))) is None

    def test_match_wrong_relation(self, stock_signature):
        atom = Atom(stock_signature, (Variable("p"), Variable("t"), Variable("y", True)))
        assert atom.match(Fact("Dealers", ("Smith", "Boston", 1))) is None

    def test_ground(self, stock_signature):
        atom = Atom(stock_signature, (Variable("p"), "Boston", Variable("y", True)))
        fact = atom.ground({"p": "Tesla X", "y": 35})
        assert fact == Fact("Stock", ("Tesla X", "Boston", 35))

    def test_ground_requires_all_variables(self, stock_signature):
        atom = Atom(stock_signature, (Variable("p"), "Boston", Variable("y", True)))
        with pytest.raises(QueryError):
            atom.ground({"p": "Tesla X"})

    def test_is_ground(self, stock_signature):
        assert Atom(stock_signature, ("a", "b", 1)).is_ground()
        assert not Atom(stock_signature, (Variable("p"), "b", 1)).is_ground()

    def test_str(self, stock_signature):
        atom = Atom(stock_signature, (Variable("p"), "Boston", 35))
        assert str(atom) == "Stock(p, 'Boston', 35)"
