"""Tests for attack graphs (Section 3, Example 3.1, Theorem 3.2 inputs)."""

import pytest

from repro.attacks.attack_graph import AttackGraph
from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import QueryError
from repro.query.parser import parse_aggregation_query, parse_query
from repro.query.terms import Variable


@pytest.fixture
def example31_schema():
    """Signatures reconstructed from Example 3.1 (keys derived from the F+ sets)."""
    return Schema(
        [
            RelationSignature("R", 2, 1),
            RelationSignature("S", 3, 2),
            RelationSignature("T", 3, 2),
            RelationSignature("N", 3, 2),
            RelationSignature("M", 2, 2),
        ]
    )


@pytest.fixture
def example31_query(example31_schema):
    return parse_query(
        example31_schema, "R(x, y), S(y, z, u), T(y, z, w), N(u, v, r), M(u, w)"
    )


class TestExample31:
    def test_plus_sets_match_paper(self, example31_query):
        graph = AttackGraph(example31_query)
        expected = {
            "R": {"x"},
            "S": {"y", "z", "w"},
            "T": {"y", "z", "u"},
            "N": {"u", "v"},
            "M": {"u", "w"},
        }
        for atom in example31_query.atoms:
            assert {v.name for v in graph.plus_set(atom)} == expected[atom.relation]

    def test_r_attacks_m_and_n_via_y_u(self, example31_query):
        graph = AttackGraph(example31_query)
        r_atom = example31_query.atom_for_relation("R")
        assert graph.attacks_atom(r_atom, example31_query.atom_for_relation("M"))
        assert graph.attacks_atom(r_atom, example31_query.atom_for_relation("N"))

    def test_graph_is_acyclic(self, example31_query):
        assert AttackGraph(example31_query).is_acyclic()

    def test_acyclicity_preserved_under_instantiation(self, example31_schema):
        # Fig. 2 (right): initializing x and y keeps the attack graph acyclic.
        query = parse_query(
            example31_schema,
            "R('b', 'c'), S('c', z, u), T('c', z, w), N(u, v, r), M(u, w)",
        )
        assert AttackGraph(query).is_acyclic()


class TestBasicProperties:
    def test_intro_query_attack(self, stock_schema):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        graph = AttackGraph(query)
        dealers = query.atom_for_relation("Dealers")
        stock = query.atom_for_relation("Stock")
        assert graph.attacks_atom(dealers, stock)
        assert not graph.attacks_atom(stock, dealers)
        assert graph.is_acyclic()

    def test_topological_sort_respects_edges(self, stock_schema):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        graph = AttackGraph(query)
        order = graph.topological_sort()
        assert [a.relation for a in order] == ["Dealers", "Stock"]

    def test_unattacked_atoms_and_variables(self, stock_schema):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        graph = AttackGraph(query)
        assert [a.relation for a in graph.unattacked_atoms()] == ["Dealers"]
        assert Variable("t") not in graph.unattacked_variables()

    def test_self_join_rejected(self, stock_schema):
        sig = stock_schema.relation("Dealers")
        from repro.query.atom import Atom
        from repro.query.conjunctive import ConjunctiveQuery

        query = ConjunctiveQuery(
            [
                Atom(sig, (Variable("x"), Variable("y"))),
                Atom(sig, (Variable("y"), Variable("z"))),
            ]
        )
        with pytest.raises(Exception):
            AttackGraph(query)

    def test_single_atom_graph_has_no_edges(self, stock_schema):
        query = parse_query(stock_schema, "Stock(p, t, y)")
        graph = AttackGraph(query)
        assert graph.edges() == []
        assert graph.is_acyclic()


class TestCycles:
    @pytest.fixture
    def cyclic_schema(self):
        return Schema(
            [
                RelationSignature("U", 2, 1),
                RelationSignature("V", 2, 1),
            ]
        )

    def test_two_atom_cycle(self, cyclic_schema):
        query = parse_query(cyclic_schema, "U(x, y), V(y, x)")
        graph = AttackGraph(query)
        assert not graph.is_acyclic()
        assert len(graph.cycles()) >= 1

    def test_topological_sort_raises_on_cycle(self, cyclic_schema):
        query = parse_query(cyclic_schema, "U(x, y), V(y, x)")
        with pytest.raises(QueryError):
            AttackGraph(query).topological_sort()

    def test_classic_cycle_is_weak(self, cyclic_schema):
        # K(q) contains x -> y and y -> x, so both attacks are weak and the
        # cycle is not strong (CERTAINTY is in P / L-complete, not coNP-hard).
        query = parse_query(cyclic_schema, "U(x, y), V(y, x)")
        graph = AttackGraph(query)
        assert not graph.has_strong_cycle()

    def test_strong_cycle_detected(self):
        # U(x, y), V(z, y): the classic coNP-complete query (join on a non-key
        # attribute); neither key determines the other, so the mutual attacks
        # form a strong cycle.
        schema = Schema(
            [
                RelationSignature("U", 2, 1),
                RelationSignature("V", 2, 1),
            ]
        )
        query = parse_query(schema, "U(x, y), V(z, y)")
        graph = AttackGraph(query)
        assert not graph.is_acyclic()
        assert graph.has_strong_cycle()

    def test_is_weak_attack_requires_attack(self, stock_schema):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        graph = AttackGraph(query)
        stock = query.atom_for_relation("Stock")
        dealers = query.atom_for_relation("Dealers")
        with pytest.raises(QueryError):
            graph.is_weak_attack(stock, dealers)


class TestFreeVariablesAsConstants:
    def test_free_variable_removes_attack(self, stock_schema):
        # With t free (treated as a constant), Dealers no longer attacks Stock.
        query = parse_query(stock_schema, "Dealers(x, t), Stock(p, t, y)", free="t")
        graph = AttackGraph(query)
        dealers = query.atom_for_relation("Dealers")
        stock = query.atom_for_relation("Stock")
        assert not graph.attacks_atom(dealers, stock)

    def test_groupby_query_graph(self, stock_schema):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        graph = AttackGraph(query.body)
        assert graph.is_acyclic()
