"""Tests for functional dependencies and closures."""

from repro.attacks.fds import FunctionalDependency, closure, implies_fd, key_fds
from repro.query.parser import parse_query
from repro.query.terms import Variable


def fd(lhs, rhs):
    return FunctionalDependency(
        frozenset(Variable(n) for n in lhs), frozenset(Variable(n) for n in rhs)
    )


class TestClosure:
    def test_reflexive(self):
        assert closure([Variable("x")], []) == frozenset({Variable("x")})

    def test_single_step(self):
        assert Variable("y") in closure([Variable("x")], [fd("x", "y")])

    def test_transitive(self):
        deps = [fd("x", "y"), fd("y", "z")]
        assert Variable("z") in closure([Variable("x")], deps)

    def test_requires_whole_lhs(self):
        deps = [fd("xy", "z")]
        assert Variable("z") not in closure([Variable("x")], deps)
        assert Variable("z") in closure([Variable("x"), Variable("y")], deps)

    def test_implies_fd(self):
        deps = [fd("x", "y"), fd("y", "z")]
        assert implies_fd(deps, [Variable("x")], [Variable("z")])
        assert not implies_fd(deps, [Variable("z")], [Variable("x")])


class TestKeyFds:
    def test_key_fds_of_query(self, running_schema):
        query = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        deps = key_fds(query)
        rendered = {
            (
                frozenset(v.name for v in dependency.lhs),
                frozenset(v.name for v in dependency.rhs),
            )
            for dependency in deps
        }
        assert (frozenset({"x"}), frozenset({"x", "y"})) in rendered
        assert (frozenset({"y", "z"}), frozenset({"y", "z", "r"})) in rendered

    def test_fd_str(self):
        dependency = fd("x", "yz")
        assert "->" in str(dependency)
