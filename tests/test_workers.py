"""Worker-pool tests: lifecycle, instance transfer, stable assignment,
crash recovery, and — most importantly — parity with in-process execution.

The pool is only allowed to exist because it is indistinguishable from the
in-process engine (same Fraction-exact bounds, same GROUP BY keys, same ⊥
cases) on the very workloads the shard-parity harness pins down; the
recovery tests use the pool's deterministic ``sleep`` diagnostic job so a
worker can be killed provably *mid-job*.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import time

import pytest

from repro.engine import (
    AnswerOptions,
    ConsistentAnswerEngine,
    WorkerCrashError,
    WorkerPool,
)
from repro.engine.workers import WorkerPoolError, shard_worker_of
from repro.workloads.generators import (
    InconsistentDatabaseGenerator,
    WorkloadSpec,
    derive_seed,
)
from repro.workloads.queries import (
    stock_groupby_query,
    stock_sum_query,
    stock_total_query,
    stock_town_groupby_query,
)
from repro.workloads.scenarios import fig1_stock_instance


def _workload(seed: int, stock_facts: int = 24):
    spec = WorkloadSpec(
        dealers=8,
        products=6,
        towns=5,
        stock_facts=stock_facts,
        inconsistency=0.25,
        extra_facts_per_block=1,
        seed=seed,
    )
    return InconsistentDatabaseGenerator(spec).generate()


def _wait_until(predicate, timeout: float = 10.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- lifecycle ---------------------------------------------------------------------------


class TestPoolLifecycle:
    def test_start_and_shutdown_are_idempotent(self):
        pool = WorkerPool(workers=2)
        assert not pool.is_running
        pool.start()
        pool.start()  # second start is a no-op
        assert pool.is_running
        assert len([pid for pid in pool.worker_pids() if pid]) == 2
        pool.shutdown()
        pool.shutdown()  # second shutdown is a no-op
        assert not pool.is_running

    def test_start_after_shutdown_raises(self):
        pool = WorkerPool(workers=1)
        pool.start()
        pool.shutdown()
        with pytest.raises(WorkerPoolError):
            pool.start()

    def test_context_manager_tears_down_workers(self):
        with WorkerPool(workers=2) as pool:
            pids = [pid for pid in pool.worker_pids() if pid]
            assert len(pids) == 2
        assert not pool.is_running
        for pid in pids:
            assert _wait_until(lambda: not _alive(pid)), f"worker {pid} survived"

    def test_submitting_after_shutdown_fails_cleanly(self):
        pool = WorkerPool(workers=1)
        pool.start()
        pool.shutdown()
        with pytest.raises(WorkerPoolError):
            pool.answer(stock_sum_query(), fig1_stock_instance())

    def test_stats_shape(self):
        with WorkerPool(workers=2) as pool:
            pool.answer(stock_sum_query(), fig1_stock_instance())
            stats = pool.stats()
            assert stats["enabled"] and stats["running"]
            assert stats["workers"] == 2
            assert stats["jobs_submitted"] >= 1
            assert stats["restarts"] == 0
            assert len(stats["per_worker"]) == 2
            worked = [w for w in stats["per_worker"] if w.get("jobs")]
            assert worked, "no worker reported a completed job"
            assert "plan_cache" in worked[0]
            assert worked[0]["resident_instances"] == 1


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


# -- instance registration and transfer --------------------------------------------------


class TestInstanceTransfer:
    def test_instance_is_pickled_once_and_reused(self):
        instance = fig1_stock_instance()
        query = stock_sum_query()
        with WorkerPool(workers=1) as pool:
            ref_first = pool.ref_for(instance)
            ref_second = pool.ref_for(instance)
            assert ref_first is ref_second  # no re-pickle for the same object
            expected = ConsistentAnswerEngine().answer(query, instance)
            for _ in range(3):
                assert pool.answer(query, instance) == expected
            (worker,) = pool.stats()["per_worker"]
            assert worker["instance_loads"] == 1  # transferred exactly once
            assert worker["jobs"] == 3

    def test_mutated_instance_is_re_shipped(self):
        instance = fig1_stock_instance()
        query = stock_total_query("MAX")
        engine = ConsistentAnswerEngine()
        with WorkerPool(workers=1) as pool:
            before = pool.answer(query, instance)
            assert before == engine.answer(query, instance)
            version_before = pool.ref_for(instance).version
            instance.add_row("Stock", "Tesla Z", "Chicago", 4000)
            after = pool.answer(query, instance)
            assert pool.ref_for(instance).version > version_before
            assert after == engine.answer(query, instance)
            assert after != before

    def test_named_reregistration_bumps_version_and_changes_answers(self):
        query = stock_total_query("MAX")
        small = fig1_stock_instance()
        bigger = fig1_stock_instance()
        bigger.add_row("Stock", "Tesla Z", "Chicago", 4000)
        with WorkerPool(workers=1) as pool:
            first = pool.answer(query, small, name="db")
            ref_small = pool.ref_for(small, name="db")
            second = pool.answer(query, bigger, name="db")  # replacement
            ref_bigger = pool.ref_for(bigger, name="db")
            assert ref_bigger.key == ref_small.key  # same logical instance
            assert ref_bigger.version > ref_small.version
            assert first != second
            assert second == ConsistentAnswerEngine().answer(query, bigger)

    def test_invalidate_drops_worker_residency(self):
        instance = fig1_stock_instance()
        with WorkerPool(workers=1) as pool:
            pool.answer(stock_sum_query(), instance, name="db")
            assert pool.stats()["per_worker"][0]["resident_instances"] == 1
            pool.invalidate("db")
            # Residency counters update with the next completed job.
            pool.answer(stock_sum_query(), fig1_stock_instance())
            assert _wait_until(
                lambda: all(
                    w["resident_instances"] == 1 and w["instance_loads"] == 2
                    for w in pool.stats()["per_worker"]
                )
            ), pool.stats()

    def test_instances_spool_to_disk_and_jobs_carry_thin_refs(self):
        instance = _workload(7, stock_facts=60)
        query = stock_total_query("MIN")
        with WorkerPool(workers=2) as pool:
            ref = pool.ref_for(instance)
            assert os.path.exists(ref.spool_path)
            # The job payload is the thin ref, never the database: its
            # pickle must stay tiny however large the instance is.
            import pickle

            assert len(pickle.dumps(ref)) < 1024
            assert pool.answer(query, instance) == ConsistentAnswerEngine().answer(
                query, instance
            )
            spool_path = ref.spool_path
        assert not os.path.exists(spool_path)  # shutdown removes the spool

    def test_spool_files_retire_on_a_grandfather_schedule(self):
        """Version bumps must not accumulate pickles: building version v
        deletes v-2's file (never v-1's, which an in-flight job may still
        load), so a long-lived server stays at <= 2 files per key."""
        query = stock_total_query("MAX")
        with WorkerPool(workers=1) as pool:
            instance = fig1_stock_instance()
            paths = []
            for round_index in range(6):
                instance.add_row("Stock", f"Tesla {round_index}", "Chicago", 10)
                ref = pool.ref_for(instance, name="db")
                paths.append(ref.spool_path)
                assert pool.answer(query, instance, name="db").lub >= 10
                live = [p for p in paths if os.path.exists(p)]
                assert len(live) <= 2, live
                assert paths[-1] in live  # the current version always exists

    def test_named_and_anonymous_paths_share_one_ref(self):
        # /answer registers by name, /answer_many goes through the anonymous
        # path — both must resolve to one key (one resident copy per worker).
        instance = fig1_stock_instance()
        with WorkerPool(workers=1) as pool:
            named = pool.ref_for(instance, name="db")
            anonymous = pool.ref_for(instance)
            assert anonymous is named
            pool.answer(stock_sum_query(), instance, name="db")
            pool.run_chunks([[(0, stock_sum_query(), instance)]])
            (worker,) = pool.stats()["per_worker"]
            assert worker["resident_instances"] == 1
            assert worker["instance_loads"] == 1

    def test_id_reuse_cannot_serve_a_stale_named_ref(self):
        # CPython reuses object ids: replacing a named instance with an
        # equal-cardinality database allocated at the same address must
        # still bump the version (the weakref guard, not (id, len)).
        query = stock_total_query("MAX")
        with WorkerPool(workers=1) as pool:
            for round_index in range(5):
                instance = fig1_stock_instance()
                instance.add_row("Stock", "Tesla Z", "Chicago", round_index)
                ref = pool.ref_for(instance, name="db")
                assert ref.load() == instance, f"stale pickle in round {round_index}"
                assert pool.answer(query, instance, name="db") == (
                    ConsistentAnswerEngine().answer(query, instance)
                )
                del instance  # free the object so the next round may reuse its id


# -- stable shard→worker assignment ------------------------------------------------------


class TestStableShardAssignment:
    def test_hash_is_deterministic_and_in_range(self):
        for shards in (2, 3, 7):
            for index in range(shards):
                owner = shard_worker_of("fp", shards, index, 4)
                assert owner == shard_worker_of("fp", shards, index, 4)
                assert 0 <= owner < 4
        # A single worker owns everything.
        assert shard_worker_of("fp", 5, 3, 1) == 0

    def test_assignment_is_stable_across_pools_and_reregistration(self):
        instance = fig1_stock_instance()
        with WorkerPool(workers=3) as first:
            original = first.shard_assignment(instance, 7)
            assert original == first.shard_assignment(instance, 7)
        with WorkerPool(workers=3) as second:
            assert second.shard_assignment(instance, 7) == original
            # Re-registering a database with the same schema keeps every
            # shard on its worker: the hash keys on the schema fingerprint.
            replacement = fig1_stock_instance()
            replacement.add_row("Stock", "Tesla Z", "Chicago", 4000)
            second.register_instance("db", replacement)
            assert second.shard_assignment(replacement, 7) == original

    def test_shard_jobs_land_on_assigned_workers(self):
        instance = _workload(11, stock_facts=40)
        query = stock_total_query("MAX")
        engine = ConsistentAnswerEngine()
        plan = engine.compile(query)
        with WorkerPool(workers=2, engine_config=engine.config()) as pool:
            assignment = set(pool.shard_assignment(instance, 4))
            pool.summarize_shards(plan.query, instance, 4, "balanced", binding={})
            stats = pool.stats()
            workers_with_shard_jobs = {
                w["worker"] for w in stats["per_worker"] if w.get("shard_jobs")
            }
            assert workers_with_shard_jobs == assignment


# -- crash recovery ----------------------------------------------------------------------


class TestCrashRecovery:
    def test_idle_worker_is_respawned(self):
        instance = fig1_stock_instance()
        query = stock_sum_query()
        with WorkerPool(workers=2) as pool:
            expected = pool.answer(query, instance)
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert _wait_until(lambda: pool.stats()["restarts"] >= 1)
            assert _wait_until(lambda: pool.worker_pids()[0] not in (None, victim))
            assert pool.answer(query, instance) == expected
            assert pool.stats()["restarts"] == 1

    def test_job_killed_mid_flight_is_retried_once(self):
        with WorkerPool(workers=2) as pool:
            future = pool._submit(0, "sleep", (0.4,))
            time.sleep(0.1)  # the job is provably running now
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            assert future.result(timeout=15) == 0.4  # retried on the respawn
            stats = pool.stats()
            assert stats["restarts"] >= 1 and stats["retries"] >= 1

    def test_second_crash_fails_with_worker_crash_error(self):
        with WorkerPool(workers=2) as pool:
            future = pool._submit(0, "sleep", (2.0,))
            time.sleep(0.1)
            first = pool.worker_pids()[0]
            os.kill(first, signal.SIGKILL)
            assert _wait_until(lambda: pool.worker_pids()[0] not in (None, first))
            time.sleep(0.2)  # the retry is sleeping on the respawned worker
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(WorkerCrashError):
                future.result(timeout=15)

    def test_sibling_workers_are_unaffected_by_a_crash(self):
        instance = fig1_stock_instance()
        query = stock_sum_query()
        with WorkerPool(workers=2) as pool:
            expected = pool.answer(query, instance)
            os.kill(pool.worker_pids()[1], signal.SIGKILL)
            # Worker 0 keeps answering while worker 1 respawns.
            for _ in range(3):
                assert pool.answer(query, instance) == expected


# -- parity with in-process execution (the shard-parity workloads) -----------------------


class TestPoolParity:
    """Pool results must be Fraction-exact equal to in-process results."""

    QUERIES = (
        stock_sum_query(),
        stock_sum_query("dealer0"),
        stock_total_query("SUM"),
        stock_total_query("MIN"),
        stock_total_query("MAX"),
        stock_groupby_query(),
        stock_town_groupby_query(),
    )

    @pytest.mark.parametrize("backend", ("operational", "sqlite"))
    def test_single_answers_match_in_process(self, backend, repro_seed):
        engine = ConsistentAnswerEngine(backend=backend)
        instances = [
            fig1_stock_instance(),
            _workload(derive_seed(repro_seed, "pool-parity", backend)),
        ]
        with WorkerPool(workers=2, engine_config=engine.config()) as pool:
            for instance in instances:
                for query in self.QUERIES:
                    if query.free_variables:
                        expected = engine.answer_group_by(query, instance)
                    else:
                        expected = engine.answer(query, instance)
                    assert pool.answer(query, instance) == expected, str(query)

    def test_sharded_execution_through_attached_pool(self, repro_seed):
        engine = ConsistentAnswerEngine()
        instance = _workload(derive_seed(repro_seed, "pool-shards"), stock_facts=40)
        query = stock_total_query("MAX")
        group_query = stock_town_groupby_query()
        baseline = engine.answer(query, instance, options=AnswerOptions(shards=3))
        group_baseline = engine.answer_group_by(
            group_query, instance, AnswerOptions(shards=3)
        )
        with WorkerPool(workers=2, engine_config=engine.config()) as pool:
            engine.set_worker_pool(pool)
            try:
                assert (
                    engine.answer(query, instance, options=AnswerOptions(shards=3))
                    == baseline
                )
                assert (
                    engine.answer_group_by(group_query, instance, AnswerOptions(shards=3))
                    == group_baseline
                )
                pool_stats = engine.shard_stats()["worker_pool"]
                shard_jobs = sum(
                    w.get("shard_jobs", 0) for w in pool_stats["per_worker"]
                )
                assert shard_jobs >= 1  # summaries really ran on the pool
            finally:
                engine.set_worker_pool(None)

    def test_answer_many_through_attached_pool(self, repro_seed):
        engine = ConsistentAnswerEngine(min_parallel_items=2)
        instance = _workload(derive_seed(repro_seed, "pool-batch"))
        items = [(query, instance) for query in self.QUERIES]
        serial = engine.answer_many(items, AnswerOptions(max_workers=1))
        with WorkerPool(workers=2, engine_config=engine.config()) as pool:
            engine.set_worker_pool(pool)
            try:
                pooled = engine.answer_many(items)
                assert [r.index for r in pooled] == [r.index for r in serial]
                assert [r.answer for r in pooled] == [r.answer for r in serial]
                chunk_jobs = sum(
                    w.get("chunk_jobs", 0)
                    for w in pool.stats()["per_worker"]
                )
                assert chunk_jobs >= 2  # the batch really fanned out
            finally:
                engine.set_worker_pool(None)


class TestWorkerErrorPropagation:
    def test_worker_side_client_errors_keep_their_type(self):
        """A query error raised inside a worker must surface as the original
        exception class — the serving layer's 4xx/5xx classification (and
        thread/process parity) depend on it."""
        from repro.exceptions import NotSelfJoinFreeError
        from repro.query.parser import parse_aggregation_query
        from repro.workloads.scenarios import fig1_stock_schema

        query = parse_aggregation_query(
            fig1_stock_schema(), "SUM(y) <- Stock(p, t, y), Stock(p2, t2, y2)"
        )
        with WorkerPool(workers=1) as pool:
            with pytest.raises(NotSelfJoinFreeError):
                pool.answer(query, fig1_stock_instance())

    def test_serve_returns_400_for_worker_side_query_errors(self):
        from repro.serve import ConsistentAnswerServer, ServeClient, ServeConfig

        async def scenario():
            server = ConsistentAnswerServer(
                ServeConfig(port=0, workers=2, worker_processes=2)
            )
            await server.start()
            try:
                async with ServeClient(*server.address) as client:
                    return await client.request(
                        "POST",
                        "/answer",
                        {
                            "instance": "stock",
                            "query": "SUM(y) <- Stock(p, t, y), Stock(p2, t2, y2)",
                        },
                    )
            finally:
                await server.stop()

        status, body = asyncio.run(scenario())
        assert status == 400, body  # same classification as thread mode
        assert body["error"]["type"] == "NotSelfJoinFreeError"


# -- the serving layer in --workers mode -------------------------------------------------


class TestServeWorkerMode:
    def _serve(self, coroutine):
        return asyncio.run(coroutine)

    def test_pool_mode_answers_match_thread_mode(self):
        from repro.serve import ConsistentAnswerServer, ServeClient, ServeConfig

        async def scenario():
            thread_server = ConsistentAnswerServer(ServeConfig(port=0, workers=2))
            pool_server = ConsistentAnswerServer(
                ServeConfig(port=0, workers=2, worker_processes=2)
            )
            await thread_server.start()
            await pool_server.start()
            try:
                query = "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
                group_query = "(t, SUM(y)) <- Stock(p, t, y)"
                async with ServeClient(*thread_server.address) as threads:
                    async with ServeClient(*pool_server.address) as pooled:
                        answers = (
                            await threads.answer("stock", query),
                            await pooled.answer("stock", query),
                        )
                        groups = (
                            await threads.answer_group_by("stock", group_query),
                            await pooled.answer_group_by("stock", group_query),
                        )
                        batch = await pooled.answer_many(
                            [("stock", query)] * 4
                        )
                        metrics = await pooled.metrics()
                        health = await pooled.healthz()
                return answers, groups, batch, metrics, health
            finally:
                await thread_server.stop()
                await pool_server.stop()

        answers, groups, batch, metrics, health = self._serve(scenario())
        assert answers[0] == answers[1]
        assert groups[0] == groups[1]
        assert len(batch) == 4
        pool_stats = metrics["worker_pool"]
        assert pool_stats["enabled"] and pool_stats["workers"] == 2
        assert pool_stats["jobs_submitted"] >= 1
        assert len(pool_stats["per_worker"]) == 2
        assert health["worker_processes"] == 2

    def test_worker_killed_mid_request_releases_the_gate(self):
        """The PR's serve bugfix contract: a worker crash mid-request must
        produce a retried 200 or a structured 500 — never a hung admission
        slot — and the pool must have respawned the worker."""
        from repro.serve import ConsistentAnswerServer, ServeClient, ServeConfig

        async def scenario():
            server = ConsistentAnswerServer(
                ServeConfig(port=0, workers=4, worker_processes=2)
            )
            await server.start()
            try:
                import benchmarks.bench_serve as bench

                server.registry.register("workload", bench.workload_instance(120))
                group_query = "(t, SUM(y)) <- Stock(p, t, y)"

                async def one_request(client):
                    status, body = await client.request(
                        "POST",
                        "/answer_group_by",
                        {"instance": "workload", "query": group_query},
                    )
                    return status, body

                async def killer():
                    await asyncio.sleep(0.05)
                    pids = server._pool.worker_pids()
                    os.kill(pids[0], signal.SIGKILL)

                clients = [ServeClient(*server.address) for _ in range(6)]
                for client in clients:
                    await client.open()
                try:
                    outcomes, _ = await asyncio.gather(
                        asyncio.gather(*(one_request(c) for c in clients)),
                        killer(),
                    )
                finally:
                    for client in clients:
                        await client.close()
                # The admission gate must drain back to zero.
                for _ in range(100):
                    if server.gate.in_use == 0:
                        break
                    await asyncio.sleep(0.05)
                gate_in_use = server.gate.in_use
                restarts = server._pool.stats()["restarts"]
                return outcomes, gate_in_use, restarts
            finally:
                await server.stop()

        outcomes, gate_in_use, restarts = self._serve(scenario())
        assert gate_in_use == 0
        assert restarts >= 1
        for status, body in outcomes:
            assert status in (200, 500), (status, body)
            if status == 500:  # structured, typed error body — not a hang
                assert body["error"]["type"] in ("WorkerCrashError", "WorkerPoolError")
            else:
                assert body["groups"]

    def test_port_busy_exits_with_structured_error(self, capsys):
        from repro.serve.__main__ import main

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            code = main(["--port", str(port), "--no-builtins"])
        finally:
            blocker.close()
        assert code == 1
        err = capsys.readouterr().err
        assert "error: cannot listen on" in err
        assert str(port) in err

    def test_port_busy_in_worker_mode_tears_the_pool_down(self, capsys):
        from repro.serve.__main__ import main

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            code = main(["--port", str(port), "--workers", "2", "--no-builtins"])
        finally:
            blocker.close()
        assert code == 1
        assert "error: cannot listen on" in capsys.readouterr().err
        # No orphaned worker processes: every repro-worker child is gone.
        import multiprocessing

        children = multiprocessing.active_children()
        assert not [c for c in children if c.name.startswith("repro-worker")]
