"""Tests for the CERTAINTY trichotomy and the separation-theorem classifier."""

import pytest

from repro.attacks.classification import (
    certainty_complexity,
    classify_aggregation_query,
)
from repro.datamodel.signature import RelationSignature, Schema
from repro.query.parser import parse_aggregation_query, parse_query


@pytest.fixture
def schema():
    return Schema(
        [
            RelationSignature("R", 2, 1, numeric_positions=(2,)),
            RelationSignature("T", 3, 2, numeric_positions=(3,)),
            RelationSignature("U", 2, 1),
            RelationSignature("V", 2, 1),
            RelationSignature("W", 2, 1),
        ]
    )


class TestCertaintyComplexity:
    def test_acyclic_is_fo(self, schema):
        assert certainty_complexity(parse_query(schema, "U(x, y), T(x, y, r)")) == "FO"

    def test_weak_cycle_is_l_complete(self, schema):
        assert certainty_complexity(parse_query(schema, "U(x, y), V(y, x)")) == "L-complete"

    def test_strong_cycle_is_conp_complete(self, schema):
        # The classic coNP-complete query: two relations joined on a non-key
        # attribute (Fuxman & Miller's hard query).
        query = parse_query(schema, "U(x, y), W(z, y)")
        assert certainty_complexity(query) == "coNP-complete"


class TestGlbClassification:
    def test_sum_acyclic_rewritable(self, schema):
        query = parse_aggregation_query(schema, "SUM(r) <- U(x, y), T(x, y, r)")
        verdict = classify_aggregation_query(query, "glb")
        assert verdict.expressible is True
        assert verdict.rewritable
        assert verdict.attack_graph_acyclic

    def test_count_acyclic_rewritable(self, schema):
        query = parse_aggregation_query(schema, "COUNT(1) <- U(x, y), T(x, y, r)")
        assert classify_aggregation_query(query, "glb").expressible is True

    def test_max_and_min_rewritable(self, schema):
        for aggregate in ("MAX", "MIN"):
            query = parse_aggregation_query(
                schema, f"{aggregate}(r) <- U(x, y), T(x, y, r)"
            )
            assert classify_aggregation_query(query, "glb").expressible is True

    def test_cyclic_not_expressible(self, schema):
        query = parse_aggregation_query(schema, "SUM(r) <- U(x, y), V(y, x), T(x, y, r)")
        verdict = classify_aggregation_query(query, "glb")
        assert verdict.expressible is False
        assert not verdict.rewritable
        assert not verdict.attack_graph_acyclic

    def test_avg_not_expressible(self, schema):
        query = parse_aggregation_query(schema, "AVG(r) <- R(x, r)")
        verdict = classify_aggregation_query(query, "glb")
        assert verdict.expressible is False
        assert "descending chain" in verdict.reason

    def test_product_not_expressible(self, schema):
        query = parse_aggregation_query(schema, "PRODUCT(r) <- R(x, r)")
        assert classify_aggregation_query(query, "glb").expressible is False

    def test_count_distinct_np_hard(self, schema):
        query = parse_aggregation_query(schema, "COUNT_DISTINCT(r) <- R(x, r)")
        verdict = classify_aggregation_query(query, "glb")
        assert verdict.expressible is False
        assert "NP-hard" in verdict.reason

    def test_sum_distinct_open(self, schema):
        query = parse_aggregation_query(schema, "SUM_DISTINCT(r) <- R(x, r)")
        assert classify_aggregation_query(query, "glb").expressible is None


class TestLubClassification:
    def test_min_max_lub_rewritable(self, schema):
        for aggregate in ("MIN", "MAX"):
            query = parse_aggregation_query(
                schema, f"{aggregate}(r) <- U(x, y), T(x, y, r)"
            )
            assert classify_aggregation_query(query, "lub").expressible is True

    def test_sum_lub_not_covered(self, schema):
        query = parse_aggregation_query(schema, "SUM(r) <- U(x, y), T(x, y, r)")
        verdict = classify_aggregation_query(query, "lub")
        assert verdict.expressible is not True
        assert not verdict.rewritable

    def test_cyclic_lub_not_expressible(self, schema):
        query = parse_aggregation_query(schema, "MAX(r) <- U(x, y), V(y, x), T(x, y, r)")
        assert classify_aggregation_query(query, "lub").expressible is False


class TestValidation:
    def test_direction_validated(self, schema):
        query = parse_aggregation_query(schema, "SUM(r) <- R(x, r)")
        with pytest.raises(ValueError):
            classify_aggregation_query(query, "sideways")

    def test_verdict_records_certainty_class(self, schema):
        query = parse_aggregation_query(schema, "SUM(r) <- U(x, y), V(y, x), T(x, y, r)")
        verdict = classify_aggregation_query(query, "glb")
        assert verdict.certainty_class in ("L-complete", "coNP-complete")
