"""Tests for database instances, blocks and repairs."""

import pytest

from repro.datamodel.facts import Fact
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import SchemaError


@pytest.fixture
def simple_schema():
    return Schema(
        [
            RelationSignature("R", 2, 1),
            RelationSignature("S", 2, 2),
        ]
    )


class TestConstruction:
    def test_from_rows(self, simple_schema):
        instance = DatabaseInstance.from_rows(
            simple_schema, {"R": [("a", 1), ("a", 2)], "S": [("x", "y")]}
        )
        assert len(instance) == 3

    def test_add_row_and_contains(self, simple_schema):
        instance = DatabaseInstance(simple_schema)
        instance.add_row("R", "a", 1)
        assert Fact("R", ("a", 1)) in instance

    def test_duplicate_facts_collapse(self, simple_schema):
        instance = DatabaseInstance(simple_schema)
        instance.add_row("R", "a", 1)
        instance.add_row("R", "a", 1)
        assert len(instance) == 1

    def test_arity_checked(self, simple_schema):
        instance = DatabaseInstance(simple_schema)
        with pytest.raises(SchemaError):
            instance.add_row("R", "a")

    def test_unknown_relation_rejected(self, simple_schema):
        instance = DatabaseInstance(simple_schema)
        with pytest.raises(SchemaError):
            instance.add_row("T", "a")


class TestBlocksAndConsistency:
    def test_blocks_group_key_equal_facts(self, simple_schema):
        instance = DatabaseInstance.from_rows(
            simple_schema, {"R": [("a", 1), ("a", 2), ("b", 1)]}
        )
        blocks = instance.blocks("R")
        sizes = sorted(len(b) for b in blocks)
        assert sizes == [1, 2]

    def test_block_of(self, simple_schema):
        instance = DatabaseInstance.from_rows(simple_schema, {"R": [("a", 1), ("a", 2)]})
        block = instance.block_of(Fact("R", ("a", 1)))
        assert block == frozenset({Fact("R", ("a", 1)), Fact("R", ("a", 2))})

    def test_full_key_relation_never_inconsistent(self, simple_schema):
        instance = DatabaseInstance.from_rows(
            simple_schema, {"S": [("x", "y"), ("x", "z")]}
        )
        assert instance.is_consistent("S")

    def test_inconsistent_blocks(self, simple_schema):
        instance = DatabaseInstance.from_rows(
            simple_schema, {"R": [("a", 1), ("a", 2), ("b", 1)]}
        )
        assert len(instance.inconsistent_blocks()) == 1
        assert not instance.is_consistent()

    def test_consistent_instance(self, simple_schema):
        instance = DatabaseInstance.from_rows(simple_schema, {"R": [("a", 1), ("b", 2)]})
        assert instance.is_consistent()
        assert instance.inconsistency_ratio() == 0.0

    def test_inconsistency_ratio(self, simple_schema):
        instance = DatabaseInstance.from_rows(
            simple_schema, {"R": [("a", 1), ("a", 2), ("b", 1)]}
        )
        assert instance.inconsistency_ratio() == pytest.approx(0.5)

    def test_inconsistency_ratio_empty_instance(self, simple_schema):
        assert DatabaseInstance(simple_schema).inconsistency_ratio() == 0.0


class TestRepairs:
    def test_repair_count_is_product_of_block_sizes(self, stock_instance):
        # Fig. 1: three inconsistent blocks of size 2 ⇒ 8 repairs.
        assert stock_instance.repair_count() == 8

    def test_enumeration_matches_count(self, stock_instance):
        assert len(list(stock_instance.repairs())) == 8

    def test_every_repair_is_consistent(self, stock_instance):
        assert all(repair.is_consistent() for repair in stock_instance.repairs())

    def test_every_repair_is_maximal(self, stock_instance):
        # Adding any removed fact to a repair would break consistency.
        for repair in stock_instance.repairs():
            removed = stock_instance.facts - repair.facts
            for fact in removed:
                signature = stock_instance.schema.relation(fact.relation)
                assert any(
                    fact.is_key_equal(kept, signature.key_size) for kept in repair.facts
                )

    def test_repairs_pick_one_fact_per_block(self, stock_instance):
        for repair in stock_instance.repairs():
            for block in stock_instance.blocks():
                assert len(block & repair.facts) == 1

    def test_consistent_instance_has_single_repair(self, simple_schema):
        instance = DatabaseInstance.from_rows(simple_schema, {"R": [("a", 1), ("b", 2)]})
        repairs = list(instance.repairs())
        assert len(repairs) == 1
        assert repairs[0] == instance

    def test_empty_instance_has_one_empty_repair(self, simple_schema):
        repairs = list(DatabaseInstance(simple_schema).repairs())
        assert len(repairs) == 1
        assert len(repairs[0]) == 0

    def test_arbitrary_repair_is_a_repair(self, stock_instance):
        repair = stock_instance.arbitrary_repair()
        assert repair.is_consistent()
        assert repair.facts <= stock_instance.facts
        assert len(repair.blocks()) == len(stock_instance.blocks())

    def test_falsifying_repair_exists(self, simple_schema):
        instance = DatabaseInstance.from_rows(simple_schema, {"R": [("a", 1), ("a", 2)]})
        assert instance.falsifying_repair_exists(
            lambda repair: Fact("R", ("a", 1)) in repair
        )
        assert not instance.falsifying_repair_exists(lambda repair: len(repair) == 1)


class TestTransformations:
    def test_restricted_to(self, stock_instance):
        restricted = stock_instance.restricted_to(["Dealers"])
        assert restricted.relation_names() == ("Dealers",)
        assert len(restricted) == 3

    def test_union(self, simple_schema):
        first = DatabaseInstance.from_rows(simple_schema, {"R": [("a", 1)]})
        second = DatabaseInstance.from_rows(simple_schema, {"R": [("b", 2)]})
        assert len(first.union(second)) == 2

    def test_without(self, simple_schema):
        instance = DatabaseInstance.from_rows(simple_schema, {"R": [("a", 1), ("b", 2)]})
        assert len(instance.without([Fact("R", ("a", 1))])) == 1

    def test_equality_and_hash(self, simple_schema):
        first = DatabaseInstance.from_rows(simple_schema, {"R": [("a", 1)]})
        second = DatabaseInstance.from_rows(simple_schema, {"R": [("a", 1)]})
        assert first == second
        assert hash(first) == hash(second)
