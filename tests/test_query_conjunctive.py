"""Tests for conjunctive queries."""

import pytest

from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import NotSelfJoinFreeError, QueryError
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.query.terms import Variable


@pytest.fixture
def schema():
    return Schema(
        [
            RelationSignature("R", 2, 1),
            RelationSignature("S", 3, 1, numeric_positions=(3,)),
            RelationSignature("T", 2, 1),
        ]
    )


class TestStructure:
    def test_variables(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)")
        assert {v.name for v in query.variables} == {"x", "y", "z", "r"}

    def test_relation_names(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)")
        assert query.relation_names == ("R", "S")

    def test_needs_at_least_one_atom(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([])

    def test_atom_for_relation(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)")
        assert query.atom_for_relation("R").relation == "R"

    def test_free_variables_must_occur_in_body(self, schema):
        atoms = parse_query(schema, "R(x, y)").atoms
        with pytest.raises(QueryError):
            ConjunctiveQuery(atoms, [Variable("z")])

    def test_bound_variables(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)", free="x")
        assert {v.name for v in query.bound_variables} == {"y", "z", "r"}
        assert not query.is_boolean()


class TestSelfJoinFreeness:
    def test_self_join_free(self, schema):
        assert parse_query(schema, "R(x, y), S(y, z, r)").is_self_join_free()

    def test_self_join_detected(self, schema):
        r_sig = schema.relation("R")
        query = ConjunctiveQuery(
            [
                Atom(r_sig, (Variable("x"), Variable("y"))),
                Atom(r_sig, (Variable("y"), Variable("z"))),
            ]
        )
        assert not query.is_self_join_free()
        with pytest.raises(NotSelfJoinFreeError):
            query.require_self_join_free()


class TestKeyDependencies:
    def test_key_fds(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)")
        deps = dict(
            (frozenset(v.name for v in lhs), frozenset(v.name for v in rhs))
            for lhs, rhs in query.key_dependencies()
        )
        assert deps[frozenset({"x"})] == frozenset({"x", "y"})
        assert deps[frozenset({"y"})] == frozenset({"y", "z", "r"})


class TestTransformations:
    def test_without_atom(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)")
        smaller = query.without_atom(query.atom_for_relation("S"))
        assert smaller.relation_names == ("R",)

    def test_without_unknown_atom_rejected(self, schema):
        query = parse_query(schema, "R(x, y)")
        other = parse_query(schema, "T(a, b)")
        with pytest.raises(QueryError):
            query.without_atom(other.atoms[0])

    def test_cannot_remove_last_atom(self, schema):
        query = parse_query(schema, "R(x, y)")
        with pytest.raises(QueryError):
            query.without_atom(query.atoms[0])

    def test_restricted_to_atoms(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r), T(z, w)")
        restricted = query.restricted_to_atoms(
            [query.atom_for_relation("S"), query.atom_for_relation("T")]
        )
        assert restricted.relation_names == ("S", "T")

    def test_substitute_removes_instantiated_free_variables(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)", free="x")
        grounded = query.substitute({Variable("x"): "a"})
        assert grounded.free_variables == ()
        assert "a" in [t for t in grounded.atom_for_relation("R").terms]

    def test_apply_valuation(self, schema):
        query = parse_query(schema, "R(x, y)")
        grounded = query.apply_valuation({"x": "a"})
        assert grounded.atom_for_relation("R").terms[0] == "a"

    def test_reordered(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)")
        reordered = query.reordered(tuple(reversed(query.atoms)))
        assert reordered.relation_names == ("S", "R")

    def test_reordered_rejects_non_permutation(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)")
        with pytest.raises(QueryError):
            query.reordered(query.atoms[:1])

    def test_schema_extraction(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)")
        assert set(query.schema().relation_names()) == {"R", "S"}

    def test_equality_is_order_insensitive_on_atoms(self, schema):
        first = parse_query(schema, "R(x, y), S(y, z, r)")
        second = parse_query(schema, "S(y, z, r), R(x, y)")
        assert first == second
        assert hash(first) == hash(second)

    def test_str_rendering(self, schema):
        query = parse_query(schema, "R(x, y), S(y, z, r)", free="x")
        assert str(query) == "(x) <- R(x, y), S(y, z, r)"
