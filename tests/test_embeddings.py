"""Tests for embeddings, ∀embeddings, MCSs and superfrugal repairs (Section 4, 6)."""

import pytest

from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.valuation import Valuation
from repro.embeddings.embeddings import embeddings_of, embeddings_satisfy_key_constraints
from repro.embeddings.forall import (
    ForallEmbeddingComputer,
    forall_embedding_formula,
    forall_embeddings,
)
from repro.embeddings.mcs import maximal_consistent_subsets
from repro.fol.evaluation import FormulaEvaluator
from repro.query.parser import parse_query
from repro.repairs.enumerate import count_repairs, sample_repairs
from repro.repairs.frugal import find_superfrugal_repairs, is_superfrugal


class TestEmbeddings:
    def test_embeddings_on_running_example(self, running_schema, running_instance):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        embeddings = embeddings_of(body, running_instance)
        # Every R-fact joins with the S-facts of its y-block carrying tag 'd'.
        assert len(embeddings) == 9

    def test_embeddings_respect_binding(self, running_schema, running_instance):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        embeddings = embeddings_of(body, running_instance, {"x": "a2"})
        assert {e["x"] for e in embeddings} == {"a2"}
        assert len(embeddings) == 3

    def test_no_embeddings(self, running_schema, running_instance):
        body = parse_query(running_schema, "R(x,y), S(y,z,'missing',r)")
        assert embeddings_of(body, running_instance) == []

    def test_key_constraint_satisfaction(self, running_schema):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        consistent = [
            Valuation({"x": "a1", "y": "b1", "z": "c1", "r": 1}),
            Valuation({"x": "a2", "y": "b2", "z": "c2", "r": 2}),
        ]
        inconsistent = consistent + [
            Valuation({"x": "a1", "y": "b9", "z": "c1", "r": 1})
        ]
        assert embeddings_satisfy_key_constraints(body, consistent)
        assert not embeddings_satisfy_key_constraints(body, inconsistent)


class TestForallEmbeddings:
    def test_running_example_has_eight(self, running_schema, running_instance):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        forall = forall_embeddings(body, running_instance)
        assert len(forall) == 8

    def test_running_example_excludes_a3_embedding(
        self, running_schema, running_instance
    ):
        # The embedding mapping (x,y,z,r) to (a3,b4,c5,7) is not a ∀embedding
        # because of the S-fact with tag 'e' (Section 6.1).
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        forall = forall_embeddings(body, running_instance)
        assert all(valuation["x"] != "a3" for valuation in forall)

    def test_example_4_1_forall_embedding(self, stock_schema, stock_instance):
        body = parse_query(stock_schema, "Dealers('James', t), Stock(p, t, 35)")
        forall = forall_embeddings(body, stock_instance)
        as_dicts = [dict(v) for v in forall]
        assert {"t": "Boston", "p": "Tesla Y"} in as_dicts
        assert {"t": "Boston", "p": "Tesla X"} not in as_dicts

    def test_not_certain_query_has_no_forall_embeddings(
        self, stock_schema, stock_instance
    ):
        body = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, 95)")
        assert forall_embeddings(body, stock_instance) == []

    def test_forall_embeddings_are_embeddings(self, running_schema, running_instance):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        all_embeddings = set(embeddings_of(body, running_instance))
        assert set(forall_embeddings(body, running_instance)) <= all_embeddings

    def test_lemma_4_2_order_independence(self, running_schema, running_instance):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        computer = ForallEmbeddingComputer(body, running_instance)
        assert computer.order  # the default order is a valid topological sort
        # The reversed order is only legal if it is also a topological sort;
        # here R attacks S, so only the default order is valid — instead we
        # check independence on a query with no attacks at all.
        free_body = parse_query(running_schema, "R(x,y), S(y2,z,'d',r)")
        first = set(forall_embeddings(free_body, running_instance, free_body.atoms))
        second = set(
            forall_embeddings(
                free_body, running_instance, tuple(reversed(free_body.atoms))
            )
        )
        assert first == second

    def test_level_embeddings_monotone_in_level(self, running_schema, running_instance):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        computer = ForallEmbeddingComputer(body, running_instance)
        level0 = computer.level_embeddings(0)
        level1 = computer.level_embeddings(1)
        level2 = computer.level_embeddings(2)
        assert len(level0) == 1 and dict(level0[0]) == {}
        assert len(level1) >= 1
        assert len(level2) == 8

    def test_invalid_order_rejected(self, running_schema, running_instance):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        with pytest.raises(ValueError):
            ForallEmbeddingComputer(body, running_instance, body.atoms[:1])

    def test_lemma_4_3_formula_agrees_with_direct_computation(
        self, running_schema, running_instance
    ):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        formula = forall_embedding_formula(body)
        evaluator = FormulaEvaluator(running_instance)
        direct = set(forall_embeddings(body, running_instance))
        for embedding in embeddings_of(body, running_instance):
            holds = evaluator.evaluate(formula, dict(embedding))
            assert holds == (embedding in direct)


class TestMcs:
    def test_mcs_of_running_example(self, running_schema, running_instance):
        # Corollary 6.4: the minimum over MCSs of the SUM of r-values is 9.
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        forall = forall_embeddings(body, running_instance)
        subsets = maximal_consistent_subsets(body, forall)
        assert subsets
        sums = [sum(valuation["r"] for valuation in subset) for subset in subsets]
        assert min(sums) == 9

    def test_every_mcs_is_consistent_and_maximal(
        self, running_schema, running_instance
    ):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        forall = forall_embeddings(body, running_instance)
        subsets = maximal_consistent_subsets(body, forall)
        for subset in subsets:
            assert embeddings_satisfy_key_constraints(body, subset)
            others = [v for v in forall if v not in subset]
            for extra in others:
                assert not embeddings_satisfy_key_constraints(body, subset + [extra])

    def test_mcs_of_empty_set(self, running_schema):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        assert maximal_consistent_subsets(body, []) == [[]]

    def test_mcs_of_already_consistent_set(self, running_schema, running_instance):
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        single = [Valuation({"x": "a1", "y": "b1", "z": "c1", "r": 1})]
        assert maximal_consistent_subsets(body, single) == [single]


class TestSuperfrugalRepairs:
    def test_example_4_4_dagger_repair_not_superfrugal(
        self, stock_schema, stock_instance
    ):
        body = parse_query(stock_schema, "Dealers('James', t), Stock(p, t, 35)")
        dagger = DatabaseInstance.from_rows(
            stock_schema,
            {
                "Dealers": [("Smith", "Boston"), ("James", "Boston")],
                "Stock": [
                    ("Tesla X", "Boston", 35),
                    ("Tesla Y", "Boston", 35),
                    ("Tesla Y", "New York", 95),
                ],
            },
        )
        assert not is_superfrugal(dagger, body, stock_instance)

    def test_superfrugal_repairs_exist_for_certain_query(
        self, stock_schema, stock_instance
    ):
        body = parse_query(stock_schema, "Dealers('James', t), Stock(p, t, 35)")
        superfrugal = find_superfrugal_repairs(body, stock_instance)
        assert superfrugal
        forall = set(forall_embeddings(body, stock_instance))
        for repair in superfrugal:
            assert set(embeddings_of(body, repair)) <= forall

    def test_lemma_6_3_mcs_correspondence(self, running_schema, running_instance):
        # The embedding sets of superfrugal repairs are exactly the MCSs of the
        # set of all ∀embeddings.
        body = parse_query(running_schema, "R(x,y), S(y,z,'d',r)")
        forall = forall_embeddings(body, running_instance)
        mcs_sets = {
            frozenset(subset)
            for subset in maximal_consistent_subsets(body, forall)
        }
        repair_sets = {
            frozenset(embeddings_of(body, repair))
            for repair in find_superfrugal_repairs(body, running_instance)
        }
        assert repair_sets == mcs_sets


class TestRepairHelpers:
    def test_count_repairs(self, stock_instance):
        assert count_repairs(stock_instance) == 8

    def test_sampled_repairs_are_repairs(self, stock_instance):
        for repair in sample_repairs(stock_instance, 5, seed=3):
            assert repair.is_consistent()
            assert len(repair.blocks()) == len(stock_instance.blocks())

    def test_sampling_is_deterministic_for_seed(self, stock_instance):
        first = sample_repairs(stock_instance, 3, seed=1)
        second = sample_repairs(stock_instance, 3, seed=1)
        assert first == second
