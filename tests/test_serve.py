"""Tests for the repro.serve subsystem: protocol, registry, app, client."""

import asyncio
from fractions import Fraction

import pytest

from repro.core.evaluator import BOTTOM
from repro.core.range_answers import RangeAnswer
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.engine import ConsistentAnswerEngine, schema_fingerprint
from repro.query.parser import parse_aggregation_query
from repro.serve import (
    AdmissionGate,
    ConsistentAnswerServer,
    DuplicateInstanceError,
    InstanceRegistry,
    LatencyHistogram,
    ProtocolError,
    ServeClient,
    ServeClientError,
    ServeConfig,
    UnknownInstanceError,
    builtin_registry,
    decode_constant,
    decode_range_answer,
    encode_constant,
    encode_range_answer,
    instance_from_payload,
    instance_to_payload,
    schema_from_payload,
    schema_to_payload,
)
from repro.workloads.scenarios import (
    fig1_stock_instance,
    fig1_stock_schema,
    fig3_running_example_instance,
)

STOCK_SUM = "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
STOCK_GROUP_BY = "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
RUNNING_SUM = "SUM(r) <- R(x,y), S(y,z,'d',r)"
RUNNING_AVG = "AVG(r) <- R(x,y), S(y,z,'d',r)"  # non-rewritable: exact B&B


def serve_scenario(coro_fn, **config_kwargs):
    """Boot a server on an ephemeral port, run ``coro_fn(server, client)``."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("workers", 2)

    async def main():
        server = ConsistentAnswerServer(ServeConfig(**config_kwargs))
        await server.start()
        try:
            host, port = server.address
            async with ServeClient(host, port) as client:
                return await coro_fn(server, client)
        finally:
            await server.stop()

    return asyncio.run(main())


# -- protocol ----------------------------------------------------------------------------


class TestProtocol:
    def test_constant_round_trip(self):
        for value in ("Boston", 42, -7, 3.5, Fraction(70, 3), Fraction(8, 2)):
            assert decode_constant(encode_constant(value)) == value

    def test_fraction_encoding_is_exact(self):
        encoded = encode_constant(Fraction(1, 3))
        assert encoded == {"$fraction": "1/3"}
        assert decode_constant(encoded) == Fraction(1, 3)

    def test_whole_fractions_collapse_to_ints(self):
        assert encode_constant(Fraction(6, 2)) == 3

    def test_bad_tagged_constant_rejected(self):
        with pytest.raises(ProtocolError):
            decode_constant({"$mystery": 1})
        with pytest.raises(ProtocolError):
            decode_constant({"$fraction": "1/0"})

    def test_range_answer_round_trip(self):
        answer = RangeAnswer(Fraction(70), Fraction(289, 3))
        assert decode_range_answer(encode_range_answer(answer)) == answer

    def test_bottom_encodes_as_null(self):
        payload = encode_range_answer(RangeAnswer(BOTTOM, BOTTOM))
        assert payload == {"glb": None, "lub": None, "bottom": True}
        assert decode_range_answer(payload).is_bottom

    def test_schema_round_trip_preserves_fingerprint(self):
        schema = fig1_stock_schema()
        rebuilt = schema_from_payload(schema_to_payload(schema))
        assert schema_fingerprint(rebuilt) == schema_fingerprint(schema)

    def test_instance_round_trip(self):
        original = fig1_stock_instance()
        name, rebuilt = instance_from_payload(instance_to_payload("db", original))
        assert name == "db"
        assert rebuilt == original

    def test_malformed_instance_payloads(self):
        with pytest.raises(ProtocolError):
            instance_from_payload({"schema": {"relations": []}})
        with pytest.raises(ProtocolError):
            instance_from_payload({"name": "x", "schema": {"relations": []}})
        with pytest.raises(ProtocolError):
            instance_from_payload({"name": "x", "schema": {"relations": [{}]}})


# -- registry ----------------------------------------------------------------------------


class TestInstanceRegistry:
    def test_register_and_get(self):
        registry = InstanceRegistry()
        entry = registry.register("stock", fig1_stock_instance())
        assert registry.get("stock").instance == fig1_stock_instance()
        assert entry.fingerprint == schema_fingerprint(fig1_stock_schema())
        assert "stock" in registry and len(registry) == 1

    def test_duplicate_requires_replace(self):
        registry = InstanceRegistry()
        registry.register("db", fig1_stock_instance())
        with pytest.raises(DuplicateInstanceError):
            registry.register("db", fig1_stock_instance())
        registry.register("db", fig3_running_example_instance(), replace=True)
        assert registry.get("db").instance == fig3_running_example_instance()

    def test_unknown_instance(self):
        with pytest.raises(UnknownInstanceError):
            InstanceRegistry().get("missing")

    def test_payload_registration_round_trip(self):
        registry = InstanceRegistry()
        payload = instance_to_payload("wired", fig1_stock_instance())
        entry = registry.register_payload(payload)
        assert entry.instance == fig1_stock_instance()
        described = entry.describe()
        assert described["facts"] == len(fig1_stock_instance())
        assert described["inconsistent_blocks"] == 3

    def test_builtin_registry_serves_paper_examples(self):
        registry = builtin_registry()
        assert registry.names() == ["running_example", "stock"]


# -- metrics primitives ------------------------------------------------------------------


class TestLatencyHistogram:
    def test_percentiles_from_buckets(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(0.002)
        histogram.observe(4.0)
        # p50's rank (50) falls 50/99ths of the way through the 1–2.5ms
        # bucket: the estimate interpolates within it rather than snapping
        # to the 2.5ms upper bound.
        expected_p50 = 0.001 + (0.0025 - 0.001) * (50 / 99)
        assert histogram.percentile(0.50) == pytest.approx(expected_p50)
        assert histogram.percentile(0.99) == pytest.approx(0.0025)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p50_ms"] == pytest.approx(expected_p50 * 1000.0, abs=1e-3)

    def test_empty_histogram(self):
        assert LatencyHistogram().percentile(0.5) is None


class TestAdmissionGate:
    def test_acquire_until_full(self):
        gate = AdmissionGate(2)
        assert gate.try_acquire() and gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdmissionGate(0)


# -- end-to-end: answering ---------------------------------------------------------------


class TestServerAnswers:
    def test_closed_query(self):
        async def scenario(server, client):
            return await client.answer("stock", STOCK_SUM)

        answer = serve_scenario(scenario)
        assert answer == RangeAnswer(Fraction(70), Fraction(96))

    def test_group_by_matches_engine(self):
        async def scenario(server, client):
            return await client.answer_group_by("stock", STOCK_GROUP_BY)

        groups = serve_scenario(scenario)
        engine = ConsistentAnswerEngine()
        query = parse_aggregation_query(fig1_stock_schema(), STOCK_GROUP_BY)
        assert groups == engine.answer_group_by(query, fig1_stock_instance())

    def test_free_variables_bound_per_request(self):
        async def scenario(server, client):
            return await client.answer(
                "stock", STOCK_GROUP_BY, binding={"x": "James"}
            )

        answer = serve_scenario(scenario)
        assert answer == RangeAnswer(Fraction(70), Fraction(75))

    def test_answer_many_mixed_batch_in_order(self):
        async def scenario(server, client):
            return await client.answer_many(
                [
                    ("stock", STOCK_SUM),
                    ("stock", STOCK_GROUP_BY),
                    ("running_example", RUNNING_SUM),
                    ("stock", STOCK_SUM),
                ]
            )

        results = serve_scenario(scenario)
        assert [r["index"] for r in results] == [0, 1, 2, 3]
        assert decode_range_answer(results[0]["answer"]) == RangeAnswer(70, 96)
        assert "groups" in results[1] and len(results[1]["groups"]) == 2
        assert decode_range_answer(results[2]["answer"]) == RangeAnswer(9, 19)
        # The serial batch path shares one engine: the repeat is a plan hit.
        assert results[3]["plan_cached"] is True

    def test_non_rewritable_query_served_by_fallback(self):
        async def scenario(server, client):
            return await client.answer("running_example", RUNNING_AVG)

        answer = serve_scenario(scenario)
        assert not answer.is_bottom
        assert answer.glb <= answer.lub


# -- end-to-end: errors, admission, timeouts ---------------------------------------------


class TestServerErrors:
    def test_malformed_query_is_structured_400(self):
        async def scenario(server, client):
            return await client.request(
                "POST", "/answer", {"instance": "stock", "query": "SUM(y <- oops"}
            )

        status, body = serve_scenario(scenario)
        assert status == 400
        assert body["error"]["type"] == "ParseError"
        assert body["error"]["message"]

    def test_unknown_instance_is_404(self):
        async def scenario(server, client):
            return await client.request(
                "POST", "/answer", {"instance": "nope", "query": STOCK_SUM}
            )

        status, body = serve_scenario(scenario)
        assert status == 404
        assert body["error"]["type"] == "UnknownInstanceError"

    def test_unbound_free_variables_rejected(self):
        async def scenario(server, client):
            return await client.request(
                "POST", "/answer", {"instance": "stock", "query": STOCK_GROUP_BY}
            )

        status, body = serve_scenario(scenario)
        assert status == 400
        assert "free variables" in body["error"]["message"]

    def test_group_by_endpoint_rejects_closed_queries(self):
        async def scenario(server, client):
            return await client.request(
                "POST", "/answer_group_by", {"instance": "stock", "query": STOCK_SUM}
            )

        status, body = serve_scenario(scenario)
        assert status == 400

    def test_bad_json_body(self):
        async def scenario(server, client):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            body = b"{not json"
            head = (
                f"POST /answer HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode()
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            rest = await reader.read()
            writer.close()
            await writer.wait_closed()
            return status_line, rest

        status_line, rest = serve_scenario(scenario)
        assert b" 400 " in status_line
        assert b"ProtocolError" in rest

    def test_unknown_route_and_wrong_method(self):
        async def scenario(server, client):
            missing = await client.request("GET", "/nope")
            wrong = await client.request("POST", "/healthz", {})
            return missing, wrong

        (missing_status, missing_body), (wrong_status, wrong_body) = serve_scenario(
            scenario
        )
        assert missing_status == 404
        assert missing_body["error"]["type"] == "NotFound"
        assert wrong_status == 405
        assert wrong_body["error"]["type"] == "MethodNotAllowed"

    def test_admission_control_rejects_when_full(self):
        async def scenario(server, client):
            filled = 0
            while server.gate.try_acquire():
                filled += 1
            assert filled == server.gate.capacity
            try:
                status, body = await client.request(
                    "POST", "/answer", {"instance": "stock", "query": STOCK_SUM}
                )
            finally:
                for _ in range(filled):
                    server.gate.release()
            recovered, _ = await client.request(
                "POST", "/answer", {"instance": "stock", "query": STOCK_SUM}
            )
            metrics = await client.metrics()
            return status, body, recovered, metrics

        status, body, recovered, metrics = serve_scenario(scenario, max_pending=1)
        assert status == 503
        assert body["error"]["type"] == "AdmissionError"
        assert recovered == 200
        assert metrics["rejected_total"] == 1

    def test_request_timeout_is_504(self):
        async def scenario(server, client):
            # Make execution reliably slower than the request budget (a
            # sleep releases the GIL, so the event loop's timeout always
            # fires first — pure CPU-bound work could finish in the same
            # loop iteration on a starved loop).
            original = server.engine.answer

            def slow_answer(*args, **kwargs):
                import time as _time

                _time.sleep(0.2)
                return original(*args, **kwargs)

            server.engine.answer = slow_answer
            status, body = await client.request(
                "POST",
                "/answer",
                {
                    "instance": "running_example",
                    "query": RUNNING_AVG,
                    "timeout_s": 0.001,
                },
            )
            metrics = await client.metrics()
            return status, body, metrics

        status, body, metrics = serve_scenario(scenario)
        assert status == 504
        assert body["error"]["type"] == "Timeout"
        assert metrics["timeout_total"] == 1

    def test_timed_out_job_holds_its_gate_slot_until_done(self):
        async def scenario(server, client):
            import time as _time

            original = server.engine.answer

            def slow_answer(*args, **kwargs):
                _time.sleep(0.3)
                return original(*args, **kwargs)

            server.engine.answer = slow_answer
            status, _body = await client.request(
                "POST",
                "/answer",
                {"instance": "stock", "query": STOCK_SUM, "timeout_s": 0.001},
            )
            # The worker thread is still computing: its admission slot must
            # stay occupied (the workers+max_pending bound holds under
            # timeout storms) and be freed once the job really finishes.
            held = server.gate.in_use
            await asyncio.sleep(0.5)
            return status, held, server.gate.in_use

        status, held_during, held_after = serve_scenario(scenario)
        assert status == 504
        assert held_during == 1
        assert held_after == 0


# -- end-to-end: registry over HTTP ------------------------------------------------------


class TestServerRegistry:
    def test_register_then_query(self):
        schema = Schema(
            [
                RelationSignature(
                    "T", 2, 1, numeric_positions=(2,), attribute_names=("k", "v")
                )
            ]
        )
        instance = DatabaseInstance.from_rows(
            schema, {"T": [("a", 1), ("a", 2), ("b", 5)]}
        )

        async def scenario(server, client):
            registered = await client.register_instance("mine", instance)
            answer = await client.answer("mine", "SUM(v) <- T(k, v)")
            listed = await client.instances()
            return registered, answer, listed

        registered, answer, listed = serve_scenario(scenario)
        assert registered["facts"] == 3
        assert registered["inconsistent_blocks"] == 1
        assert answer == RangeAnswer(6, 7)
        assert {entry["name"] for entry in listed} == {
            "mine",
            "running_example",
            "stock",
        }

    def test_duplicate_registration_conflicts_unless_replace(self):
        async def scenario(server, client):
            instance = fig1_stock_instance()
            await client.register_instance("db", instance)
            with pytest.raises(ServeClientError) as excinfo:
                await client.register_instance("db", instance)
            replaced = await client.register_instance("db", instance, replace=True)
            return excinfo.value, replaced

        error, replaced = serve_scenario(scenario)
        assert error.status == 409
        assert replaced["name"] == "db"

    def test_builtins_can_be_disabled(self):
        async def scenario(server, client):
            return await client.instances()

        assert serve_scenario(scenario, register_builtins=False) == []


# -- end-to-end: concurrency and plan reuse ----------------------------------------------


class TestServerConcurrency:
    def test_concurrent_requests_share_one_cached_plan(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)  # compile once
            before = (await client.metrics())["plan_cache"]

            host, port = server.address

            async def one_request():
                async with ServeClient(host, port) as c:
                    return await c.answer("stock", STOCK_SUM)

            answers = await asyncio.gather(*(one_request() for _ in range(10)))
            after = (await client.metrics())["plan_cache"]
            return answers, before, after

        answers, before, after = serve_scenario(scenario, workers=4)
        assert all(a == RangeAnswer(70, 96) for a in answers)
        # Every concurrent request was served from the shared plan cache.
        assert after["misses"] == before["misses"]
        assert after["hits"] >= before["hits"] + 10

    def test_metrics_shape(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)
            await client.healthz()
            return await client.metrics()

        metrics = serve_scenario(scenario)
        assert metrics["requests_total"]["POST /answer"]["200"] == 1
        latency = metrics["latency"]["POST /answer"]
        assert latency["count"] == 1 and latency["p95_ms"] is not None
        assert metrics["plan_cache"]["maxsize"] == 256
        assert set(metrics["admission"]) == {
            "capacity",
            "in_use",
            "workers",
            "max_pending",
            "queued_cost_ms",
            "max_queue_cost_ms",
        }
        assert metrics["instances"] == ["running_example", "stock"]
        assert metrics["in_flight"] >= 0

    def test_healthz(self):
        async def scenario(server, client):
            return await client.healthz()

        health = serve_scenario(scenario)
        assert health["status"] == "ok"
        assert health["instances"] == 2
        assert health["backend"] == "operational"
