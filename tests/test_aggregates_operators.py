"""Tests for the aggregate operators of Section 5.1."""

from fractions import Fraction

import pytest

from repro.aggregates.operators import (
    AVG,
    COUNT,
    COUNT_DISTINCT,
    MAX,
    MIN,
    PRODUCT,
    SUM,
    SUM_DISTINCT,
    AggregateOperator,
    get_operator,
    register_operator,
    registered_operators,
)
from repro.exceptions import UnsupportedAggregateError


class TestValues:
    def test_sum(self):
        assert SUM([1, 2, 3]) == Fraction(6)

    def test_sum_empty_convention(self):
        assert SUM([]) == Fraction(0)

    def test_count_ignores_values(self):
        assert COUNT(["a", "b", "a"]) == Fraction(3)

    def test_min_max(self):
        assert MIN([3, 1, 2]) == Fraction(1)
        assert MAX([3, 1, 2]) == Fraction(3)

    def test_min_empty_has_no_convention(self):
        assert MIN([]) is None
        assert MAX([]) is None

    def test_avg(self):
        assert AVG([1, 2]) == Fraction(3, 2)

    def test_product(self):
        assert PRODUCT([2, 3, Fraction(1, 2)]) == Fraction(3)

    def test_count_distinct_example_from_paper(self):
        # Example 5.2: increasing 3 to 4 in {{3, 4}} drops the value from 2 to 1.
        assert COUNT_DISTINCT([3, 4]) == 2
        assert COUNT_DISTINCT([4, 4]) == 1

    def test_sum_distinct(self):
        assert SUM_DISTINCT([2, 2, 3]) == Fraction(5)

    def test_multiset_semantics_of_sum(self):
        # Duplicates must be counted twice (the argument is a multiset).
        assert SUM([5, 5]) == Fraction(10)

    def test_values_accept_mixed_numeric_types(self):
        assert SUM([1, 0.5, Fraction(1, 2)]) == Fraction(2)


class TestDeclaredProperties:
    def test_monotone_flags(self):
        assert SUM.monotone and MAX.monotone and COUNT.monotone
        assert not MIN.monotone and not AVG.monotone and not COUNT_DISTINCT.monotone

    def test_associative_flags(self):
        assert SUM.associative and MAX.associative and MIN.associative
        assert not AVG.associative and not COUNT.associative

    def test_example_5_1_count_not_associative(self):
        # F_COUNT({{5,6,7,8}}) = 4 but F_COUNT({{F_COUNT({{5,6,7}}), 8}}) = 2.
        assert COUNT([5, 6, 7, 8]) == 4
        assert COUNT([COUNT([5, 6, 7]), 8]) == 2

    def test_is_monotone_and_associative(self):
        assert SUM.is_monotone_and_associative
        assert MAX.is_monotone_and_associative
        assert not MIN.is_monotone_and_associative
        assert not AVG.is_monotone_and_associative


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_operator("sum") is SUM
        assert get_operator("Max") is MAX

    def test_lookup_aliases(self):
        assert get_operator("COUNT-DISTINCT") is COUNT_DISTINCT
        assert get_operator("SUM-DISTINCT") is SUM_DISTINCT

    def test_unknown_operator(self):
        with pytest.raises(UnsupportedAggregateError):
            get_operator("MEDIAN")

    def test_registered_operators(self):
        names = {op.name for op in registered_operators()}
        assert {"SUM", "COUNT", "MIN", "MAX", "AVG", "PRODUCT"} <= names

    def test_register_custom_operator(self):
        custom = AggregateOperator(
            name="SUM_OF_SQUARES",
            function=lambda values: sum((v * v for v in values), Fraction(0)),
            empty_value=Fraction(0),
            monotone=True,
            associative=False,
        )
        register_operator(custom)
        assert get_operator("sum_of_squares")([2, 3]) == Fraction(13)
