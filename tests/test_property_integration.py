"""Hypothesis-driven integration tests: all solvers agree on random databases.

These property tests generate small random inconsistent databases and check
the library's central invariants end to end:

* the rewriting-based glb equals the exhaustive (all-repairs) glb for
  monotone + associative aggregates (Theorem 6.1 / Corollary 6.4);
* the SQL pipeline on sqlite3 equals the operational evaluator;
* the polynomial CERTAINTY checker equals the brute-force check;
* glb ≤ value on any repair ≤ lub;
* ⊥ occurs exactly when some repair has no embedding of the body.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.branch_and_bound import BranchAndBoundSolver
from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.certainty.checker import brute_force_certain, is_certain
from repro.core.evaluator import BOTTOM, OperationalRangeEvaluator
from repro.core.minmax import MinMaxRangeEvaluator
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.query.parser import parse_aggregation_query, parse_query
from repro.sql.backend import SqliteBackend

SCHEMA = Schema(
    [
        RelationSignature("R", 2, 1, attribute_names=("a", "b")),
        RelationSignature(
            "S", 3, 1, numeric_positions=(3,), attribute_names=("c", "d", "e")
        ),
    ]
)

SUM_QUERY = parse_aggregation_query(SCHEMA, "SUM(r) <- R(x, y), S(y, z, r)")
COUNT_QUERY = parse_aggregation_query(SCHEMA, "COUNT(1) <- R(x, y), S(y, z, r)")
MAX_QUERY = parse_aggregation_query(SCHEMA, "MAX(r) <- R(x, y), S(y, z, r)")
MIN_QUERY = parse_aggregation_query(SCHEMA, "MIN(r) <- R(x, y), S(y, z, r)")
BODY = parse_query(SCHEMA, "R(x, y), S(y, z, r)")

#: Small domains keep repair counts tractable for the exhaustive ground truth.
_names = st.sampled_from(["d0", "d1", "d2"])
_values = st.integers(min_value=0, max_value=4)

_r_facts = st.lists(st.tuples(_names, _names), min_size=0, max_size=5)
_s_facts = st.lists(st.tuples(_names, _names, _values), min_size=0, max_size=5)


def build_instance(r_rows, s_rows) -> DatabaseInstance:
    return DatabaseInstance.from_rows(SCHEMA, {"R": r_rows, "S": s_rows})


class TestSolverAgreement:
    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=40, deadline=None)
    def test_sum_glb_matches_exhaustive(self, r_rows, s_rows):
        instance = build_instance(r_rows, s_rows)
        expected = ExhaustiveRangeSolver(SUM_QUERY).glb(instance)
        assert OperationalRangeEvaluator(SUM_QUERY).glb(instance) == expected

    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=25, deadline=None)
    def test_sql_matches_operational(self, r_rows, s_rows):
        instance = build_instance(r_rows, s_rows)
        operational = OperationalRangeEvaluator(SUM_QUERY).glb(instance)
        assert SqliteBackend().glb(SUM_QUERY, instance) == operational

    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=30, deadline=None)
    def test_count_glb_matches_exhaustive(self, r_rows, s_rows):
        instance = build_instance(r_rows, s_rows)
        expected = ExhaustiveRangeSolver(COUNT_QUERY).glb(instance)
        assert OperationalRangeEvaluator(COUNT_QUERY).glb(instance) == expected

    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=30, deadline=None)
    def test_minmax_ranges_match_exhaustive(self, r_rows, s_rows):
        instance = build_instance(r_rows, s_rows)
        for query in (MAX_QUERY, MIN_QUERY):
            expected = ExhaustiveRangeSolver(query).range(instance)
            evaluator = MinMaxRangeEvaluator(query)
            assert (evaluator.glb(instance), evaluator.lub(instance)) == expected

    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=30, deadline=None)
    def test_branch_and_bound_matches_exhaustive(self, r_rows, s_rows):
        instance = build_instance(r_rows, s_rows)
        expected = ExhaustiveRangeSolver(SUM_QUERY).range(instance)
        assert BranchAndBoundSolver(SUM_QUERY).range(instance) == expected


class TestCertaintyInvariants:
    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=40, deadline=None)
    def test_checker_matches_brute_force(self, r_rows, s_rows):
        instance = build_instance(r_rows, s_rows)
        assert is_certain(BODY, instance) == brute_force_certain(BODY, instance)

    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=40, deadline=None)
    def test_bottom_iff_not_certain(self, r_rows, s_rows):
        instance = build_instance(r_rows, s_rows)
        glb = OperationalRangeEvaluator(SUM_QUERY).glb(instance)
        assert (glb is BOTTOM) == (not is_certain(BODY, instance))


class TestRangeInvariants:
    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=30, deadline=None)
    def test_glb_below_every_repair_value_below_lub(self, r_rows, s_rows):
        instance = build_instance(r_rows, s_rows)
        solver = ExhaustiveRangeSolver(SUM_QUERY)
        glb, lub = solver.range(instance)
        if glb is BOTTOM:
            return
        for repair in instance.repairs():
            value = solver.value_on_repair(repair)
            assert value is not None
            assert glb <= value <= lub

    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=30, deadline=None)
    def test_glb_is_attained_by_some_repair(self, r_rows, s_rows):
        instance = build_instance(r_rows, s_rows)
        solver = ExhaustiveRangeSolver(SUM_QUERY)
        glb = solver.glb(instance)
        if glb is BOTTOM:
            return
        values = {solver.value_on_repair(repair) for repair in instance.repairs()}
        assert glb in values

    @given(r_rows=_r_facts, s_rows=_s_facts)
    @settings(max_examples=25, deadline=None)
    def test_adding_a_consistent_fact_never_decreases_the_sum_glb(self, r_rows, s_rows):
        # Monotonicity of SUM: adding a fresh consistent S-block can only add
        # embeddings to every repair, so the glb cannot decrease... unless the
        # query was previously ⊥, in which case it may become defined.
        instance = build_instance(r_rows, s_rows)
        extended = build_instance(r_rows, s_rows + [("zz_new", "zz_z", 3)])
        before = OperationalRangeEvaluator(SUM_QUERY).glb(instance)
        after = OperationalRangeEvaluator(SUM_QUERY).glb(extended)
        if before is BOTTOM or after is BOTTOM:
            return
        assert after >= before
