"""Tests for CERTAINTY: the rewriting, the direct checker and brute force."""

import pytest

from repro.certainty.checker import brute_force_certain, certain_answers, is_certain
from repro.certainty.rewriting import ConsistentRewriter, consistent_rewriting
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import NotRewritableError
from repro.fol.evaluation import evaluate_formula
from repro.fol.syntax import formula_size
from repro.query.parser import parse_query
from tests.conftest import make_random_instance


class TestDirectChecker:
    def test_certain_query_on_stock(self, stock_schema, stock_instance):
        # Every repair stores some product in Boston in quantity 35 (Example 4.1).
        query = parse_query(stock_schema, "Dealers('James', t), Stock(p, t, 35)")
        assert is_certain(query, stock_instance)

    def test_uncertain_query_on_stock(self, stock_schema, stock_instance):
        # Smith's town is uncertain, so stock in Smith's town at quantity 95 is not certain.
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, 95)")
        assert not is_certain(query, stock_instance)

    def test_binding_acts_as_constant(self, stock_schema, stock_instance):
        query = parse_query(stock_schema, "Dealers(x, t), Stock(p, t, y)", free="x")
        assert is_certain(query, stock_instance, {"x": "James"})
        assert is_certain(query, stock_instance, {"x": "Smith"})

    def test_missing_constant_is_not_certain(self, stock_schema, stock_instance):
        query = parse_query(stock_schema, "Dealers('Nobody', t), Stock(p, t, y)")
        assert not is_certain(query, stock_instance)

    def test_cyclic_query_raises(self):
        schema = Schema([RelationSignature("U", 2, 1), RelationSignature("V", 2, 1)])
        query = parse_query(schema, "U(x, y), V(y, x)")
        instance = DatabaseInstance.from_rows(schema, {"U": [("a", "b")], "V": [("b", "a")]})
        with pytest.raises(NotRewritableError):
            is_certain(query, instance)

    def test_brute_force_handles_cyclic_query(self):
        schema = Schema([RelationSignature("U", 2, 1), RelationSignature("V", 2, 1)])
        query = parse_query(schema, "U(x, y), V(y, x)")
        instance = DatabaseInstance.from_rows(
            schema, {"U": [("a", "b")], "V": [("b", "a")]}
        )
        assert brute_force_certain(query, instance)

    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_brute_force_on_random_instances(
        self, two_atom_schema, seed
    ):
        query = parse_query(two_atom_schema, "R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed)
        assert is_certain(query, instance) == brute_force_certain(query, instance)


class TestCertainAnswers:
    def test_certain_answers_on_stock(self, stock_schema, stock_instance):
        query = parse_query(stock_schema, "Dealers(x, t), Stock(p, t, y)", free="x")
        answers = certain_answers(query, stock_instance)
        assert ("James",) in answers
        assert ("Smith",) in answers

    def test_certain_answers_exclude_uncertain_tuples(self, stock_schema):
        instance = DatabaseInstance.from_rows(
            stock_schema,
            {
                "Dealers": [("Smith", "Boston"), ("Smith", "Paris")],
                "Stock": [("Tesla X", "Boston", 35)],
            },
        )
        query = parse_query(stock_schema, "Dealers(x, t), Stock(p, t, y)", free="x")
        assert certain_answers(query, instance) == []

    def test_requires_free_variables(self, stock_schema, stock_instance):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        with pytest.raises(ValueError):
            certain_answers(query, stock_instance)

    def test_brute_force_path_matches_rewriting_path(self, stock_schema, stock_instance):
        query = parse_query(stock_schema, "Dealers(x, t), Stock(p, t, y)", free="x")
        assert certain_answers(query, stock_instance, use_rewriting=True) == certain_answers(
            query, stock_instance, use_rewriting=False
        )


class TestConsistentRewriting:
    def test_rewriting_matches_checker_on_stock(self, stock_schema, stock_instance):
        query = parse_query(stock_schema, "Dealers('James', t), Stock(p, t, 35)")
        formula = consistent_rewriting(query)
        assert evaluate_formula(stock_instance, formula) == is_certain(
            query, stock_instance
        )

    def test_rewriting_matches_checker_on_uncertain_query(
        self, stock_schema, stock_instance
    ):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, 95)")
        formula = consistent_rewriting(query)
        assert evaluate_formula(stock_instance, formula) == is_certain(
            query, stock_instance
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_rewriting_matches_brute_force_on_random_instances(
        self, two_atom_schema, seed
    ):
        query = parse_query(two_atom_schema, "R(x, y), S(y, z, r)")
        formula = consistent_rewriting(query)
        instance = make_random_instance(two_atom_schema, seed, facts_per_relation=4)
        assert evaluate_formula(instance, formula) == brute_force_certain(query, instance)

    def test_rewriting_with_free_variables(self, stock_schema, stock_instance):
        query = parse_query(stock_schema, "Dealers(x, t), Stock(p, t, y)", free="x")
        formula = consistent_rewriting(query)
        assert evaluate_formula(stock_instance, formula, {"x": "James"})
        assert not evaluate_formula(stock_instance, formula, {"x": "Nobody"})

    def test_rewriting_size_is_polynomial(self, stock_schema):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        formula = formula_size(consistent_rewriting(query))
        assert formula < 200

    def test_cyclic_query_not_rewritable(self):
        schema = Schema([RelationSignature("U", 2, 1), RelationSignature("V", 2, 1)])
        query = parse_query(schema, "U(x, y), V(y, x)")
        with pytest.raises(NotRewritableError):
            consistent_rewriting(query)

    def test_topological_sort_exposed(self, stock_schema):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        rewriter = ConsistentRewriter(query)
        assert [a.relation for a in rewriter.topological_sort] == ["Dealers", "Stock"]
