"""Tests for repro.store (durable instance store) and the serving write path.

Covers the acceptance criteria of the durability subsystem:

* kill-and-reopen round trips — snapshot only, snapshot + log replay,
  torn-tail truncation, compaction preserving answers;
* the registry write path — copy-on-write mutation, version bumps,
  ``expected_version`` optimistic concurrency (409 over HTTP), drops;
* restart survival end to end — a server started on a store directory,
  mutated over HTTP, stopped and restarted serves the mutated answers with
  the bumped version visible in ``/instances``;
* parity — answers after mutate + restart equal answers on a freshly built
  equivalent instance, across backends, sharded execution and the worker
  pool.
"""

import asyncio
import os
import pickle

import pytest

from repro.datamodel.facts import Fact
from repro.datamodel.instance import DatabaseInstance
from repro.engine import AnswerOptions, ConsistentAnswerEngine
from repro.engine.workers import WorkerPool
from repro.query.parser import parse_aggregation_query
from repro.serve import (
    ConsistentAnswerServer,
    InstanceRegistry,
    MutationError,
    ProtocolError,
    ServeClient,
    ServeClientError,
    ServeConfig,
    VersionConflictError,
)
from repro.store import (
    FactLog,
    InstanceStore,
    LogCorruptionWarning,
    LogRecord,
    SnapshotCorruptionWarning,
    StoreError,
    StoreSnapshot,
)
from repro.workloads.scenarios import fig1_stock_instance, fig1_stock_schema

STOCK_SUM = "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
STOCK_GROUP_BY = "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"

NEW_FACT = ("Stock", ("Tesla Z", "Boston", 10))
REMOVED_FACT = ("Stock", ("Tesla Y", "New York", 96))


def mutated_stock_instance() -> DatabaseInstance:
    """The stock instance after the canonical test mutation, built fresh."""
    instance = fig1_stock_instance()
    instance.add_fact(Fact(*NEW_FACT))
    instance.remove_fact(Fact(*REMOVED_FACT))
    return instance


def stock_sum_query():
    return parse_aggregation_query(fig1_stock_schema(), STOCK_SUM)


# -- the append-only log ----------------------------------------------------------------


class TestFactLog:
    def test_append_and_replay_round_trip(self, tmp_path):
        log = FactLog(str(tmp_path / "facts.log"))
        records = [
            LogRecord("add_fact", 2, Fact("Stock", ("p", "t", 1))),
            LogRecord("remove_fact", 3, Fact("Stock", ("p", "t", 1))),
            LogRecord("drop", 4),
        ]
        for record in records:
            log.append(record)
        assert log.records() == records
        assert list(log.replay(2)) == records[1:]
        assert log.depth(0) == 3
        assert log.depth(4) == 0

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            LogRecord("mutate", 1)

    def test_torn_tail_is_truncated_with_warning(self, tmp_path):
        path = str(tmp_path / "facts.log")
        log = FactLog(path)
        log.append(LogRecord("add_fact", 2, Fact("R", ("a",))))
        intact_size = os.path.getsize(path)
        with open(path, "ab") as handle:  # a record whose payload was cut short
            handle.write(b"\x00\x00\x01\x00\xde\xad\xbe\xefpartial")
        with pytest.warns(LogCorruptionWarning):
            records = log.records()
        assert [r.version for r in records] == [2]
        assert os.path.getsize(path) == intact_size  # tail physically removed
        assert log.records() == records  # second read is clean, no warning

    def test_corrupt_checksum_drops_suffix(self, tmp_path):
        path = str(tmp_path / "facts.log")
        log = FactLog(path)
        log.append(LogRecord("add_fact", 2, Fact("R", ("a",))))
        offset = os.path.getsize(path)
        log.append(LogRecord("add_fact", 3, Fact("R", ("b",))))
        log.append(LogRecord("add_fact", 4, Fact("R", ("c",))))
        with open(path, "r+b") as handle:  # flip a byte inside record 2's payload
            handle.seek(offset + 10)
            original = handle.read(1)
            handle.seek(offset + 10)
            handle.write(bytes([original[0] ^ 0xFF]))
        with pytest.warns(LogCorruptionWarning):
            records = log.records()
        assert [r.version for r in records] == [2]

    def test_missing_file_is_empty(self, tmp_path):
        assert FactLog(str(tmp_path / "nope.log")).records() == []


# -- the instance store -----------------------------------------------------------------


class TestInstanceStore:
    def test_snapshot_round_trip(self, tmp_path):
        store = InstanceStore(str(tmp_path))
        instance = fig1_stock_instance()
        store.save("stock", instance, version=4, shards=3)
        reopened = InstanceStore(str(tmp_path))
        stored = reopened.load("stock")
        assert stored.version == 4
        assert stored.shards == 3
        assert stored.instance == instance
        assert stored.log_depth == 0
        assert reopened.names() == ["stock"]

    def test_mutations_replay_over_snapshot(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        store.mutate("stock", [("add_fact", Fact(*NEW_FACT))], version=2)
        store.mutate("stock", [("remove_fact", Fact(*REMOVED_FACT))], version=3)
        stored = InstanceStore(str(tmp_path)).load("stock")
        assert stored.version == 3
        assert stored.log_depth == 2
        assert stored.instance == mutated_stock_instance()

    def test_mutate_unknown_instance_rejected(self, tmp_path):
        store = InstanceStore(str(tmp_path))
        with pytest.raises(StoreError):
            store.mutate("ghost", [("add_fact", Fact(*NEW_FACT))], version=1)

    def test_auto_compaction_folds_log_and_preserves_state(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=2)
        store.save("stock", fig1_stock_instance(), version=1)
        current = DatabaseInstance(fig1_stock_schema(), fig1_stock_instance())
        current.add_fact(Fact(*NEW_FACT))
        depth = store.mutate(
            "stock", [("add_fact", Fact(*NEW_FACT))], version=2, instance=current
        )
        assert depth == 1  # below the threshold: still in the log
        current.remove_fact(Fact(*REMOVED_FACT))
        depth = store.mutate(
            "stock",
            [("remove_fact", Fact(*REMOVED_FACT))],
            version=3,
            instance=current,
        )
        assert depth == 0  # compacted: log folded into a fresh snapshot
        stats = store.stats()
        assert stats["compactions_total"] == 1
        assert stats["last_compaction_at"] is not None
        stored = InstanceStore(str(tmp_path)).load("stock")
        assert stored.log_depth == 0
        assert stored.version == 3
        assert stored.instance == mutated_stock_instance()

    def test_replay_skips_records_already_in_snapshot(self, tmp_path):
        """Crash window between compaction's snapshot and its log truncate."""
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        store.mutate("stock", [("add_fact", Fact(*NEW_FACT))], version=2)
        # Simulate the crash: snapshot the post-mutation state at version 2
        # *without* truncating the log (bypassing save(), which truncates).
        stale_log = open(store._log_of("stock").path, "rb").read()
        current = store.load("stock")
        store.save("stock", current.instance, version=2)
        with open(store._log_of("stock").path, "wb") as handle:
            handle.write(stale_log)
        stored = InstanceStore(str(tmp_path)).load("stock")
        assert stored.version == 2
        assert stored.log_depth == 0  # the v2 record is ≤ snapshot version
        assert len(stored.instance) == len(fig1_stock_instance()) + 1

    def test_replace_record_replays(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        replacement = mutated_stock_instance()
        store.replace("stock", replacement, version=5, shards=2)
        stored = InstanceStore(str(tmp_path)).load("stock")
        assert stored.version == 5
        assert stored.shards == 2
        assert stored.instance == replacement

    def test_drop_survives_crash_before_directory_removal(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        # Crash-window simulation: append the drop record but "crash" before
        # the rmtree by writing it through the log directly.
        store._log_of("stock").append(LogRecord("drop", 2))
        assert InstanceStore(str(tmp_path)).load("stock").dropped
        loaded = InstanceStore(str(tmp_path)).open_all()
        assert loaded == {}  # the leftover directory was cleaned up
        assert InstanceStore(str(tmp_path)).names() == []

    def test_drop_removes_state(self, tmp_path):
        store = InstanceStore(str(tmp_path))
        store.save("stock", fig1_stock_instance(), version=1)
        assert store.drop("stock") is True
        assert store.drop("stock") is False
        assert store.load("stock") is None
        assert store.version_of("stock") is None

    def test_open_all_compacts_dirty_logs_for_spool_sharing(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        store.mutate("stock", [("add_fact", Fact(*NEW_FACT))], version=2)
        assert store.snapshot_path("stock") is None  # log pending: not current
        reopened = InstanceStore(str(tmp_path))
        loaded = reopened.open_all()
        assert loaded["stock"].log_depth == 0
        path = reopened.snapshot_path("stock")
        assert path is not None
        with open(path, "rb") as handle:  # the snapshot is the full state
            snapshot = pickle.load(handle)
        assert snapshot.instance == loaded["stock"].instance
        assert snapshot.version == 2

    def test_multi_op_mutation_is_one_fsync_batch(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        store.mutate(
            "stock",
            [("add_fact", Fact(*NEW_FACT)), ("remove_fact", Fact(*REMOVED_FACT))],
            version=2,
        )
        records = store._log_of("stock").records()
        assert [r.commit for r in records] == [False, True]
        stored = InstanceStore(str(tmp_path)).load("stock")
        assert stored.instance == mutated_stock_instance()

    def test_uncommitted_batch_tail_never_replays_partially(self, tmp_path):
        """Crash mid-batch: the partial mutation must be invisible after
        reopen — all-or-nothing on disk, not just in memory."""
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        # Simulate the crash: only the first (non-commit) record of a
        # two-op batch made it to disk.
        store._log_of("stock").append_batch(
            [LogRecord("add_fact", 2, Fact(*NEW_FACT), commit=False)]
        )
        with pytest.warns(LogCorruptionWarning, match="uncommitted"):
            stored = InstanceStore(str(tmp_path)).load("stock")
        assert stored.version == 1
        assert Fact(*NEW_FACT) not in stored.instance
        assert stored.instance == fig1_stock_instance()

    def test_orphaned_batch_cannot_merge_with_later_same_version_write(
        self, tmp_path
    ):
        """The orphan is truncated off the file on first read, so a later
        accepted write that reuses the crashed batch's version can never
        pick up its records on replay."""
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        store._log_of("stock").append_batch(
            [LogRecord("add_fact", 2, Fact(*NEW_FACT), commit=False)]
        )
        reopened = InstanceStore(str(tmp_path), compact_every=0)
        with pytest.warns(LogCorruptionWarning, match="uncommitted"):
            assert reopened.version_of("stock") == 1
        assert reopened._log_of("stock").records() == []  # physically gone
        other = Fact("Stock", ("Tesla W", "Boston", 5))
        reopened.mutate("stock", [("add_fact", other)], version=2)
        stored = InstanceStore(str(tmp_path)).load("stock")
        assert other in stored.instance
        assert Fact(*NEW_FACT) not in stored.instance  # orphan never replays
        assert stored.version == 2

    def test_stats_and_version_of_come_from_the_meta_cache(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        store.mutate("stock", [("add_fact", Fact(*NEW_FACT))], version=2)
        assert store.version_of("stock") == 2
        # a fresh handle fills its cache from disk once, then serves hits
        reopened = InstanceStore(str(tmp_path))
        assert reopened.version_of("stock") == 2
        stats = reopened.stats()
        assert stats["versions"] == {"stock": 2}
        assert stats["log_depth"] == {"stock": 1}

    def test_torn_log_tail_recovers_through_store(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        store.mutate("stock", [("add_fact", Fact(*NEW_FACT))], version=2)
        with open(store._log_of("stock").path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x40torn-me")
        with pytest.warns(LogCorruptionWarning):
            stored = InstanceStore(str(tmp_path)).load("stock")
        assert stored.version == 2
        assert Fact(*NEW_FACT) in stored.instance

    def test_names_with_awkward_characters(self, tmp_path):
        store = InstanceStore(str(tmp_path))
        awkward = "prod/eu-west 1:sensors#v2"
        store.save(awkward, fig1_stock_instance(), version=1)
        assert InstanceStore(str(tmp_path)).names() == [awkward]
        assert InstanceStore(str(tmp_path)).load(awkward) is not None


# -- snapshot checksums -----------------------------------------------------------------


def _corrupt_snapshot(store: InstanceStore, name: str) -> str:
    """Flip one byte inside the snapshot's pickle body (trailer intact)."""
    path = store.snapshot_path(name, current_only=False)
    with open(path, "rb") as handle:
        raw = bytearray(handle.read())
    raw[len(raw) // 2] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(raw)
    return path


class TestSnapshotChecksum:
    def test_snapshot_carries_crc_trailer_and_roundtrips(self, tmp_path):
        from repro.store.store import _CRC_MAGIC, _CRC_TRAILER

        store = InstanceStore(str(tmp_path))
        store.save("stock", fig1_stock_instance(), version=1)
        path = store.snapshot_path("stock")
        with open(path, "rb") as handle:
            raw = handle.read()
        assert raw[-_CRC_TRAILER:-4] == _CRC_MAGIC
        stored = InstanceStore(str(tmp_path)).load("stock")
        assert stored.instance.facts == fig1_stock_instance().facts

    def test_pool_spool_loader_ignores_the_trailer(self, tmp_path):
        # The worker pool adopts snapshot.pkl directly; plain pickle.load
        # must keep working (it stops at the pickle STOP opcode).
        store = InstanceStore(str(tmp_path))
        store.save("stock", fig1_stock_instance(), version=1)
        with open(store.snapshot_path("stock"), "rb") as handle:
            payload = pickle.load(handle)
        assert isinstance(payload, StoreSnapshot)
        assert payload.instance.facts == fig1_stock_instance().facts

    def test_corrupt_snapshot_falls_back_to_log_replay(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        replacement = mutated_stock_instance()
        store.replace("stock", replacement, version=2, shards=3)
        _corrupt_snapshot(store, "stock")
        with pytest.warns(SnapshotCorruptionWarning, match="rebuilt from the log"):
            stored = InstanceStore(str(tmp_path)).load("stock")
        assert stored.version == 2
        assert stored.shards == 3
        assert stored.instance.facts == replacement.facts

    def test_corruption_without_replacement_record_surfaces(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        _corrupt_snapshot(store, "stock")
        with pytest.raises(StoreError, match="no\\s+full replacement record"):
            InstanceStore(str(tmp_path)).load("stock")
        # The boot path skips the unrecoverable instance instead of dying.
        with pytest.warns(SnapshotCorruptionWarning, match="skipped"):
            loaded = InstanceStore(str(tmp_path)).open_all()
        assert loaded == {}

    def test_boot_compaction_heals_a_corrupt_snapshot(self, tmp_path):
        store = InstanceStore(str(tmp_path), compact_every=0)
        store.save("stock", fig1_stock_instance(), version=1)
        replacement = mutated_stock_instance()
        store.replace("stock", replacement, version=2)
        _corrupt_snapshot(store, "stock")
        with pytest.warns(SnapshotCorruptionWarning):
            loaded = InstanceStore(str(tmp_path)).open_all()
        assert loaded["stock"].instance.facts == replacement.facts
        # open_all compacted the rebuilt state into a fresh, valid snapshot.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            healed = InstanceStore(str(tmp_path)).load("stock")
        assert healed.version == 2
        assert healed.instance.facts == replacement.facts


# -- datamodel write helpers ------------------------------------------------------------


class TestDatamodelWriteHelpers:
    def test_remove_fact_maintains_block_index(self):
        instance = fig1_stock_instance()
        fact = Fact(*REMOVED_FACT)
        blocks_before = len(instance.blocks())
        instance.remove_fact(fact)
        assert fact not in instance
        # The ("Tesla Y", "New York") block shrank from 2 facts to 1.
        assert len(instance.blocks()) == blocks_before
        assert instance.block_of(Fact("Stock", ("Tesla Y", "New York", 95))) == {
            Fact("Stock", ("Tesla Y", "New York", 95))
        }
        # Removing the last fact of a block deletes the block entirely.
        instance.remove_fact(Fact("Stock", ("Tesla Y", "New York", 95)))
        assert len(instance.blocks()) == blocks_before - 1
        assert instance.repair_count() > 0

    def test_remove_absent_fact_raises(self):
        instance = fig1_stock_instance()
        with pytest.raises(KeyError):
            instance.remove_fact(Fact("Stock", ("nope", "nowhere", 1)))
        assert instance.discard_fact(Fact("Stock", ("nope", "nowhere", 1))) is False

    def test_data_version_bumps_on_every_write(self):
        instance = fig1_stock_instance()
        before = instance.data_version
        fact = Fact(*NEW_FACT)
        instance.add_fact(fact)
        assert instance.data_version == before + 1
        instance.add_fact(fact)  # idempotent add: no change, no bump
        assert instance.data_version == before + 1
        instance.remove_fact(fact)
        assert instance.data_version == before + 2
        # remove+add of the same cardinality still changes the token — the
        # property the shard-plan and worker-ref caches rely on.
        assert len(instance) == len(fig1_stock_instance())
        assert instance.data_version != before


# -- the registry write path ------------------------------------------------------------


def wire_ops():
    return [
        ("add_fact", NEW_FACT[0], NEW_FACT[1]),
        ("remove_fact", REMOVED_FACT[0], REMOVED_FACT[1]),
    ]


class TestRegistryWritePath:
    def test_mutate_is_copy_on_write_and_bumps_version(self):
        registry = InstanceRegistry({"stock": fig1_stock_instance()})
        old_entry = registry.get("stock")
        new_entry = registry.mutate("stock", wire_ops())
        assert new_entry.version == old_entry.version + 1
        assert old_entry.instance == fig1_stock_instance()  # reader untouched
        assert new_entry.instance == mutated_stock_instance()
        assert new_entry.instance is not old_entry.instance
        assert registry.get("stock").describe()["version"] == 2

    def test_expected_version_conflict(self):
        registry = InstanceRegistry({"stock": fig1_stock_instance()})
        registry.mutate("stock", wire_ops(), expected_version=1)
        with pytest.raises(VersionConflictError):
            registry.mutate("stock", wire_ops(), expected_version=1)

    def test_invalid_ops_reject_whole_batch(self):
        registry = InstanceRegistry({"stock": fig1_stock_instance()})
        with pytest.raises(MutationError):
            registry.mutate(
                "stock",
                [
                    ("add_fact", NEW_FACT[0], NEW_FACT[1]),
                    ("remove_fact", "Stock", ("ghost", "gone", 1)),
                ],
            )
        entry = registry.get("stock")
        assert entry.version == 1  # nothing applied, nothing bumped
        assert Fact(*NEW_FACT) not in entry.instance
        with pytest.raises(MutationError):
            registry.mutate("stock", [])

    def test_replace_continues_version_count(self):
        registry = InstanceRegistry({"stock": fig1_stock_instance()})
        registry.mutate("stock", wire_ops())
        entry = registry.register("stock", fig1_stock_instance(), replace=True)
        assert entry.version == 3

    def test_store_backed_registry_survives_reload(self, tmp_path):
        store = InstanceStore(str(tmp_path))
        registry = InstanceRegistry(store=store)
        registry.register("stock", fig1_stock_instance(), shards=2)
        registry.mutate("stock", wire_ops())
        registry.register("other", fig1_stock_instance())
        registry.drop("other")

        fresh = InstanceRegistry(store=InstanceStore(str(tmp_path)))
        assert fresh.load_store() == ["stock"]
        entry = fresh.get("stock")
        assert entry.version == 2
        assert entry.shards == 2
        assert entry.instance == mutated_stock_instance()

    def test_subscribers_see_write_events(self):
        events = []
        registry = InstanceRegistry()
        registry.subscribe(lambda event, name: events.append((event, name)))
        registry.register("stock", fig1_stock_instance())
        registry.mutate("stock", [("add_fact", NEW_FACT[0], NEW_FACT[1])])
        registry.register("stock", fig1_stock_instance(), replace=True)
        registry.drop("stock")
        assert events == [
            ("register", "stock"),
            ("mutate", "stock"),
            ("replace", "stock"),
            ("drop", "stock"),
        ]


# -- serving: the write path over HTTP --------------------------------------------------


def serve_scenario(coro_fn, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("workers", 2)

    async def main():
        server = ConsistentAnswerServer(ServeConfig(**config_kwargs))
        await server.start()
        try:
            host, port = server.address
            async with ServeClient(host, port) as client:
                return await coro_fn(server, client)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestServeMutation:
    def test_mutation_changes_answers_and_version(self):
        async def scenario(server, client):
            before = await client.answer("stock", STOCK_SUM)
            described = await client.mutate_instance(
                "stock",
                [
                    ("add", *NEW_FACT),
                    ("remove", *REMOVED_FACT),
                ],
                expected_version=1,
            )
            assert described["version"] == 2
            assert described["facts"] == len(mutated_stock_instance())
            after = await client.answer("stock", STOCK_SUM)
            engine = ConsistentAnswerEngine()
            expected = engine.answer(stock_sum_query(), mutated_stock_instance())
            assert after == expected
            assert after != before
            listed = {
                item["name"]: item["version"] for item in await client.instances()
            }
            assert listed["stock"] == 2

        serve_scenario(scenario)

    def test_version_conflict_is_409(self):
        async def scenario(server, client):
            await client.mutate_instance(
                "stock", [("add", *NEW_FACT)], expected_version=1
            )
            with pytest.raises(ServeClientError) as err:
                await client.mutate_instance(
                    "stock", [("remove", *NEW_FACT)], expected_version=1
                )
            assert err.value.status == 409
            assert err.value.error_type == "VersionConflictError"

        serve_scenario(scenario)

    def test_bad_ops_are_structured_400(self):
        async def scenario(server, client):
            # malformed op payloads rejected server-side (raw requests: the
            # typed client helper already refuses to encode these)
            for payload in (
                {"ops": []},
                {"ops": [{"op": "frobnicate", "relation": "Stock", "values": [1]}]},
                {"ops": [{"op": ["add"], "relation": "Stock", "values": [1]}]},
                {"ops": [{"op": "add", "relation": "", "values": [1]}]},
                {"ops": [{"op": "add", "relation": "Stock"}]},
                {"ops": "not-a-list"},
                {},
            ):
                status, body = await client.request(
                    "POST", "/instances/stock/facts", payload
                )
                assert status == 400
                assert body["error"]["type"] == "ProtocolError"
            # a client-side malformed op never reaches the wire
            with pytest.raises(ProtocolError):
                await client.mutate_instance(
                    "stock", [("frobnicate", "Stock", ("a", "b", 1))]
                )
            # removing an absent fact is a 400 MutationError
            with pytest.raises(ServeClientError) as err:
                await client.mutate_instance(
                    "stock", [("remove", "Stock", ("ghost", "gone", 1))]
                )
            assert err.value.status == 400
            assert err.value.error_type == "MutationError"
            # arity violations are schema errors, also 400
            with pytest.raises(ServeClientError) as err:
                await client.mutate_instance("stock", [("add", "Stock", ("x",))])
            assert err.value.status == 400

        serve_scenario(scenario)

    def test_mutate_unknown_instance_404_and_wrong_method_405(self):
        async def scenario(server, client):
            with pytest.raises(ServeClientError) as err:
                await client.mutate_instance("ghost", [("add", *NEW_FACT)])
            assert err.value.status == 404
            status, _body = await client.request("GET", "/instances/stock/facts")
            assert status == 405
            status, _body = await client.request("POST", "/instances/stock")
            assert status == 405
            # 405s on dynamic routes label metrics with the path *template*,
            # not the raw instance name (bounded cardinality)
            metrics = await client.metrics()
            assert "/instances/{name}/facts" in metrics["requests_total"]
            assert "/instances/{name}" in metrics["requests_total"]
            assert "/instances/stock" not in metrics["requests_total"]

        serve_scenario(scenario)

    def test_delete_endpoint_drops_instance(self):
        async def scenario(server, client):
            with pytest.raises(ServeClientError) as err:
                await client.drop_instance("stock", expected_version=7)
            assert err.value.status == 409
            dropped = await client.drop_instance("stock", expected_version=1)
            assert dropped == {"dropped": "stock", "version": 1}
            with pytest.raises(ServeClientError) as err:
                await client.answer("stock", STOCK_SUM)
            assert err.value.status == 404
            with pytest.raises(ServeClientError) as err:
                await client.drop_instance("stock")
            assert err.value.status == 404

        serve_scenario(scenario)

    def test_store_stats_reported(self, tmp_path):
        async def scenario(server, client):
            await client.mutate_instance("stock", [("add", *NEW_FACT)])
            health = await client.healthz()
            assert health["store"]["enabled"] is True
            assert health["store"]["instances"] == 2
            metrics = await client.metrics()
            store = metrics["store"]
            assert store["versions"]["stock"] == 2
            assert store["appends_total"] == 1
            assert store["log_depth"]["stock"] == 1

        serve_scenario(scenario, store_dir=str(tmp_path))

    def test_metrics_disabled_store_section(self):
        async def scenario(server, client):
            health = await client.healthz()
            assert health["store"] == {"enabled": False}
            metrics = await client.metrics()
            assert metrics["store"] == {"enabled": False}

        serve_scenario(scenario)


class TestPatchMutationApi:
    """The consolidated write surface: ``PATCH /instances/{name}`` with an
    ``If-Match`` precondition, and the deprecated POST shim behind it."""

    OPS = {"ops": [{"op": "add", "relation": NEW_FACT[0], "values": list(NEW_FACT[1])}]}

    def test_patch_reports_delta_footprint(self):
        async def scenario(server, client):
            status, body = await client.request(
                "PATCH", "/instances/stock", self.OPS, headers={"If-Match": "1"}
            )
            assert status == 200
            assert body["version"] == 2
            assert body["applied"] == 1
            assert body["touched_blocks"] == [
                {"relation": "Stock", "key": ["Tesla Z", "Boston"]}
            ]
            assert body["shards_invalidated"] == [0]
            assert body["mutated"]["version"] == 2
            # the typed client helper uses the PATCH route (no deprecation)
            described = await client.mutate_instance(
                "stock", [("remove", *NEW_FACT)], expected_version=2
            )
            assert described["version"] == 3
            assert "deprecation" not in client.last_response_headers

        serve_scenario(scenario)

    def test_if_match_grammar_and_precedence(self):
        async def scenario(server, client):
            # quoted ETag spelling is accepted
            status, body = await client.request(
                "PATCH", "/instances/stock", self.OPS, headers={"If-Match": '"1"'}
            )
            assert status == 200 and body["version"] == 2
            # "*" means no precondition
            status, body = await client.request(
                "PATCH",
                "/instances/stock",
                {"ops": [{"op": "remove", "relation": NEW_FACT[0],
                          "values": list(NEW_FACT[1])}]},
                headers={"If-Match": "*"},
            )
            assert status == 200 and body["version"] == 3
            # header wins over a contradicting body expected_version
            status, body = await client.request(
                "PATCH",
                "/instances/stock",
                {**self.OPS, "expected_version": 999},
                headers={"If-Match": "3"},
            )
            assert status == 200 and body["version"] == 4
            # stale precondition: 409 with the structured conflict error
            status, body = await client.request(
                "PATCH", "/instances/stock", self.OPS, headers={"If-Match": "1"}
            )
            assert status == 409
            assert body["error"]["type"] == "VersionConflictError"
            # garbage preconditions are protocol errors, not conflicts
            for bad in ("zero", "0", "-3", '"'):
                status, body = await client.request(
                    "PATCH", "/instances/stock", self.OPS, headers={"If-Match": bad}
                )
                assert status == 400
                assert body["error"]["type"] == "ProtocolError"

        serve_scenario(scenario)

    def test_deprecated_post_route_still_works_and_says_so(self):
        async def scenario(server, client):
            status, body = await client.request(
                "POST",
                "/instances/stock/facts",
                {**self.OPS, "expected_version": 1},
            )
            assert status == 200
            assert body["version"] == 2
            assert body["touched_blocks"]
            headers = client.last_response_headers
            assert headers.get("deprecation") == "true"
            assert 'rel="successor-version"' in headers.get("link", "")
            # the shim shares the PATCH write path: the write is real
            after = await client.answer("stock", STOCK_SUM)
            engine = ConsistentAnswerEngine()
            expected = engine.answer(
                parse_aggregation_query(fig1_stock_schema(), STOCK_SUM),
                DatabaseInstance(
                    fig1_stock_schema(),
                    fig1_stock_instance().facts | {Fact(*NEW_FACT)},
                ),
            )
            assert after == expected

        serve_scenario(scenario)


# -- restart survival (the acceptance criterion) ----------------------------------------


def restart_scenario(store_dir, first, second, **config_kwargs):
    """Run ``first`` against a fresh server, restart on the same store
    directory, then run ``second`` against the new server."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("workers", 2)

    async def main():
        results = []
        for phase in (first, second):
            server = ConsistentAnswerServer(
                ServeConfig(store_dir=str(store_dir), **config_kwargs)
            )
            await server.start()
            try:
                host, port = server.address
                async with ServeClient(host, port) as client:
                    results.append(await phase(server, client))
            finally:
                await server.stop()
        return results

    return asyncio.run(main())


class TestRestartSurvival:
    def test_mutation_survives_restart(self, tmp_path):
        async def mutate_phase(server, client):
            await client.mutate_instance(
                "stock",
                [("add", *NEW_FACT), ("remove", *REMOVED_FACT)],
                expected_version=1,
            )
            return await client.answer("stock", STOCK_SUM)

        async def verify_phase(server, client):
            listed = {
                item["name"]: item["version"] for item in await client.instances()
            }
            assert listed["stock"] == 2  # bumped version visible after restart
            return await client.answer("stock", STOCK_SUM)

        first, second = restart_scenario(tmp_path, mutate_phase, verify_phase)
        engine = ConsistentAnswerEngine()
        expected = engine.answer(stock_sum_query(), mutated_stock_instance())
        assert first == expected
        assert second == expected

    def test_registered_instance_and_drop_survive_restart(self, tmp_path):
        async def write_phase(server, client):
            await client.register_instance(
                "stock_copy", fig1_stock_instance(), shards=2
            )
            await client.drop_instance("running_example")
            return sorted(i["name"] for i in await client.instances())

        async def verify_phase(server, client):
            listed = {i["name"]: i for i in await client.instances()}
            # the registered instance survived, with its shard opt-in
            assert listed["stock_copy"]["shards"] == 2
            # dropped builtins are re-seeded at boot (documented), fresh at v1
            assert listed["running_example"]["version"] == 1
            return sorted(listed)

        first, second = restart_scenario(tmp_path, write_phase, verify_phase)
        assert "stock_copy" in first and "stock_copy" in second

    def test_group_by_parity_after_mutate_and_restart_across_backends(
        self, tmp_path
    ):
        """Answers after mutate+restart == answers on a freshly built
        equivalent instance, for every backend and for sharded execution."""

        async def mutate_phase(server, client):
            await client.mutate_instance(
                "stock", [("add", *NEW_FACT), ("remove", *REMOVED_FACT)]
            )
            return None

        async def read_phase(server, client):
            return (
                await client.answer("stock", STOCK_SUM),
                await client.answer_group_by("stock", STOCK_GROUP_BY),
            )

        for backend in ("operational", "sqlite"):
            store_dir = tmp_path / backend
            _, (closed, grouped) = restart_scenario(
                store_dir, mutate_phase, read_phase, backend=backend
            )
            engine = ConsistentAnswerEngine(backend=backend)
            fresh = mutated_stock_instance()
            assert closed == engine.answer(stock_sum_query(), fresh)
            group_query = parse_aggregation_query(
                fig1_stock_schema(), STOCK_GROUP_BY
            )
            assert grouped == engine.answer_group_by(group_query, fresh)
            # sharded execution on the reloaded instance merges to the same
            sharded = engine.answer(
                stock_sum_query(), fresh, options=AnswerOptions(shards=3)
            )
            assert sharded == closed


# -- worker pool integration ------------------------------------------------------------


class TestStoreWorkerPool:
    def test_pool_adopts_store_snapshots_and_serves_mutations(self, tmp_path):
        async def mutate_phase(server, client):
            await client.mutate_instance(
                "stock", [("add", *NEW_FACT), ("remove", *REMOVED_FACT)]
            )
            return await client.answer("stock", STOCK_SUM)

        async def verify_phase(server, client):
            # Boot adopted the store's snapshot as the pool spool: the named
            # ref is a hard link of the snapshot (same bytes, no re-pickle),
            # immutable even if the store later compacts over its own path.
            ref = server._pool._named_refs["stock"][1]
            assert os.path.basename(ref.spool_path).startswith("adopted-")
            store_path = server.store.snapshot_path("stock")
            assert store_path is not None
            assert os.path.samefile(ref.spool_path, store_path)
            answer = await client.answer("stock", STOCK_SUM)
            # A further mutation delta-ships over the adopted spool: the new
            # ref keeps the hard-linked base (immutable per version), carries
            # the fact delta as a chain, and answers reflect it immediately.
            await client.mutate_instance("stock", [("remove", *NEW_FACT)])
            after = await client.answer("stock", STOCK_SUM)
            new_ref = server._pool._named_refs["stock"][1]
            assert new_ref.version == ref.version + 1
            assert new_ref.spool_path == ref.spool_path
            assert new_ref.delta and len(new_ref.delta) == 1
            assert os.path.exists(store_path)  # store file never deleted
            return answer, after

        first, (answer, after) = restart_scenario(
            tmp_path, mutate_phase, verify_phase, worker_processes=1
        )
        assert answer == first
        engine = ConsistentAnswerEngine()
        reverted = fig1_stock_instance()
        reverted.remove_fact(Fact(*REMOVED_FACT))
        assert after == engine.answer(stock_sum_query(), reverted)

    def test_instance_ref_loader_unwraps_store_snapshots(self, tmp_path):
        from repro.engine.workers import InstanceRef

        store = InstanceStore(str(tmp_path))
        instance = fig1_stock_instance()
        store.save("stock", instance, version=1)
        ref = InstanceRef(
            key="stock",
            version=1,
            fingerprint="x",
            size=len(instance),
            spool_path=store.snapshot_path("stock"),
        )
        assert ref.load() == instance

    def test_chunks_route_by_least_queue_depth(self):
        query = stock_sum_query()
        instance = fig1_stock_instance()
        with WorkerPool(workers=2) as pool:
            # Wedge worker 0 under three slow jobs; chunk routing must then
            # prefer worker 1 for every chunk (depth 0..2 vs 3).
            blockers = [pool._submit(0, "sleep", (0.6,)) for _ in range(3)]
            chunks = [[(0, query, instance)], [(1, query, instance)]]
            results = pool.run_chunks(chunks, timeout=30)
            assert sorted(r.index for r in results) == [0, 1]
            for blocker in blockers:
                blocker.result(timeout=30)
            stats = pool.stats()
            per_worker = {w["worker"]: w for w in stats["per_worker"]}
            assert per_worker[1]["chunk_jobs"] == 2
            assert "chunk_jobs" not in per_worker[0] or (
                per_worker[0].get("chunk_jobs", 0) == 0
            )
            assert all("queue_depth" in w for w in stats["per_worker"])

    def test_queue_depth_gauge_counts_pending_jobs(self):
        with WorkerPool(workers=2) as pool:
            blocker = pool._submit(0, "sleep", (0.5,))
            depths = {
                w["worker"]: w["queue_depth"]
                for w in pool.stats()["per_worker"]
            }
            assert depths[0] >= 1
            assert depths[1] == 0
            blocker.result(timeout=30)
            assert all(
                w["queue_depth"] == 0 for w in pool.stats()["per_worker"]
            )
