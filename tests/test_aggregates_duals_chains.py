"""Tests for dual operators (Section 7.2) and descending chains (Section 7.1)."""

from fractions import Fraction


from repro.aggregates.chains import DescendingChain, descending_chain_witness
from repro.aggregates.duals import dual_of
from repro.aggregates.operators import AVG, COUNT_DISTINCT, MAX, MIN, PRODUCT, SUM


class TestDuals:
    def test_dual_negates_nonempty(self):
        dual = dual_of(SUM)
        assert dual([1, 2, 3]) == Fraction(-6)

    def test_dual_keeps_empty_convention(self):
        assert dual_of(SUM)([]) == SUM([])
        assert dual_of(MIN)([]) is None

    def test_dual_name(self):
        assert dual_of(MAX).name == "MAX_DUAL"

    def test_dual_not_monotone_or_associative(self):
        dual = dual_of(SUM)
        assert not dual.monotone
        assert not dual.associative
        assert not dual.is_monotone_and_associative

    def test_dual_of_max_vs_min(self):
        # max(X) = -1 * min(-X): the dual of MAX applied to X equals -max(X).
        assert dual_of(MAX)([3, 7, 2]) == Fraction(-7)


class TestDescendingChains:
    def test_avg_has_bounded_chain(self):
        chain = descending_chain_witness(AVG)
        assert chain is not None and chain.bounded
        assert chain.verify(AVG)
        assert chain.verify_bounded(AVG)

    def test_product_has_bounded_chain(self):
        chain = descending_chain_witness(PRODUCT)
        assert chain is not None and chain.bounded
        assert chain.verify(PRODUCT)
        assert chain.verify_bounded(PRODUCT)

    def test_sum_has_no_chain_over_nonnegatives(self):
        assert descending_chain_witness(SUM) is None

    def test_sum_with_negative_one_has_bounded_chain(self):
        chain = descending_chain_witness(SUM, allow_negative=True)
        assert chain is not None and chain.bounded
        assert chain.verify(SUM)
        assert chain.verify_bounded(SUM)

    def test_max_and_min_have_no_chain(self):
        assert descending_chain_witness(MAX) is None
        assert descending_chain_witness(MIN) is None

    def test_count_distinct_has_no_chain_of_this_shape(self):
        assert descending_chain_witness(COUNT_DISTINCT) is None

    def test_dual_sum_chain(self):
        dual = dual_of(SUM)
        chain = descending_chain_witness(dual)
        assert chain is not None
        assert chain.verify(dual)

    def test_dual_avg_chain(self):
        dual = dual_of(AVG)
        chain = descending_chain_witness(dual)
        assert chain is not None
        assert chain.verify(dual)

    def test_dual_product_chain_is_bounded(self):
        dual = dual_of(PRODUCT)
        chain = descending_chain_witness(dual)
        assert chain is not None and chain.bounded
        assert chain.verify(dual)
        assert chain.verify_bounded(dual)

    def test_prefix_values_strictly_decrease(self):
        chain = descending_chain_witness(AVG)
        values = [chain.prefix_value(i, AVG) for i in range(5)]
        assert all(earlier > later for earlier, later in zip(values, values[1:]))

    def test_unbounded_chain_reports_no_bound(self):
        chain = DescendingChain("X", Fraction(1), Fraction(1), bounded=False)
        assert chain.bound_for(3) is None
        assert not chain.verify_bounded(SUM)
