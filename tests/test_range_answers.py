"""Tests for the public range-answers API (glb, lub, ⊥, GROUP BY, methods)."""

from fractions import Fraction

import pytest

from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.core.evaluator import BOTTOM
from repro.core.range_answers import (
    RangeAnswer,
    RangeConsistentAnswers,
    compute_range_answer,
    compute_range_answers,
)
from repro.query.parser import parse_aggregation_query
from tests.conftest import make_random_instance


class TestRangeAnswer:
    def test_str_and_tuple(self):
        answer = RangeAnswer(Fraction(1), Fraction(2))
        assert answer.as_tuple() == (Fraction(1), Fraction(2))
        assert str(answer) == "[1, 2]"
        assert not answer.is_bottom

    def test_bottom_answer(self):
        answer = RangeAnswer(BOTTOM, BOTTOM)
        assert answer.is_bottom
        assert str(answer) == "⊥"


class TestClosedQueries:
    def test_fig1_range(self, stock_sum_query, stock_instance):
        answer = compute_range_answer(stock_sum_query, stock_instance)
        assert answer.glb == Fraction(70)
        assert answer.lub == Fraction(96)

    def test_running_example_range(self, running_query, running_instance):
        answer = compute_range_answer(running_query, running_instance)
        assert answer.glb == Fraction(9)
        assert answer.lub == ExhaustiveRangeSolver(running_query).lub(running_instance)

    def test_bottom_range(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)"
        )
        answer = compute_range_answer(query, stock_instance)
        assert answer.is_bottom

    def test_method_selection_reported(self, stock_sum_query):
        auto = RangeConsistentAnswers(stock_sum_query)
        assert auto.uses_rewriting("glb")
        assert not auto.uses_rewriting("lub")
        forced = RangeConsistentAnswers(stock_sum_query, method="branch_and_bound")
        assert not forced.uses_rewriting("glb")

    def test_invalid_method_rejected(self, stock_sum_query):
        with pytest.raises(ValueError):
            RangeConsistentAnswers(stock_sum_query, method="magic")

    def test_forced_rewriting_lub_raises_for_sum(self, stock_sum_query, stock_instance):
        answers = RangeConsistentAnswers(stock_sum_query, method="rewriting")
        with pytest.raises(NotImplementedError):
            answers.lub(stock_instance)

    def test_all_methods_agree_on_glb(self, stock_sum_query, stock_instance):
        values = {
            method: RangeConsistentAnswers(stock_sum_query, method=method).glb(
                stock_instance
            )
            for method in ("auto", "rewriting", "branch_and_bound", "exhaustive")
        }
        assert len(set(values.values())) == 1

    def test_avg_query_falls_back_to_exact_solver(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "AVG(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        answers = RangeConsistentAnswers(query)
        assert not answers.uses_rewriting("glb")
        expected = ExhaustiveRangeSolver(query).range(stock_instance)
        assert answers.glb(stock_instance) == expected[0]
        assert answers.lub(stock_instance) == expected[1]

    def test_min_max_lub_through_public_api(self, stock_schema, stock_instance):
        for aggregate in ("MIN", "MAX"):
            query = parse_aggregation_query(
                stock_schema, f"{aggregate}(y) <- Dealers('Smith', t), Stock(p, t, y)"
            )
            answers = RangeConsistentAnswers(query)
            assert answers.uses_rewriting("lub")
            expected = ExhaustiveRangeSolver(query).range(stock_instance)
            assert answers.range(stock_instance).as_tuple() == expected


class TestGroupByQueries:
    def test_per_dealer_answers(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        answers = compute_range_answers(query, stock_instance)
        assert answers[("James",)].glb == Fraction(70)
        assert answers[("James",)].lub == Fraction(75)
        assert answers[("Smith",)].glb == Fraction(70)
        assert answers[("Smith",)].lub == Fraction(96)

    def test_group_by_requires_free_variables(self, stock_sum_query, stock_instance):
        with pytest.raises(ValueError):
            RangeConsistentAnswers(stock_sum_query).answers(stock_instance)

    def test_consistent_answers_filter_bottom(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "(p, SUM(y)) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        all_answers = RangeConsistentAnswers(query).answers(stock_instance)
        consistent = RangeConsistentAnswers(query).consistent_answers(stock_instance)
        assert set(consistent) <= set(all_answers)
        # Tesla X is only stocked in Boston, and Smith may be in New York: ⊥.
        assert all_answers[("Tesla X",)].is_bottom
        assert ("Tesla X",) not in consistent
        assert not consistent[("Tesla Y",)].is_bottom

    def test_group_by_matches_exhaustive(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "(x, COUNT(1)) <- Dealers(x, t), Stock(p, t, y)"
        )
        answers = compute_range_answers(query, stock_instance)
        solver = ExhaustiveRangeSolver(query)
        for candidate, answer in answers.items():
            expected = solver.range(stock_instance, {"x": candidate[0]})
            assert answer.as_tuple() == expected


class TestRandomisedAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_auto_method_matches_exhaustive_for_sum(self, two_atom_schema, seed):
        query = parse_aggregation_query(two_atom_schema, "SUM(r) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed + 400)
        expected = ExhaustiveRangeSolver(query).range(instance)
        answer = compute_range_answer(query, instance)
        assert answer.as_tuple() == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_auto_method_matches_exhaustive_for_min(self, two_atom_schema, seed):
        query = parse_aggregation_query(two_atom_schema, "MIN(r) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed + 500)
        expected = ExhaustiveRangeSolver(query).range(instance)
        assert compute_range_answer(query, instance).as_tuple() == expected
