"""Tests for MIN/MAX range answers (Theorems 7.10 and 7.11)."""

from fractions import Fraction

import pytest

from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.core.evaluator import BOTTOM
from repro.core.minmax import MinMaxRangeEvaluator
from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import NotRewritableError, UnsupportedAggregateError
from repro.query.parser import parse_aggregation_query
from tests.conftest import make_random_instance


class TestValidation:
    def test_only_min_max_accepted(self, running_query):
        with pytest.raises(UnsupportedAggregateError):
            MinMaxRangeEvaluator(running_query)

    def test_cyclic_graph_rejected(self):
        schema = Schema(
            [
                RelationSignature("U", 2, 1, numeric_positions=(2,)),
                RelationSignature("V", 2, 1),
            ]
        )
        query = parse_aggregation_query(schema, "MAX(y) <- U(x, y), V(y, x)")
        with pytest.raises(NotRewritableError):
            MinMaxRangeEvaluator(query)


class TestStockExamples:
    def test_min_glb_is_plain_minimum(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "MIN(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        assert MinMaxRangeEvaluator(query).glb(stock_instance) == Fraction(35)

    def test_max_lub_is_plain_maximum(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "MAX(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        assert MinMaxRangeEvaluator(query).lub(stock_instance) == Fraction(96)

    def test_all_four_match_exhaustive(self, stock_schema, stock_instance):
        for aggregate in ("MIN", "MAX"):
            query = parse_aggregation_query(
                stock_schema, f"{aggregate}(y) <- Dealers('Smith', t), Stock(p, t, y)"
            )
            evaluator = MinMaxRangeEvaluator(query)
            expected = ExhaustiveRangeSolver(query).range(stock_instance)
            assert evaluator.glb(stock_instance) == expected[0]
            assert evaluator.lub(stock_instance) == expected[1]

    def test_bottom_propagates(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "MIN(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)"
        )
        evaluator = MinMaxRangeEvaluator(query)
        assert evaluator.glb(stock_instance) is BOTTOM
        assert evaluator.lub(stock_instance) is BOTTOM


class TestAgainstExhaustiveGroundTruth:
    @pytest.mark.parametrize("aggregate", ["MIN", "MAX"])
    @pytest.mark.parametrize("seed", range(8))
    def test_glb_and_lub_match_exhaustive(self, two_atom_schema, aggregate, seed):
        query = parse_aggregation_query(
            two_atom_schema, f"{aggregate}(r) <- R(x, y), S(y, z, r)"
        )
        instance = make_random_instance(two_atom_schema, seed + 300)
        expected = ExhaustiveRangeSolver(query).range(instance)
        evaluator = MinMaxRangeEvaluator(query)
        assert evaluator.glb(instance) == expected[0]
        assert evaluator.lub(instance) == expected[1]

    def test_binding_support(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        evaluator = MinMaxRangeEvaluator(query)
        expected = ExhaustiveRangeSolver(query).range(stock_instance, {"x": "James"})
        assert evaluator.glb(stock_instance, {"x": "James"}) == expected[0]
        assert evaluator.lub(stock_instance, {"x": "James"}) == expected[1]
