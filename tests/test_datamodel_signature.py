"""Tests for relation signatures and schemas."""

import pytest

from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import SchemaError


class TestRelationSignature:
    def test_basic_properties(self):
        sig = RelationSignature("Stock", 3, 2, numeric_positions=(3,))
        assert sig.arity == 3
        assert sig.key_size == 2
        assert sig.key_positions == (1, 2)
        assert sig.nonkey_positions == (3,)
        assert sig.is_numeric(3)
        assert not sig.is_numeric(1)

    def test_default_attribute_names(self):
        sig = RelationSignature("R", 2, 1)
        assert sig.attribute_names == ("a1", "a2")

    def test_custom_attribute_names(self):
        sig = RelationSignature("R", 2, 1, attribute_names=("x", "y"))
        assert sig.attribute_names == ("x", "y")

    def test_attribute_name_count_must_match_arity(self):
        with pytest.raises(SchemaError):
            RelationSignature("R", 2, 1, attribute_names=("x",))

    def test_full_key_relation(self):
        sig = RelationSignature("M", 2, 2)
        assert sig.is_full_key
        assert sig.nonkey_positions == ()

    def test_not_full_key(self):
        assert not RelationSignature("R", 2, 1).is_full_key

    def test_invalid_arity(self):
        with pytest.raises(SchemaError):
            RelationSignature("R", 0, 0)

    def test_invalid_key_size_too_large(self):
        with pytest.raises(SchemaError):
            RelationSignature("R", 2, 3)

    def test_invalid_key_size_zero(self):
        with pytest.raises(SchemaError):
            RelationSignature("R", 2, 0)

    def test_invalid_numeric_position(self):
        with pytest.raises(SchemaError):
            RelationSignature("R", 2, 1, numeric_positions=(5,))

    def test_numeric_positions_deduplicated_and_sorted(self):
        sig = RelationSignature("R", 3, 1, numeric_positions=(3, 2, 3))
        assert sig.numeric_positions == (2, 3)

    def test_key_of_projects_prefix(self):
        sig = RelationSignature("R", 3, 2)
        assert sig.key_of(("a", "b", "c")) == ("a", "b")

    def test_key_of_rejects_wrong_arity(self):
        sig = RelationSignature("R", 3, 2)
        with pytest.raises(SchemaError):
            sig.key_of(("a", "b"))


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema([RelationSignature("R", 2, 1)])
        assert "R" in schema
        assert schema.relation("R").arity == 2

    def test_unknown_relation(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.relation("missing")

    def test_reregistering_identical_signature_is_noop(self):
        sig = RelationSignature("R", 2, 1)
        schema = Schema([sig])
        schema.add(RelationSignature("R", 2, 1))
        assert len(schema) == 1

    def test_conflicting_signature_rejected(self):
        schema = Schema([RelationSignature("R", 2, 1)])
        with pytest.raises(SchemaError):
            schema.add(RelationSignature("R", 3, 1))

    def test_iteration_and_names(self):
        schema = Schema([RelationSignature("R", 2, 1), RelationSignature("S", 1, 1)])
        assert schema.relation_names() == ("R", "S")
        assert {sig.name for sig in schema} == {"R", "S"}

    def test_merged_with(self):
        first = Schema([RelationSignature("R", 2, 1)])
        second = Schema([RelationSignature("S", 1, 1)])
        merged = first.merged_with(second)
        assert "R" in merged and "S" in merged
        assert len(first) == 1 and len(second) == 1
