"""Tests for the Datalog-like parser."""

from fractions import Fraction

import pytest

from repro.exceptions import ParseError
from repro.query.parser import parse_aggregation_query, parse_atom, parse_query
from repro.query.terms import Variable


class TestParseAtom:
    def test_variables_and_constants(self, stock_schema):
        atom = parse_atom(stock_schema, "Stock(p, 'Boston', 35)")
        assert atom.relation == "Stock"
        assert atom.terms[1] == "Boston"
        assert atom.terms[2] == 35

    def test_numeric_variable_flag_from_signature(self, stock_schema):
        atom = parse_atom(stock_schema, "Stock(p, t, y)")
        y = [t for t in atom.terms if getattr(t, "name", None) == "y"][0]
        assert y.numeric

    def test_double_quoted_strings(self, stock_schema):
        atom = parse_atom(stock_schema, 'Dealers("Smith", t)')
        assert atom.terms[0] == "Smith"

    def test_wrong_arity_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_atom(stock_schema, "Dealers('Smith')")

    def test_trailing_input_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_atom(stock_schema, "Dealers('Smith', t) extra")

    def test_fraction_and_negative_numbers(self, running_schema):
        atom = parse_atom(running_schema, "S(y, z, 'd', 1/2)")
        assert atom.terms[3] == Fraction(1, 2)
        atom = parse_atom(running_schema, "S(y, z, 'd', -1)")
        assert atom.terms[3] == -1

    def test_decimal_numbers(self, running_schema):
        atom = parse_atom(running_schema, "S(y, z, 'd', 2.5)")
        assert atom.terms[3] == Fraction(5, 2)


class TestParseQuery:
    def test_multiple_atoms_share_variables(self, stock_schema):
        query = parse_query(stock_schema, "Dealers('Smith', t), Stock(p, t, y)")
        assert len(query.atoms) == 2
        assert {v.name for v in query.variables} == {"t", "p", "y"}

    def test_numeric_flag_consistent_across_atoms(self, running_schema):
        # r occurs at a numeric position of S; it must be numeric everywhere.
        query = parse_query(running_schema, "R(x, r), S(y, z, 'd', r)")
        occurrences = {
            term
            for atom in query.atoms
            for term in atom.terms
            if getattr(term, "name", None) == "r"
        }
        assert occurrences == {Variable("r", numeric=True)}

    def test_free_variables_string_form(self, stock_schema):
        query = parse_query(stock_schema, "Dealers(x, t), Stock(p, t, y)", free="x")
        assert [v.name for v in query.free_variables] == ["x"]

    def test_free_variables_sequence_form(self, stock_schema):
        query = parse_query(
            stock_schema, "Dealers(x, t), Stock(p, t, y)", free=["x", "t"]
        )
        assert [v.name for v in query.free_variables] == ["x", "t"]

    def test_unknown_free_variable_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_query(stock_schema, "Dealers(x, t)", free="zzz")

    def test_garbage_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_query(stock_schema, "Dealers(x, t) ???")


class TestParseAggregationQuery:
    def test_closed_sum(self, stock_schema):
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        assert query.aggregate == "SUM"
        assert query.aggregated_term == Variable("y", numeric=True)
        assert query.is_closed()

    def test_group_by_head(self, stock_schema):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        assert [v.name for v in query.free_variables] == ["x"]

    def test_count_with_constant(self, stock_schema):
        query = parse_aggregation_query(stock_schema, "COUNT(1) <- Stock(p, t, y)")
        assert query.aggregate == "COUNT"
        assert query.aggregated_term == 1

    def test_alternative_arrow(self, stock_schema):
        query = parse_aggregation_query(stock_schema, "SUM(y) :- Stock(p, t, y)")
        assert query.aggregate == "SUM"

    def test_missing_arrow_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_aggregation_query(stock_schema, "SUM(y) Stock(p, t, y)")

    def test_unknown_aggregate_rejected(self, stock_schema):
        with pytest.raises(ParseError):
            parse_aggregation_query(stock_schema, "MEDIAN(y) <- Stock(p, t, y)")

    def test_aggregated_variable_must_be_in_body(self, stock_schema):
        with pytest.raises(ParseError):
            parse_aggregation_query(stock_schema, "SUM(zz) <- Stock(p, t, y)")

    def test_count_distinct_alias(self, stock_schema):
        query = parse_aggregation_query(
            stock_schema, "COUNT_DISTINCT(y) <- Stock(p, t, y)"
        )
        assert query.aggregate == "COUNT_DISTINCT"

    def test_roundtrip_str_reparse(self, stock_schema):
        text = "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
        query = parse_aggregation_query(stock_schema, text)
        reparsed = parse_aggregation_query(stock_schema, str(query))
        assert reparsed == query
