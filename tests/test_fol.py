"""Tests for the AGGR[FOL] syntax tree and evaluator (Section 5.2)."""

from fractions import Fraction

import pytest

from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import EvaluationError
from repro.fol.builders import conjunction, disjunction, exists, forall, implies
from repro.fol.evaluation import FormulaEvaluator, evaluate_formula, evaluate_term
from repro.fol.syntax import (
    AggregateTerm,
    And,
    Comparison,
    Exists,
    FalseFormula,
    ForAll,
    Implies,
    Not,
    NumericalConstant,
    NumericalVariable,
    Or,
    RelationAtom,
    TrueFormula,
    formula_size,
)
from repro.query.parser import parse_atom
from repro.query.terms import Variable


@pytest.fixture
def schema():
    return Schema(
        [
            RelationSignature("Stock", 3, 2, numeric_positions=(3,)),
            RelationSignature("Dealers", 2, 1),
        ]
    )


@pytest.fixture
def instance(schema):
    return DatabaseInstance.from_rows(
        schema,
        {
            "Dealers": [("Smith", "Boston"), ("James", "Boston")],
            "Stock": [
                ("Tesla X", "Boston", 35),
                ("Tesla Y", "Boston", 20),
                ("Tesla Y", "Paris", 50),
            ],
        },
    )


class TestSyntax:
    def test_free_variables_of_atom(self, schema):
        atom = parse_atom(schema, "Stock(p, t, y)")
        assert {v.name for v in RelationAtom(atom).free_variables()} == {"p", "t", "y"}

    def test_quantifier_binds_variables(self, schema):
        atom = parse_atom(schema, "Stock(p, t, y)")
        formula = Exists((Variable("p"), Variable("y", True)), RelationAtom(atom))
        assert {v.name for v in formula.free_variables()} == {"t"}

    def test_aggregate_term_free_variables(self, schema):
        atom = parse_atom(schema, "Stock(p, t, y)")
        term = AggregateTerm(
            "SUM",
            (Variable("p"), Variable("y", True)),
            NumericalVariable(Variable("y", True)),
            RelationAtom(atom),
        )
        assert {v.name for v in term.free_variables()} == {"t"}

    def test_invalid_comparison_operator(self):
        with pytest.raises(ValueError):
            Comparison(Variable("x"), "~", Variable("y"))

    def test_formula_size(self, schema):
        atom = RelationAtom(parse_atom(schema, "Dealers(x, t)"))
        formula = Exists((Variable("x"),), And((atom, Not(atom))))
        assert formula_size(formula) == 5

    def test_builders_simplify(self, schema):
        atom = RelationAtom(parse_atom(schema, "Dealers(x, t)"))
        assert conjunction([]) == TrueFormula()
        assert conjunction([atom]) is atom
        assert disjunction([]) == FalseFormula()
        assert exists((), atom) is atom
        assert forall((), atom) is atom
        assert implies(TrueFormula(), atom) is atom
        assert isinstance(implies(FalseFormula(), atom), TrueFormula)

    def test_str_renderings(self, schema):
        atom = RelationAtom(parse_atom(schema, "Dealers(x, t)"))
        assert "Dealers" in str(atom)
        assert "∃" in str(Exists((Variable("x"),), atom))
        assert "∀" in str(ForAll((Variable("x"),), atom))
        assert "¬" in str(Not(atom))


class TestEvaluation:
    def test_atom_membership(self, schema, instance):
        atom = parse_atom(schema, "Dealers('Smith', t)")
        assert evaluate_formula(instance, RelationAtom(atom), {"t": "Boston"})
        assert not evaluate_formula(instance, RelationAtom(atom), {"t": "Paris"})

    def test_unbound_variable_raises(self, schema, instance):
        atom = parse_atom(schema, "Dealers('Smith', t)")
        with pytest.raises(EvaluationError):
            evaluate_formula(instance, RelationAtom(atom))

    def test_exists(self, schema, instance):
        atom = parse_atom(schema, "Dealers(x, t)")
        formula = Exists((Variable("x"), Variable("t")), RelationAtom(atom))
        assert evaluate_formula(instance, formula)

    def test_forall_with_guard(self, schema, instance):
        # Every stocked quantity in Boston is at least 20.
        stock = parse_atom(schema, "Stock(p, 'Boston', y)")
        formula = ForAll(
            (Variable("p"), Variable("y", True)),
            Implies(
                RelationAtom(stock), Comparison(Variable("y", True), ">=", 20)
            ),
        )
        assert evaluate_formula(instance, formula)
        formula_strict = ForAll(
            (Variable("p"), Variable("y", True)),
            Implies(RelationAtom(stock), Comparison(Variable("y", True), ">", 20)),
        )
        assert not evaluate_formula(instance, formula_strict)

    def test_negation_and_disjunction(self, schema, instance):
        missing = parse_atom(schema, "Dealers('Nobody', 'Boston')")
        present = parse_atom(schema, "Dealers('Smith', 'Boston')")
        assert evaluate_formula(instance, Not(RelationAtom(missing)))
        assert evaluate_formula(
            instance, Or((RelationAtom(missing), RelationAtom(present)))
        )

    def test_comparison_on_constants(self, schema, instance):
        assert evaluate_formula(instance, Comparison(3, "<", 5))
        assert evaluate_formula(instance, Comparison("a", "=", "a"))
        assert evaluate_formula(instance, Comparison("a", "!=", "b"))

    def test_sum_aggregate_term(self, schema, instance):
        stock = parse_atom(schema, "Stock(p, t, y)")
        term = AggregateTerm(
            "SUM",
            (Variable("p"), Variable("y", True)),
            NumericalVariable(Variable("y", True)),
            RelationAtom(stock),
        )
        assert evaluate_term(instance, term, {"t": "Boston"}) == Fraction(55)
        assert evaluate_term(instance, term, {"t": "Paris"}) == Fraction(50)

    def test_count_aggregate_term(self, schema, instance):
        stock = parse_atom(schema, "Stock(p, t, y)")
        term = AggregateTerm(
            "COUNT",
            (Variable("p"), Variable("t"), Variable("y", True)),
            NumericalConstant(Fraction(1)),
            RelationAtom(stock),
        )
        assert evaluate_term(instance, term) == Fraction(3)

    def test_empty_aggregate_returns_convention(self, schema, instance):
        stock = parse_atom(schema, "Stock(p, 'Nowhere', y)")
        term = AggregateTerm(
            "SUM",
            (Variable("p"), Variable("y", True)),
            NumericalVariable(Variable("y", True)),
            RelationAtom(stock),
        )
        assert evaluate_term(instance, term) == Fraction(0)
        min_term = AggregateTerm(
            "MIN",
            (Variable("p"), Variable("y", True)),
            NumericalVariable(Variable("y", True)),
            RelationAtom(stock),
        )
        assert evaluate_term(instance, min_term) is None

    def test_equality_forced_value_outside_active_domain(self, schema, instance):
        # ∃v (v = SUM(...) ∧ v >= 55) — the value 55 is not a database constant,
        # so the evaluator must propagate it through the equality.
        stock = parse_atom(schema, "Stock(p, 'Boston', y)")
        total = AggregateTerm(
            "SUM",
            (Variable("p"), Variable("y", True)),
            NumericalVariable(Variable("y", True)),
            RelationAtom(stock),
        )
        v = Variable("v", numeric=True)
        formula = Exists(
            (v,),
            And((Comparison(v, "=", total), Comparison(v, ">=", 55))),
        )
        assert evaluate_formula(instance, formula)

    def test_nested_example_5_3_style_query(self, schema, instance):
        # Total quantity per town, then the maximum over towns (Example 5.3).
        stock = parse_atom(schema, "Stock(p, t, y)")
        per_town = AggregateTerm(
            "SUM",
            (Variable("p"), Variable("y", True)),
            NumericalVariable(Variable("y", True)),
            RelationAtom(stock),
        )
        town_totals = AggregateTerm(
            "MAX",
            (Variable("t"),),
            per_town,
            Exists((Variable("p"), Variable("y", True)), RelationAtom(stock)),
        )
        assert evaluate_term(instance, town_totals) == Fraction(55)

    def test_satisfying_assignments(self, schema, instance):
        dealers = parse_atom(schema, "Dealers(x, 'Boston')")
        evaluator = FormulaEvaluator(instance)
        assignments = evaluator.satisfying_assignments(
            [Variable("x")], RelationAtom(dealers)
        )
        assert {a["x"] for a in assignments} == {"Smith", "James"}
