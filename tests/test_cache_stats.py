"""Unified cache telemetry: the registry, the report schema, and the wire.

Unit tests cover :mod:`repro.obs.caches` in isolation — the monotone
eviction-age histogram, the sampled recursive sizeof, the common report
schema, and the provider registry (last-wins names, error isolation, the
``repro_cache_*`` Prometheus mirror).  The integration tests boot a live
server with several registered tenants, interleave mutations with
answers, and assert that ``GET /debug/caches`` reports every cache in
the common schema with per-*instance* (not per-lineage-token)
attribution.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine.sharding import clear_summary_cache
from repro.obs import render_prometheus
from repro.obs.caches import (
    CACHE_REGISTRY,
    DEFAULT_AGE_BOUNDS,
    CacheStatsRegistry,
    EvictionAges,
    approx_sizeof,
    cache_report,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import set_tracing
from repro.datamodel.instance import DatabaseInstance
from repro.serve.app import ConsistentAnswerServer, ServeConfig
from repro.serve.client import ServeClient
from repro.workloads.scenarios import fig1_stock_instance, fig1_stock_schema

STOCK_SUM = "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"


def _tenant_instance(seed: int) -> DatabaseInstance:
    """A per-tenant variant of the Fig. 1 instance.

    Content-identical instances deliberately share shard plans and summary
    entries (content-addressed dedup), which would collapse per-tenant
    attribution — so each tenant gets one distinguishing fact.
    """
    return DatabaseInstance.from_rows(
        fig1_stock_schema(),
        {
            "Dealers": [
                ("Smith", "Boston"),
                ("Smith", "New York"),
                ("James", "Boston"),
            ],
            "Stock": [
                ("Tesla X", "Boston", 35),
                ("Tesla X", "Boston", 40),
                ("Tesla Y", "New York", 95),
                ("Tesla Z", "Boston", 10 + seed),
            ],
        },
    )


@pytest.fixture(autouse=True)
def _tracing_on():
    set_tracing(True)
    yield
    set_tracing(True)


def serve_scenario(coro_fn, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("workers", 2)

    async def main():
        server = ConsistentAnswerServer(ServeConfig(**config_kwargs))
        await server.start()
        try:
            host, port = server.address
            async with ServeClient(host, port) as client:
                return await coro_fn(server, client)
        finally:
            await server.stop()

    return asyncio.run(main())


# -- eviction-age histogram --------------------------------------------------------------


class TestEvictionAges:
    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            EvictionAges(())
        with pytest.raises(ValueError):
            EvictionAges((1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            EvictionAges((2.0, 1.0))

    def test_observations_land_in_monotone_buckets(self):
        ages = EvictionAges((1.0, 5.0, 60.0))
        for value in (0.2, 0.9, 3.0, 59.0, 1e6):
            ages.observe(value)
        snap = ages.snapshot()
        assert snap["bounds"] == [1.0, 5.0, 60.0]
        # one more bucket than bounds: the implicit +Inf overflow bucket
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum_seconds"] == pytest.approx(0.2 + 0.9 + 3.0 + 59.0 + 1e6)

    def test_negative_ages_clamp_to_zero(self):
        ages = EvictionAges((1.0,))
        ages.observe(-5.0)
        snap = ages.snapshot()
        assert snap["counts"] == [1, 0]
        assert snap["sum_seconds"] == 0.0

    def test_reset_zeroes_everything(self):
        ages = EvictionAges((1.0,))
        ages.observe(0.5)
        ages.reset()
        snap = ages.snapshot()
        assert snap["count"] == 0 and snap["counts"] == [0, 0]

    def test_default_bounds_are_strictly_increasing(self):
        assert all(
            a < b for a, b in zip(DEFAULT_AGE_BOUNDS, DEFAULT_AGE_BOUNDS[1:])
        )


# -- approximate sizing ------------------------------------------------------------------


class _Slotted:
    __slots__ = ("payload",)

    def __init__(self, payload):
        self.payload = payload


class TestApproxSizeof:
    def test_empty_cache_is_unknown_not_zero(self):
        assert approx_sizeof([]) is None

    def test_bigger_values_measure_bigger(self):
        small = approx_sizeof(["x"] * 4)
        large = approx_sizeof(["x" * 4096] * 4)
        assert small is not None and large is not None
        assert large > small

    def test_extrapolates_sample_to_population(self):
        one = approx_sizeof(["x" * 100], total=1)
        ten = approx_sizeof(["x" * 100], total=10)
        assert one is not None and ten is not None
        assert ten == 10 * one

    def test_handles_cycles_and_slots(self):
        loop = []
        loop.append(loop)  # self-reference must not recurse forever
        assert approx_sizeof([loop]) is not None
        nested = approx_sizeof([_Slotted({"k": "v" * 512})])
        bare = approx_sizeof([_Slotted(None)])
        assert nested is not None and bare is not None
        assert nested > bare


# -- the report schema -------------------------------------------------------------------


class TestCacheReport:
    def test_schema_and_hit_rate(self):
        report = cache_report(
            "c",
            size=3,
            capacity=8,
            hits=9,
            misses=1,
            evictions=2,
            by_instance={"b": {"hits": 4}, "a": {"hits": 5, "evictions": 2}},
            approx_bytes=1234,
            extra={"note": 1},
        )
        assert report["name"] == "c"
        assert report["hit_rate"] == 0.9
        assert list(report["by_instance"]) == ["a", "b"]  # sorted
        assert report["approx_bytes"] == 1234
        assert report["extra"] == {"note": 1}

    def test_no_lookups_means_zero_hit_rate(self):
        report = cache_report("c", size=0)
        assert report["hit_rate"] == 0.0
        assert "approx_bytes" not in report


# -- the registry ------------------------------------------------------------------------


class TestCacheStatsRegistry:
    def test_last_registration_wins(self):
        registry = CacheStatsRegistry()
        registry.register("c", lambda: cache_report("c", size=1))
        registry.register("c", lambda: cache_report("c", size=2))
        (report,) = registry.snapshot()
        assert report["size"] == 2
        registry.unregister("c")
        assert registry.snapshot() == []

    def test_bad_provider_is_isolated_not_fatal(self):
        registry = CacheStatsRegistry()
        registry.register("bad", lambda: 1 / 0)
        registry.register("gone", lambda: None)  # dead weakref convention
        registry.register("good", lambda: cache_report("good", size=1))
        reports = registry.snapshot()
        by_name = {r["name"]: r for r in reports}
        assert set(by_name) == {"bad", "good"}  # None-providers are skipped
        assert "ZeroDivisionError" in by_name["bad"]["error"]
        assert by_name["good"]["size"] == 1

    def test_instance_label_translation(self):
        registry = CacheStatsRegistry()
        registry.label_instance("lineage-token-1", "tenant_a")
        assert registry.instance_label("lineage-token-1") == "tenant_a"
        # unlabelled tokens pass through raw
        assert registry.instance_label("unknown") == "unknown"

    def test_label_table_is_bounded(self):
        registry = CacheStatsRegistry()
        for i in range(registry.MAX_LABELS + 10):
            registry.label_instance(f"token-{i}", f"name-{i}")
        assert registry.instance_label("token-0") == "token-0"  # evicted
        last = registry.MAX_LABELS + 9
        assert registry.instance_label(f"token-{last}") == f"name-{last}"

    def test_publish_mirrors_reports_into_prometheus_families(self):
        registry = CacheStatsRegistry()
        ages = EvictionAges((1.0,))
        ages.observe(0.5)
        registry.register(
            "c",
            lambda: cache_report(
                "c",
                size=2,
                capacity=4,
                hits=7,
                misses=3,
                evictions=1,
                by_instance={"tenant_a": {"hits": 7, "evictions": 1}},
                eviction_ages=ages.snapshot(),
                approx_bytes=999,
            ),
        )
        metrics = MetricsRegistry()
        registry.publish(metrics)
        page = render_prometheus({}, metrics)
        assert 'repro_cache_size{cache="c"} 2' in page
        assert 'repro_cache_capacity{cache="c"} 4' in page
        assert 'repro_cache_approx_bytes{cache="c"} 999' in page
        assert 'repro_cache_hits_total{cache="c"} 7' in page
        assert 'repro_cache_misses_total{cache="c"} 3' in page
        assert 'repro_cache_evictions_total{cache="c"} 1' in page
        assert (
            'repro_cache_instance_hits_total{cache="c",instance="tenant_a"} 7'
            in page
        )
        assert (
            'repro_cache_instance_evictions_total{cache="c",instance="tenant_a"} 1'
            in page
        )
        assert 'repro_cache_eviction_age_seconds_count{cache="c"} 1' in page

    def test_published_counters_are_monotonic(self):
        registry = CacheStatsRegistry()
        counters = {"hits": 10}
        registry.register(
            "c", lambda: cache_report("c", size=0, hits=counters["hits"])
        )
        metrics = MetricsRegistry()
        registry.publish(metrics)
        # A cache reset (clear) must not drag the cumulative counter down.
        counters["hits"] = 3
        registry.publish(metrics)
        page = render_prometheus({}, metrics)
        assert 'repro_cache_hits_total{cache="c"} 10' in page


# -- live-server integration -------------------------------------------------------------


def _assert_common_schema(report):
    assert report["size"] >= 0
    assert report["hits"] >= 0 and report["misses"] >= 0
    ages = report["eviction_ages"]
    bounds = ages["bounds"]
    assert all(a < b for a, b in zip(bounds, bounds[1:]))
    if ages["counts"]:
        assert len(ages["counts"]) == len(bounds) + 1
        assert sum(ages["counts"]) == ages["count"]


class TestServerCacheTelemetry:
    def test_multi_tenant_attribution_in_debug_caches(self):
        tenants = ("tenant_a", "tenant_b", "tenant_c")

        async def scenario(server, client):
            for seed, name in enumerate(tenants):
                await client.register_instance(
                    name, _tenant_instance(seed), shards=2
                )
            # Interleaved workload: answers on every tenant, a mutation on
            # tenant_b between rounds (its summaries must be invalidated
            # and recomputed, attributed to tenant_b — not to a token).
            for round_no in range(3):
                for name in tenants:
                    await client.answer(name, STOCK_SUM)
                if round_no == 1:
                    await client.mutate_instance(
                        "tenant_b", [("add", "Stock", ("p9", "t1", round_no))]
                    )
            status, body = await client.request("GET", "/debug/caches")
            assert status == 200
            return body["caches"]

        clear_summary_cache()
        reports = serve_scenario(scenario, summary_cache_size=4)
        by_name = {r["name"]: r for r in reports if "error" not in r}
        assert {"cost_table", "plan_cache", "sql_memo", "summary_cache"} <= set(
            by_name
        )
        for report in by_name.values():
            _assert_common_schema(report)

        cost = by_name["cost_table"]
        assert set(tenants) <= set(cost["by_instance"])
        for name in tenants:
            row = cost["by_instance"][name]
            # first answer per tenant is a cold key (miss), the rest hits
            assert row["misses"] >= 1
            assert row["hits"] >= 1

        summary = by_name["summary_cache"]
        assert summary["capacity"] == 4
        # 3 tenants x 2 shards > 4 slots: the interleaving must evict, and
        # every eviction contributes an age observation.
        assert summary["evictions"] > 0
        assert summary["eviction_ages"]["count"] == summary["evictions"]
        # lineage tokens were translated to registry names
        assert set(tenants) <= set(summary["by_instance"])
        mutated = summary["by_instance"]["tenant_b"]
        assert mutated.get("invalidations", 0) > 0
        assert summary["extra"]["invalidations"] > 0

        plan = by_name["plan_cache"]
        assert plan["capacity"] == 256
        assert plan["hits"] > 0  # repeated STOCK_SUM plans come from cache

    def test_debug_caches_includes_worker_spool_with_processes(self):
        async def scenario(server, client):
            await client.register_instance(
                "sharded", fig1_stock_instance(), shards=2
            )
            for _ in range(3):
                await client.answer("sharded", STOCK_SUM)
            status, body = await client.request("GET", "/debug/caches")
            assert status == 200
            return body["caches"]

        clear_summary_cache()
        reports = serve_scenario(scenario, worker_processes=2)
        by_name = {r["name"]: r for r in reports if "error" not in r}
        assert "worker_spool" in by_name
        spool = by_name["worker_spool"]
        _assert_common_schema(spool)
        assert spool["extra"]["workers"] == 2
        # the instance crossed the pipe at least once and stayed resident
        assert spool["misses"] >= 1
        assert spool["size"] >= 1
        # residency is attributed by spool key (the registry name for named
        # refs, instance-N for anonymous ones) — some row must show traffic
        assert any(
            row.get("hits", 0) + row.get("misses", 0) > 0
            for row in spool["by_instance"].values()
        )

    def test_prometheus_page_carries_cache_families(self):
        async def scenario(server, client):
            await client.answer("stock", STOCK_SUM)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"GET /metrics?format=prometheus HTTP/1.1\r\n"
                b"Host: x\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw.decode("utf-8", "replace")

        clear_summary_cache()
        page = serve_scenario(scenario)
        assert 'repro_cache_size{cache="plan_cache"}' in page
        assert 'repro_cache_size{cache="cost_table"}' in page
        assert 'repro_cache_size{cache="summary_cache"}' in page
        assert "repro_cache_hits_total" in page
        assert "repro_admission_total" in page
