"""Tests for the synthetic workload generators and scenario databases."""


from repro.datamodel.instance import DatabaseInstance
from repro.workloads.generators import (
    AdversarialSpec,
    InconsistentDatabaseGenerator,
    WorkloadSpec,
    adversarial_catalogue,
    generate_stock_workload,
    near_total_inconsistency_instance,
    power_law_block_instance,
    wide_domain_distinct_instance,
)
from repro.workloads.queries import query_catalogue, stock_groupby_query, stock_sum_query
from repro.workloads.scenarios import (
    fig1_stock_instance,
    fig3_running_example_instance,
    theorem79_gadget,
)


class TestScenarios:
    def test_fig1_instance_shape(self):
        instance = fig1_stock_instance()
        assert len(instance) == 8
        assert instance.repair_count() == 8
        assert len(instance.inconsistent_blocks()) == 3

    def test_fig3_instance_shape(self):
        instance = fig3_running_example_instance()
        assert len(instance) == 13
        assert len(instance.relation("R")) == 5
        assert len(instance.relation("S")) == 8

    def test_theorem79_gadget_contains_guard_and_negative_edges(self):
        schema, instance = theorem79_gadget([("v1", "v2")])
        t_values = [fact.values[2] for fact in instance.relation("T")]
        assert -1 in t_values
        assert 0 in t_values  # the ⊥-guard row
        assert any(fact.values == ("_bot", "c1") for fact in instance.relation("S1"))


class TestGenerators:
    def test_deterministic_for_seed(self):
        spec = WorkloadSpec(stock_facts=30, seed=5)
        first = InconsistentDatabaseGenerator(spec).generate()
        second = InconsistentDatabaseGenerator(spec).generate()
        assert first == second

    def test_different_seeds_differ(self):
        first = InconsistentDatabaseGenerator(WorkloadSpec(stock_facts=30, seed=1)).generate()
        second = InconsistentDatabaseGenerator(WorkloadSpec(stock_facts=30, seed=2)).generate()
        assert first != second

    def test_zero_inconsistency_gives_consistent_instance(self):
        spec = WorkloadSpec(stock_facts=40, inconsistency=0.0, seed=3)
        instance = InconsistentDatabaseGenerator(spec).generate()
        assert instance.is_consistent()

    def test_inconsistency_increases_block_conflicts(self):
        low = InconsistentDatabaseGenerator(
            WorkloadSpec(stock_facts=60, inconsistency=0.1, seed=4)
        ).generate()
        high = InconsistentDatabaseGenerator(
            WorkloadSpec(stock_facts=60, inconsistency=0.6, seed=4)
        ).generate()
        assert len(high.inconsistent_blocks()) > len(low.inconsistent_blocks())

    def test_generated_instance_matches_schema(self):
        generator = InconsistentDatabaseGenerator(WorkloadSpec(stock_facts=20))
        instance = generator.generate()
        assert isinstance(instance, DatabaseInstance)
        assert set(instance.relation_names()) <= {"Dealers", "Stock"}

    def test_generate_stock_workload_sizes(self):
        family = generate_stock_workload([10, 20], inconsistency=0.2, seed=0)
        assert set(family) == {10, 20}
        assert len(family[20]) >= len(family[10])

    def test_spec_scaling(self):
        spec = WorkloadSpec(stock_facts=100).scaled(0.5)
        assert spec.stock_facts == 50


class TestAdversarialGenerators:
    SPEC = AdversarialSpec(blocks=40, seed=7)

    def test_deterministic_for_seed(self):
        for generate in (
            power_law_block_instance,
            near_total_inconsistency_instance,
            wide_domain_distinct_instance,
        ):
            assert generate(self.SPEC) == generate(self.SPEC), generate.__name__

    def test_seed_override_changes_the_instance(self):
        assert power_law_block_instance(self.SPEC) != power_law_block_instance(
            self.SPEC, seed=8
        )

    def test_scenarios_differ_from_each_other(self):
        catalogue = adversarial_catalogue(self.SPEC)
        instances = list(catalogue.values())
        assert len({id(i) for i in instances}) == 3
        assert instances[0] != instances[1] != instances[2]

    def test_catalogue_names(self):
        assert set(adversarial_catalogue(self.SPEC)) == {
            "power_law_blocks",
            "near_total_inconsistency",
            "wide_value_domain",
        }

    def test_block_counts_and_schema(self):
        for instance in adversarial_catalogue(self.SPEC).values():
            assert len(instance.blocks("Stock")) == self.SPEC.blocks
            assert set(instance.relation_names()) == {"Dealers", "Stock"}

    def test_power_law_respects_max_block_size(self):
        capped = AdversarialSpec(blocks=60, max_block_size=3, seed=1)
        instance = power_law_block_instance(capped)
        assert max(len(block) for block in instance.blocks("Stock")) <= 3

    def test_near_total_is_almost_fully_inconsistent(self):
        instance = near_total_inconsistency_instance(self.SPEC)
        blocks = instance.blocks("Stock")
        conflicted = sum(1 for block in blocks if len(block) > 1)
        assert conflicted / len(blocks) >= 0.9

    def test_wide_domain_values_are_mostly_distinct(self):
        instance = wide_domain_distinct_instance(self.SPEC)
        values = [fact.values[2] for fact in instance.relation("Stock")]
        assert len(set(values)) >= 0.95 * len(values)


class TestQueryCatalogue:
    def test_catalogue_contains_expected_queries(self):
        catalogue = query_catalogue()
        assert {"stock_sum", "stock_count", "running_example_sum"} <= set(catalogue)

    def test_workload_queries_parse_against_generated_schema(self):
        generator = InconsistentDatabaseGenerator(WorkloadSpec(stock_facts=15, seed=2))
        instance = generator.generate()
        from repro.core.range_answers import RangeConsistentAnswers

        query = stock_sum_query("dealer0")
        answer = RangeConsistentAnswers(query).glb(instance)
        assert answer is not None

    def test_groupby_query_free_variable(self):
        assert [v.name for v in stock_groupby_query().free_variables] == ["x"]
