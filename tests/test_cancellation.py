"""Cooperative cancellation of abandoned engine jobs.

The serving layer's 504 used to abandon jobs that kept computing to
completion; these tests pin the fix: a cancel token with the request
deadline rides into the job (and, as a bare deadline, into worker
processes), and engine loops stop at batch-item and shard boundaries.
"""

import asyncio
import threading
import time

import pytest

from repro.engine import (
    ConsistentAnswerEngine,
    WorkerPool,
    execute_batch,
    execute_sharded,
)
from repro.engine.batch import _run_chunk
from repro.engine.cancellation import (
    CancelToken,
    JobCancelledError,
    active_deadline,
    active_token,
    check_cancelled,
    deadline_token,
    token_scope,
)
from repro.obs import REGISTRY
from repro.query.parser import parse_aggregation_query
from repro.serve import ConsistentAnswerServer, ServeConfig, ServeClient
from repro.workloads.scenarios import fig1_stock_instance, fig1_stock_schema

STOCK_SUM = "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"


def serve_scenario(coro_fn, **config_kwargs):
    """Boot a server on an ephemeral port, run ``coro_fn(server, client)``."""
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("workers", 2)

    async def main():
        server = ConsistentAnswerServer(ServeConfig(**config_kwargs))
        await server.start()
        try:
            host, port = server.address
            async with ServeClient(host, port) as client:
                return await coro_fn(server, client)
        finally:
            await server.stop()

    return asyncio.run(main())


# -- the token ---------------------------------------------------------------------------


class TestCancelToken:
    def test_fresh_token_is_live(self):
        assert CancelToken().cancelled is False
        assert CancelToken(deadline=time.monotonic() + 60).cancelled is False

    def test_cancel_is_sticky_and_idempotent(self):
        token = CancelToken()
        token.cancel()
        token.cancel()
        assert token.cancelled is True

    def test_expired_deadline_cancels_without_a_flag(self):
        assert CancelToken(deadline=time.monotonic() - 0.001).cancelled is True

    def test_deadline_token_round_trip(self):
        assert deadline_token(None) is None
        rebuilt = deadline_token(time.monotonic() + 60)
        assert rebuilt is not None and rebuilt.cancelled is False

    def test_token_scope_installs_and_restores(self):
        assert active_token() is None
        token = CancelToken()
        with token_scope(token):
            assert active_token() is token
            inner = CancelToken(deadline=time.monotonic() + 5)
            with token_scope(inner):
                assert active_token() is inner
                assert active_deadline() == inner.deadline
            assert active_token() is token
        assert active_token() is None

    def test_none_scope_is_a_no_op(self):
        token = CancelToken()
        with token_scope(token):
            with token_scope(None):
                assert active_token() is token

    def test_check_cancelled_outside_any_scope_is_a_no_op(self):
        check_cancelled()

    def test_check_cancelled_raises_for_abandoned_job(self):
        token = CancelToken()
        with token_scope(token):
            check_cancelled()
            token.cancel()
            with pytest.raises(JobCancelledError):
                check_cancelled()


# -- engine cancellation points ----------------------------------------------------------


class TestEngineCancellationPoints:
    def _items(self, count):
        query = parse_aggregation_query(fig1_stock_schema(), STOCK_SUM)
        instance = fig1_stock_instance()
        return [(query, instance) for _ in range(count)]

    def test_serial_batch_stops_at_the_next_item_boundary(self):
        engine = ConsistentAnswerEngine()
        token = CancelToken()
        calls = []
        original = engine.answer

        def counting_answer(*args, **kwargs):
            calls.append(1)
            if len(calls) == 2:
                token.cancel()
            return original(*args, **kwargs)

        engine.answer = counting_answer
        with token_scope(token):
            with pytest.raises(JobCancelledError):
                execute_batch(engine, self._items(6), max_workers=1)
        # Items 1 and 2 ran; the cancel flagged during item 2 stopped the
        # batch before item 3 started.
        assert len(calls) == 2

    def test_sharded_serial_stops_between_shards(self):
        engine = ConsistentAnswerEngine()
        query = parse_aggregation_query(fig1_stock_schema(), STOCK_SUM)
        token = CancelToken()
        token.cancel()
        with token_scope(token):
            with pytest.raises(JobCancelledError):
                execute_sharded(engine, query, fig1_stock_instance(), 3, max_workers=1)

    def test_fork_chunk_payload_deadline_self_aborts(self):
        # _run_chunk is the fork-pool entry point; calling it in-process
        # exercises exactly what a worker runs after the fork.
        query = parse_aggregation_query(fig1_stock_schema(), STOCK_SUM)
        chunk = [(0, query, fig1_stock_instance())]
        with pytest.raises(JobCancelledError):
            _run_chunk({}, chunk, deadline=time.monotonic() - 1.0)

    def test_fork_chunk_without_deadline_is_unaffected(self):
        query = parse_aggregation_query(fig1_stock_schema(), STOCK_SUM)
        chunk = [(0, query, fig1_stock_instance())]
        results = _run_chunk({}, chunk, deadline=None)
        assert len(results) == 1

    def test_live_token_does_not_disturb_execution(self):
        engine = ConsistentAnswerEngine()
        baseline = execute_batch(engine, self._items(2), max_workers=1)
        with token_scope(CancelToken(deadline=time.monotonic() + 60)):
            governed = execute_batch(engine, self._items(2), max_workers=1)
        assert [r.answer for r in governed] == [r.answer for r in baseline]


class TestWorkerPoolCancellation:
    def test_expired_deadline_rides_the_job_into_the_worker(self):
        query = parse_aggregation_query(fig1_stock_schema(), STOCK_SUM)
        instance = fig1_stock_instance()
        pool = WorkerPool(workers=1)
        pool.start()
        try:
            # Warm proof the pool works, then submit under a dead token:
            # the deadline crosses the process boundary in the job tuple
            # (the parent's cancel flag cannot), and the worker refuses.
            live = pool.answer(query, instance)
            with token_scope(CancelToken(deadline=time.monotonic() - 1.0)):
                with pytest.raises(JobCancelledError):
                    pool.answer(query, instance)
            # The worker survives a cancelled job and keeps serving.
            assert pool.answer(query, instance) == live
        finally:
            pool.shutdown()

    def test_bookkeeping_jobs_ignore_the_request_deadline(self):
        query = parse_aggregation_query(fig1_stock_schema(), STOCK_SUM)
        instance = fig1_stock_instance()
        pool = WorkerPool(workers=1)
        pool.start()
        try:
            pool.answer(query, instance, name="stock")
            with token_scope(CancelToken(deadline=time.monotonic() - 1.0)):
                # An invalidation issued while the request's deadline has
                # passed must still run — a skipped one would leave the
                # worker serving a stale resident instance forever.
                pool.invalidate("stock")
            # The pool keeps answering after the in-deadline invalidation.
            pool.answer(query, instance, name="stock")
        finally:
            pool.shutdown()


# -- the serving layer -------------------------------------------------------------------


class TestServeAbandonedJobs:
    def test_abandoned_job_is_cancelled_cooperatively(self):
        async def scenario(server, client):
            finished = threading.Event()
            outcome = {}

            def slow_answer(*args, **kwargs):
                try:
                    for _ in range(150):  # 3s if the cancel never lands
                        time.sleep(0.02)
                        check_cancelled()
                except JobCancelledError:
                    outcome["cancelled"] = True
                    finished.set()
                    raise
                outcome["cancelled"] = False
                finished.set()

            server.engine.answer = slow_answer
            before = REGISTRY.counter("repro_jobs_abandoned_total").value()
            started = time.monotonic()
            status, body = await client.request(
                "POST",
                "/answer",
                {"instance": "stock", "query": STOCK_SUM, "timeout_s": 0.05},
            )
            await asyncio.get_running_loop().run_in_executor(
                None, finished.wait, 10.0
            )
            elapsed = time.monotonic() - started
            after = REGISTRY.counter("repro_jobs_abandoned_total").value()
            return status, body, outcome, elapsed, after - before

        status, body, outcome, elapsed, delta = serve_scenario(scenario)
        assert status == 504
        assert body["error"]["type"] == "Timeout"
        assert outcome == {"cancelled": True}
        # The job stopped at its next check instead of running the full 3s.
        assert elapsed < 2.0
        assert delta == 1

    def test_completed_jobs_do_not_count_as_abandoned(self):
        async def scenario(server, client):
            before = REGISTRY.counter("repro_jobs_abandoned_total").value()
            status, _body = await client.request(
                "POST", "/answer", {"instance": "stock", "query": STOCK_SUM}
            )
            after = REGISTRY.counter("repro_jobs_abandoned_total").value()
            return status, after - before

        status, delta = serve_scenario(scenario)
        assert status == 200
        assert delta == 0

    def test_deadline_expiry_inside_the_job_is_still_a_504(self):
        # The job's own token can expire a beat before the event-loop
        # timer; the surfaced JobCancelledError must read as a timeout,
        # not an internal error.
        async def scenario(server, client):
            def expiring_answer(*args, **kwargs):
                time.sleep(0.1)
                check_cancelled()
                raise AssertionError("deadline should have expired")

            server.engine.answer = expiring_answer
            return await client.request(
                "POST",
                "/answer",
                {"instance": "stock", "query": STOCK_SUM, "timeout_s": 0.05},
            )

        status, body = serve_scenario(scenario)
        assert status == 504
        assert body["error"]["type"] == "Timeout"
