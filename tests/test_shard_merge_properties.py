"""Property-based tests for the shard merge operators.

The sharded executor's correctness reduces to the merge being a commutative
monoid on per-shard summaries (``merge(summary(A), summary(B)) ==
summary(A ∪ B)``), so these tests pin the algebra down directly:
associativity, commutativity, identity-shard neutrality and ⊥ propagation,
under random summaries, random aggregates and random shard orderings.
All randomness is seeded through the session ``repro_seed`` fixture.
"""

from __future__ import annotations

import pickle
import random
from fractions import Fraction
from functools import reduce

import pytest

from repro.core.evaluator import BOTTOM
from repro.engine.sharding import (
    SHARD_ANSWER_IDENTITY,
    SHARD_IDENTITY,
    SHARDABLE_AGGREGATES,
    SUMMARY_AGGREGATES,
    AvgState,
    CountDistinctState,
    DirectionSummary,
    ProductState,
    ShardAnswer,
    SumDistinctState,
    combine_values,
    finalize_answer,
    merge_direction,
    merge_group_answers,
    merge_shard_answers,
)
from repro.exceptions import BackendError
from repro.workloads.generators import derive_seed

DIRECTIONS = ("glb", "lub")
TRIALS = 200


def _random_value(rng: random.Random, aggregate: str, direction: str):
    """A random non-empty per-shard value of the right shape for ``aggregate``.

    Scalar aggregates carry a :class:`Fraction`; summary aggregates carry a
    canonically constructed :class:`SummaryState` (the constructors are the
    single source of canonical form, so algebra tests compare equal states
    exactly as the executor does).  Negative values are included on purpose:
    they exercise PRODUCT's sign handling and SUM(DISTINCT)'s pruning guard.
    """
    if aggregate == "AVG":
        points = [
            (
                Fraction(rng.randint(1, 6)),
                Fraction(rng.randint(-30, 30), rng.randint(1, 4)),
            )
            for _ in range(rng.randint(1, 5))
        ]
        return AvgState.of_points(points, direction)
    if aggregate == "PRODUCT":
        a = Fraction(rng.randint(-12, 12), rng.randint(1, 4))
        b = Fraction(rng.randint(-12, 12), rng.randint(1, 4))
        return ProductState(min(a, b), max(a, b))
    if aggregate in ("COUNT_DISTINCT", "SUM_DISTINCT"):
        numeric = aggregate == "SUM_DISTINCT"

        def element():
            if numeric:
                return Fraction(rng.randint(-6, 8))
            return rng.choice(("a", "b", "c", Fraction(1), Fraction(2)))

        family = {
            frozenset(element() for _ in range(rng.randint(1, 4)))
            for _ in range(rng.randint(1, 4))
        }
        cls = CountDistinctState if aggregate == "COUNT_DISTINCT" else SumDistinctState
        return cls.of_families(family, direction)
    return Fraction(rng.randint(-30, 30), rng.randint(1, 6))


def _random_summary(
    rng: random.Random, aggregate: str, direction: str
) -> DirectionSummary:
    """A random per-shard summary, biased toward the interesting edge states.

    Includes the unreachable ``certain=True, value=None`` state on purpose:
    the algebra is total, and keeping it lawful means a buggy summariser
    can degrade parity but never the merge's algebraic invariants.
    """
    certain = rng.random() < 0.5
    if rng.random() < 0.25:
        value = None
    else:
        value = _random_value(rng, aggregate, direction)
    return DirectionSummary(certain=certain, value=value)


def _random_answer(rng: random.Random, aggregate: str) -> ShardAnswer:
    return ShardAnswer(
        glb=_random_summary(rng, aggregate, "glb"),
        lub=_random_summary(rng, aggregate, "lub"),
    )


@pytest.fixture
def rng(repro_seed, request):
    return random.Random(derive_seed(repro_seed, request.node.nodeid))


class TestMergeAlgebra:
    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_associative(self, aggregate, direction, rng):
        for _ in range(TRIALS):
            a, b, c = (_random_summary(rng, aggregate, direction) for _ in range(3))
            left = merge_direction(
                aggregate, direction, a, merge_direction(aggregate, direction, b, c)
            )
            right = merge_direction(
                aggregate, direction, merge_direction(aggregate, direction, a, b), c
            )
            assert left == right, (a, b, c)

    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_commutative(self, aggregate, direction, rng):
        for _ in range(TRIALS):
            a = _random_summary(rng, aggregate, direction)
            b = _random_summary(rng, aggregate, direction)
            assert merge_direction(aggregate, direction, a, b) == merge_direction(
                aggregate, direction, b, a
            ), (a, b)

    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_identity_shard_is_neutral(self, aggregate, direction, rng):
        for _ in range(TRIALS):
            a = _random_summary(rng, aggregate, direction)
            assert merge_direction(aggregate, direction, a, SHARD_IDENTITY) == a
            assert merge_direction(aggregate, direction, SHARD_IDENTITY, a) == a

    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    def test_random_shard_orderings_agree(self, aggregate, rng):
        """Fold order never matters: any shuffle of the shard list merges to
        the same summary (this is what lets the executor merge results in
        completion order rather than submission order)."""
        def merge(x, y):
            return merge_shard_answers(aggregate, x, y)

        for _ in range(50):
            answers = [_random_answer(rng, aggregate) for _ in range(rng.randint(2, 6))]
            baseline = reduce(merge, answers, SHARD_ANSWER_IDENTITY)
            for _ in range(4):
                shuffled = answers[:]
                rng.shuffle(shuffled)
                assert reduce(merge, shuffled, SHARD_ANSWER_IDENTITY) == baseline


class TestBottomPropagation:
    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    def test_all_uncertain_shards_finalize_to_bottom(self, aggregate, rng):
        """No locally certain shard anywhere ⇒ the body is not certain on
        the full instance ⇒ both bounds are ⊥, whatever values exist."""
        for _ in range(TRIALS):
            answers = [
                ShardAnswer(
                    glb=DirectionSummary(
                        False, _random_summary(rng, aggregate, "glb").value
                    ),
                    lub=DirectionSummary(
                        False, _random_summary(rng, aggregate, "lub").value
                    ),
                )
                for _ in range(rng.randint(1, 5))
            ]
            merged = reduce(
                lambda x, y: merge_shard_answers(aggregate, x, y),
                answers,
                SHARD_ANSWER_IDENTITY,
            )
            final = finalize_answer(merged)
            assert final.glb is BOTTOM and final.lub is BOTTOM

    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    def test_one_certain_shard_defeats_bottom(self, aggregate, rng):
        """A single locally certain shard makes the merged answer non-⊥ —
        certainty is an OR over shards, exactly as for the full instance."""
        for _ in range(TRIALS):
            certain = ShardAnswer(
                glb=DirectionSummary(True, _random_value(rng, aggregate, "glb")),
                lub=DirectionSummary(True, _random_value(rng, aggregate, "lub")),
            )
            noise = [
                ShardAnswer(
                    glb=DirectionSummary(
                        False, _random_summary(rng, aggregate, "glb").value
                    ),
                    lub=DirectionSummary(
                        False, _random_summary(rng, aggregate, "lub").value
                    ),
                )
                for _ in range(rng.randint(0, 4))
            ]
            shards = noise + [certain]
            rng.shuffle(shards)
            merged = reduce(
                lambda x, y: merge_shard_answers(aggregate, x, y),
                shards,
                SHARD_ANSWER_IDENTITY,
            )
            final = finalize_answer(merged)
            assert final.glb is not BOTTOM and final.lub is not BOTTOM

    def test_finalize_identity_is_bottom(self):
        answer = finalize_answer(SHARD_ANSWER_IDENTITY)
        assert answer.glb is BOTTOM and answer.lub is BOTTOM


class TestMergeSemantics:
    """Spot checks that the direction extremum picks the right feasible case."""

    def test_sum_glb_prefers_empty_side_over_positive_value(self):
        # An uncertain shard with a positive-only contribution can be
        # skipped by picking its empty repair: glb ignores it, lub adds it.
        certain = DirectionSummary(True, Fraction(5))
        uncertain = DirectionSummary(False, Fraction(7))
        glb = merge_direction("SUM", "glb", certain, uncertain)
        lub = merge_direction("SUM", "lub", certain, uncertain)
        assert glb == DirectionSummary(True, Fraction(5))
        assert lub == DirectionSummary(True, Fraction(12))

    def test_sum_glb_takes_negative_uncertain_contribution(self):
        # With a negative contribution the minimum *includes* the shard.
        certain = DirectionSummary(True, Fraction(5))
        uncertain = DirectionSummary(False, Fraction(-3))
        glb = merge_direction("SUM", "glb", certain, uncertain)
        assert glb == DirectionSummary(True, Fraction(2))

    def test_min_lub_ignores_uncertain_shard(self):
        # lub(MIN): an uncertain shard can always be emptied, so it cannot
        # cap the least upper bound.
        certain = DirectionSummary(True, Fraction(9))
        uncertain = DirectionSummary(False, Fraction(2))
        lub = merge_direction("MIN", "lub", certain, uncertain)
        assert lub == DirectionSummary(True, Fraction(9))
        glb = merge_direction("MIN", "glb", certain, uncertain)
        assert glb == DirectionSummary(True, Fraction(2))

    def test_combine_values_per_aggregate(self):
        assert combine_values("SUM", Fraction(2), Fraction(3)) == Fraction(5)
        assert combine_values("COUNT", Fraction(2), Fraction(3)) == Fraction(5)
        assert combine_values("MIN", Fraction(2), Fraction(3)) == Fraction(2)
        assert combine_values("MAX", Fraction(2), Fraction(3)) == Fraction(3)
        # AVG merges through AvgState, never through raw scalars: a scalar
        # mean of one shard cannot be combined with another exactly.
        with pytest.raises(BackendError):
            combine_values("AVG", Fraction(1), Fraction(2))
        with pytest.raises(BackendError):
            combine_values("MEDIAN", Fraction(1), Fraction(2))

    def test_avg_union_extremum_needs_non_extremal_repair(self):
        # Shard A: repairs with (count, sum) ∈ {(1, 0), (3, 3)} — means 0, 1.
        # Shard B: one repair (1, 10) — mean 10.  The union's least mean is
        # 13/4 via A's *worse* local mean (1 > 0): merging scalar means
        # would answer 5, the hull merge is exact.
        a = DirectionSummary(
            True, AvgState.of_points([(Fraction(1), Fraction(0)),
                                      (Fraction(3), Fraction(3))], "glb")
        )
        b = DirectionSummary(
            True, AvgState.of_points([(Fraction(1), Fraction(10))], "glb")
        )
        merged = merge_direction("AVG", "glb", a, b)
        assert merged.value.resolve("glb") == Fraction(13, 4)

    def test_product_interval_handles_sign_flips(self):
        a = DirectionSummary(True, ProductState(Fraction(-2), Fraction(3)))
        b = DirectionSummary(True, ProductState(Fraction(-5), Fraction(7)))
        merged = merge_direction("PRODUCT", "glb", a, b)
        assert merged.value == ProductState(Fraction(-15), Fraction(21))
        assert merged.value.resolve("glb") == Fraction(-15)
        assert merged.value.resolve("lub") == Fraction(21)

    def test_count_distinct_families_prune_to_antichain(self):
        a = DirectionSummary(
            True, CountDistinctState.of_families([{"a"}, {"b"}], "glb")
        )
        b = DirectionSummary(True, CountDistinctState.of_families([{"a"}], "glb"))
        glb = merge_direction("COUNT_DISTINCT", "glb", a, b)
        # Unions are {a} and {a, b}; {a, b} is dominated for the minimum.
        assert glb.value == CountDistinctState.of_families([{"a"}], "glb")
        assert glb.value.resolve("glb") == Fraction(1)
        a_lub = DirectionSummary(
            True, CountDistinctState.of_families([{"a"}, {"b"}], "lub")
        )
        b_lub = DirectionSummary(True, CountDistinctState.of_families([{"a"}], "lub"))
        lub = merge_direction("COUNT_DISTINCT", "lub", a_lub, b_lub)
        assert lub.value.resolve("lub") == Fraction(2)

    def test_sum_distinct_negative_values_block_pruning(self):
        # {1} ⊂ {1, -3}, but the extra element is negative: the superset can
        # still lower a later union's sum, so it must survive glb pruning.
        family = [frozenset({Fraction(1)}), frozenset({Fraction(1), Fraction(-3)})]
        state = SumDistinctState.of_families(family, "glb")
        assert len(state.sets) == 2
        # With non-negative extras the superset is dominated and dropped.
        clean = SumDistinctState.of_families(
            [frozenset({Fraction(1)}), frozenset({Fraction(1), Fraction(3)})], "glb"
        )
        assert len(clean.sets) == 1

    def test_group_merge_missing_groups_are_identity(self):
        left = {("a",): ShardAnswer(DirectionSummary(True, Fraction(1)),
                                    DirectionSummary(True, Fraction(2)))}
        right = {("b",): ShardAnswer(DirectionSummary(True, Fraction(3)),
                                     DirectionSummary(True, Fraction(4)))}
        merged = merge_group_answers("SUM", left, right)
        assert set(merged) == {("a",), ("b",)}
        assert merged[("a",)] == left[("a",)]
        assert merged[("b",)] == right[("b",)]
        # Explicit identity entries behave identically to absence.
        padded = merge_group_answers(
            "SUM", left, {**right, ("a",): SHARD_ANSWER_IDENTITY}
        )
        assert padded == merged


class TestSummaryStatePickling:
    """Worker pools ship summaries over the result pipe: a state must
    survive a pickle round trip bit-for-bit and keep merging identically."""

    @pytest.mark.parametrize("aggregate", SUMMARY_AGGREGATES)
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_pickle_round_trip_preserves_merge(self, aggregate, direction, rng):
        for _ in range(50):
            a = _random_summary(rng, aggregate, direction)
            b = _random_summary(rng, aggregate, direction)
            a2, b2 = pickle.loads(pickle.dumps((a, b)))
            assert a2 == a and b2 == b
            assert merge_direction(aggregate, direction, a2, b2) == merge_direction(
                aggregate, direction, a, b
            )
