"""Property-based tests for the shard merge operators.

The sharded executor's correctness reduces to the merge being a commutative
monoid on per-shard summaries (``merge(summary(A), summary(B)) ==
summary(A ∪ B)``), so these tests pin the algebra down directly:
associativity, commutativity, identity-shard neutrality and ⊥ propagation,
under random summaries, random aggregates and random shard orderings.
All randomness is seeded through the session ``repro_seed`` fixture.
"""

from __future__ import annotations

import random
from fractions import Fraction
from functools import reduce

import pytest

from repro.core.evaluator import BOTTOM
from repro.engine.sharding import (
    SHARD_ANSWER_IDENTITY,
    SHARD_IDENTITY,
    SHARDABLE_AGGREGATES,
    DirectionSummary,
    ShardAnswer,
    combine_values,
    finalize_answer,
    merge_direction,
    merge_group_answers,
    merge_shard_answers,
)
from repro.exceptions import BackendError
from repro.workloads.generators import derive_seed

DIRECTIONS = ("glb", "lub")
TRIALS = 200


def _random_summary(rng: random.Random) -> DirectionSummary:
    """A random per-shard summary, biased toward the interesting edge states.

    Includes the unreachable ``certain=True, value=None`` state on purpose:
    the algebra is total, and keeping it lawful means a buggy summariser
    can degrade parity but never the merge's algebraic invariants.
    """
    certain = rng.random() < 0.5
    if rng.random() < 0.25:
        value = None
    else:
        value = Fraction(rng.randint(-30, 30), rng.randint(1, 6))
    return DirectionSummary(certain=certain, value=value)


def _random_answer(rng: random.Random) -> ShardAnswer:
    return ShardAnswer(glb=_random_summary(rng), lub=_random_summary(rng))


@pytest.fixture
def rng(repro_seed, request):
    return random.Random(derive_seed(repro_seed, request.node.nodeid))


class TestMergeAlgebra:
    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_associative(self, aggregate, direction, rng):
        for _ in range(TRIALS):
            a, b, c = (_random_summary(rng) for _ in range(3))
            left = merge_direction(
                aggregate, direction, a, merge_direction(aggregate, direction, b, c)
            )
            right = merge_direction(
                aggregate, direction, merge_direction(aggregate, direction, a, b), c
            )
            assert left == right, (a, b, c)

    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_commutative(self, aggregate, direction, rng):
        for _ in range(TRIALS):
            a, b = _random_summary(rng), _random_summary(rng)
            assert merge_direction(aggregate, direction, a, b) == merge_direction(
                aggregate, direction, b, a
            ), (a, b)

    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_identity_shard_is_neutral(self, aggregate, direction, rng):
        for _ in range(TRIALS):
            a = _random_summary(rng)
            assert merge_direction(aggregate, direction, a, SHARD_IDENTITY) == a
            assert merge_direction(aggregate, direction, SHARD_IDENTITY, a) == a

    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    def test_random_shard_orderings_agree(self, aggregate, rng):
        """Fold order never matters: any shuffle of the shard list merges to
        the same summary (this is what lets the executor merge results in
        completion order rather than submission order)."""
        def merge(x, y):
            return merge_shard_answers(aggregate, x, y)

        for _ in range(50):
            answers = [_random_answer(rng) for _ in range(rng.randint(2, 6))]
            baseline = reduce(merge, answers, SHARD_ANSWER_IDENTITY)
            for _ in range(4):
                shuffled = answers[:]
                rng.shuffle(shuffled)
                assert reduce(merge, shuffled, SHARD_ANSWER_IDENTITY) == baseline


class TestBottomPropagation:
    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    def test_all_uncertain_shards_finalize_to_bottom(self, aggregate, rng):
        """No locally certain shard anywhere ⇒ the body is not certain on
        the full instance ⇒ both bounds are ⊥, whatever values exist."""
        for _ in range(TRIALS):
            answers = [
                ShardAnswer(
                    glb=DirectionSummary(False, _random_summary(rng).value),
                    lub=DirectionSummary(False, _random_summary(rng).value),
                )
                for _ in range(rng.randint(1, 5))
            ]
            merged = reduce(
                lambda x, y: merge_shard_answers(aggregate, x, y),
                answers,
                SHARD_ANSWER_IDENTITY,
            )
            final = finalize_answer(merged)
            assert final.glb is BOTTOM and final.lub is BOTTOM

    @pytest.mark.parametrize("aggregate", SHARDABLE_AGGREGATES)
    def test_one_certain_shard_defeats_bottom(self, aggregate, rng):
        """A single locally certain shard makes the merged answer non-⊥ —
        certainty is an OR over shards, exactly as for the full instance."""
        for _ in range(TRIALS):
            value = Fraction(rng.randint(-10, 10))
            certain = ShardAnswer(
                glb=DirectionSummary(True, value), lub=DirectionSummary(True, value)
            )
            noise = [
                ShardAnswer(
                    glb=DirectionSummary(False, _random_summary(rng).value),
                    lub=DirectionSummary(False, _random_summary(rng).value),
                )
                for _ in range(rng.randint(0, 4))
            ]
            shards = noise + [certain]
            rng.shuffle(shards)
            merged = reduce(
                lambda x, y: merge_shard_answers(aggregate, x, y),
                shards,
                SHARD_ANSWER_IDENTITY,
            )
            final = finalize_answer(merged)
            assert final.glb is not BOTTOM and final.lub is not BOTTOM

    def test_finalize_identity_is_bottom(self):
        answer = finalize_answer(SHARD_ANSWER_IDENTITY)
        assert answer.glb is BOTTOM and answer.lub is BOTTOM


class TestMergeSemantics:
    """Spot checks that the direction extremum picks the right feasible case."""

    def test_sum_glb_prefers_empty_side_over_positive_value(self):
        # An uncertain shard with a positive-only contribution can be
        # skipped by picking its empty repair: glb ignores it, lub adds it.
        certain = DirectionSummary(True, Fraction(5))
        uncertain = DirectionSummary(False, Fraction(7))
        glb = merge_direction("SUM", "glb", certain, uncertain)
        lub = merge_direction("SUM", "lub", certain, uncertain)
        assert glb == DirectionSummary(True, Fraction(5))
        assert lub == DirectionSummary(True, Fraction(12))

    def test_sum_glb_takes_negative_uncertain_contribution(self):
        # With a negative contribution the minimum *includes* the shard.
        certain = DirectionSummary(True, Fraction(5))
        uncertain = DirectionSummary(False, Fraction(-3))
        glb = merge_direction("SUM", "glb", certain, uncertain)
        assert glb == DirectionSummary(True, Fraction(2))

    def test_min_lub_ignores_uncertain_shard(self):
        # lub(MIN): an uncertain shard can always be emptied, so it cannot
        # cap the least upper bound.
        certain = DirectionSummary(True, Fraction(9))
        uncertain = DirectionSummary(False, Fraction(2))
        lub = merge_direction("MIN", "lub", certain, uncertain)
        assert lub == DirectionSummary(True, Fraction(9))
        glb = merge_direction("MIN", "glb", certain, uncertain)
        assert glb == DirectionSummary(True, Fraction(2))

    def test_combine_values_per_aggregate(self):
        assert combine_values("SUM", Fraction(2), Fraction(3)) == Fraction(5)
        assert combine_values("COUNT", Fraction(2), Fraction(3)) == Fraction(5)
        assert combine_values("MIN", Fraction(2), Fraction(3)) == Fraction(2)
        assert combine_values("MAX", Fraction(2), Fraction(3)) == Fraction(3)
        with pytest.raises(BackendError):
            combine_values("AVG", Fraction(1), Fraction(2))

    def test_group_merge_missing_groups_are_identity(self):
        left = {("a",): ShardAnswer(DirectionSummary(True, Fraction(1)),
                                    DirectionSummary(True, Fraction(2)))}
        right = {("b",): ShardAnswer(DirectionSummary(True, Fraction(3)),
                                     DirectionSummary(True, Fraction(4)))}
        merged = merge_group_answers("SUM", left, right)
        assert set(merged) == {("a",), ("b",)}
        assert merged[("a",)] == left[("a",)]
        assert merged[("b",)] == right[("b",)]
        # Explicit identity entries behave identically to absence.
        padded = merge_group_answers(
            "SUM", left, {**right, ("a",): SHARD_ANSWER_IDENTITY}
        )
        assert padded == merged
