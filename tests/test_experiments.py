"""Tests for the experiment harness and the figure reproductions."""


from repro.experiments.figures import (
    all_figure_results,
    reproduce_example44_superfrugal,
    reproduce_fig1_example,
    reproduce_fig2_attack_graph,
    reproduce_fig35_running_example,
    reproduce_groupby_example,
    reproduce_minmax_example,
    reproduce_theorem79_refutation,
)
from repro.experiments.harness import (
    ExperimentRow,
    format_table,
    run_decision_procedure_timing,
    run_scalability_experiment,
    run_solver_agreement_experiment,
)


class TestFigureReproductions:
    def test_fig1(self):
        assert reproduce_fig1_example().matches

    def test_fig2(self):
        assert reproduce_fig2_attack_graph().matches

    def test_fig35(self):
        assert reproduce_fig35_running_example().matches

    def test_example44(self):
        assert reproduce_example44_superfrugal().matches

    def test_theorem79(self):
        assert reproduce_theorem79_refutation().matches

    def test_minmax(self):
        assert reproduce_minmax_example().matches

    def test_groupby(self):
        assert reproduce_groupby_example().matches

    def test_all_results_match_and_have_summaries(self):
        results = all_figure_results()
        assert len(results) == 7
        for result in results:
            assert result.matches, result.summary()
            assert "paper=" in result.summary()


class TestHarness:
    def test_solver_agreement_rows(self):
        rows = run_solver_agreement_experiment(sizes=(10,), seed=2)
        assert len(rows) == 1
        assert rows[0].metrics["all_agree"] is True

    def test_scalability_rows_have_timings(self):
        rows = run_scalability_experiment(
            sizes=(20,), include_branch_and_bound_up_to=0
        )
        assert rows[0].metrics["rewriting_seconds"] >= 0
        assert "sql_glb" in rows[0].metrics

    def test_decision_timing_rows(self):
        rows = run_decision_procedure_timing((2, 3))
        assert all(row.metrics["rewritable"] for row in rows)

    def test_format_table(self):
        rows = [
            ExperimentRow("demo", {"n": 1}, {"value": 2}),
            ExperimentRow("demo", {"n": 2}, {"value": 4, "extra": "x"}),
        ]
        table = format_table(rows)
        assert "demo" in table and "value" in table and "extra" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"
