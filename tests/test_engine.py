"""Tests for the repro.engine subsystem: plans, cache, backends, batching."""

import pickle

import pytest

from repro.baselines.branch_and_bound import BranchAndBoundSolver
from repro.core.evaluator import BOTTOM
from repro.core.range_answers import compute_range_answer, compute_range_answers
from repro.datamodel.signature import RelationSignature, Schema
from repro.engine import (
    AnswerOptions,
    ConsistentAnswerEngine,
    PlanCache,
    STRATEGY_BRANCH_AND_BOUND,
    STRATEGY_MINMAX,
    STRATEGY_OPERATIONAL,
    available_backends,
    normalize_query,
    plan_key,
    register_backend,
    schema_fingerprint,
)
from repro.engine.backends import OperationalBackend
from repro.exceptions import BackendError
from repro.query.parser import parse_aggregation_query
from repro.workloads.generators import InconsistentDatabaseGenerator, WorkloadSpec
from repro.workloads.queries import (
    running_example_query,
    stock_groupby_query,
    stock_query,
    stock_sum_query,
)
from repro.workloads.scenarios import (
    fig1_stock_instance,
    fig1_stock_schema,
    fig3_running_example_instance,
)


def _workload_instance(blocks: int, inconsistency: float, seed: int):
    return InconsistentDatabaseGenerator(
        WorkloadSpec(
            dealers=max(5, blocks // 5),
            products=max(4, blocks // 5),
            towns=4,
            stock_facts=blocks,
            inconsistency=inconsistency,
            seed=seed,
        )
    ).generate()


# -- plan cache unit tests ---------------------------------------------------------------


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 1
        assert stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_put_existing_key_does_not_evict(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.stats().evictions == 0
        assert cache.get("a") == 10

    def test_clear_keeps_counters(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_rejects_non_positive_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


# -- plan keys: fingerprinting and normalization -----------------------------------------


class TestPlanKeys:
    def test_fingerprint_stable_across_schema_rebuilds(self):
        assert schema_fingerprint(fig1_stock_schema()) == schema_fingerprint(
            fig1_stock_schema()
        )

    def test_fingerprint_sensitive_to_key_size(self):
        a = Schema([RelationSignature("R", 2, 1)])
        b = Schema([RelationSignature("R", 2, 2)])
        assert schema_fingerprint(a) != schema_fingerprint(b)

    def test_alpha_equivalent_queries_share_a_key(self):
        schema = fig1_stock_schema()
        q1 = parse_aggregation_query(
            schema, "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        q2 = parse_aggregation_query(
            schema, "SUM(qty) <- Dealers('Smith', town), Stock(prod, town, qty)"
        )
        assert q1 != q2
        assert normalize_query(q1) == normalize_query(q2)
        assert plan_key(schema, q1) == plan_key(schema, q2)

    def test_normalization_preserves_free_variables(self):
        query = stock_groupby_query()
        normalized = normalize_query(query)
        assert [v.name for v in normalized.free_variables] == [
            v.name for v in query.free_variables
        ]

    def test_different_constants_get_different_keys(self):
        schema = fig1_stock_schema()
        smith = stock_sum_query("Smith")
        james = stock_sum_query("James")
        assert plan_key(schema, smith) != plan_key(schema, james)


# -- engine: figure scenarios and cache behaviour ----------------------------------------


class TestEngineAnswers:
    def test_fig1_matches_direct_computation(self):
        engine = ConsistentAnswerEngine()
        query = stock_sum_query()
        instance = fig1_stock_instance()
        assert engine.answer(query, instance) == compute_range_answer(query, instance)

    def test_fig35_matches_direct_computation(self):
        engine = ConsistentAnswerEngine()
        query = running_example_query()
        instance = fig3_running_example_instance()
        assert engine.answer(query, instance) == compute_range_answer(query, instance)

    def test_groupby_matches_direct_computation(self):
        engine = ConsistentAnswerEngine()
        query = stock_groupby_query()
        instance = fig1_stock_instance()
        assert engine.answer_group_by(query, instance) == compute_range_answers(
            query, instance
        )

    @pytest.mark.parametrize("aggregate", ["MIN", "MAX", "COUNT", "AVG"])
    def test_other_aggregates_match_direct_computation(self, aggregate):
        engine = ConsistentAnswerEngine()
        query = stock_query(aggregate)
        instance = fig1_stock_instance()
        assert engine.answer(query, instance) == compute_range_answer(query, instance)

    def test_consistent_answers_drops_bottom_groups(self):
        engine = ConsistentAnswerEngine()
        query = stock_groupby_query()
        instance = fig1_stock_instance()
        answers = engine.consistent_answers(query, instance)
        assert answers
        assert all(not answer.is_bottom for answer in answers.values())

    def test_free_variable_query_needs_binding_or_groupby(self):
        engine = ConsistentAnswerEngine()
        with pytest.raises(BackendError):
            engine.answer(stock_groupby_query(), fig1_stock_instance())

    def test_binding_must_cover_free_variables(self):
        engine = ConsistentAnswerEngine()
        query = stock_groupby_query()
        instance = fig1_stock_instance()
        with pytest.raises(BackendError, match="covering \\['x'\\]"):
            engine.answer(query, instance, binding={"wrong_name": "Smith"})
        answer = engine.answer(query, instance, binding={"x": "Smith"})
        assert answer == compute_range_answers(query, instance)[("Smith",)]

    def test_groupby_requires_free_variables(self):
        engine = ConsistentAnswerEngine()
        with pytest.raises(BackendError):
            engine.answer_group_by(stock_sum_query(), fig1_stock_instance())


class TestEngineCache:
    def test_repeated_query_hits_plan_cache(self):
        engine = ConsistentAnswerEngine()
        query = stock_sum_query()
        instance = fig1_stock_instance()
        engine.answer(query, instance)
        stats = engine.cache_stats()
        assert stats.misses == 1
        engine.answer(query, instance)
        stats = engine.cache_stats()
        assert stats.hits >= 1
        assert stats.misses == 1  # the second call compiled nothing

    def test_alpha_equivalent_query_is_a_cache_hit(self):
        engine = ConsistentAnswerEngine()
        schema = fig1_stock_schema()
        instance = fig1_stock_instance()
        q1 = parse_aggregation_query(
            schema, "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        q2 = parse_aggregation_query(
            schema, "SUM(b) <- Dealers('Smith', a), Stock(c, a, b)"
        )
        first = engine.answer(q1, instance)
        assert engine.is_cached(q2)
        assert engine.answer(q2, instance) == first
        assert engine.cache_stats().misses == 1

    def test_eviction_through_engine(self):
        engine = ConsistentAnswerEngine(plan_cache_size=1)
        instance = fig1_stock_instance()
        engine.compile(stock_sum_query("Smith"))
        engine.compile(stock_sum_query("James"))
        stats = engine.cache_stats()
        assert stats.evictions == 1
        assert not engine.is_cached(stock_sum_query("Smith"))
        # Recompiling the evicted plan still answers correctly.
        assert engine.answer(stock_sum_query("Smith"), instance).glb is not None

    def test_clear_cache_forces_recompilation(self):
        engine = ConsistentAnswerEngine()
        query = stock_sum_query()
        engine.compile(query)
        engine.clear_cache()
        assert not engine.is_cached(query)
        engine.compile(query)
        assert engine.cache_stats().misses == 2


# -- strategy selection and fallback dispatch --------------------------------------------


class TestStrategySelection:
    def test_sum_plan_strategies(self):
        plan = ConsistentAnswerEngine().compile(stock_sum_query())
        assert plan.glb_strategy == STRATEGY_OPERATIONAL
        assert plan.lub_strategy == STRATEGY_BRANCH_AND_BOUND
        assert plan.uses_rewriting("glb") and not plan.uses_rewriting("lub")

    def test_minmax_plan_strategies(self):
        plan = ConsistentAnswerEngine().compile(stock_query("MIN"))
        assert plan.glb_strategy == STRATEGY_MINMAX
        assert plan.lub_strategy == STRATEGY_MINMAX

    def test_cyclic_query_dispatches_to_fallback(self):
        schema = Schema(
            [
                RelationSignature("U", 2, 1),
                RelationSignature("V", 2, 1),
                RelationSignature("T", 3, 2, numeric_positions=(3,)),
            ]
        )
        query = parse_aggregation_query(
            schema, "SUM(r) <- U(x, y), V(y, x), T(x, y, r)"
        )
        engine = ConsistentAnswerEngine()
        plan = engine.compile(query)
        assert not plan.glb_verdict.attack_graph_acyclic
        assert plan.glb_strategy == STRATEGY_BRANCH_AND_BOUND
        assert plan.lub_strategy == STRATEGY_BRANCH_AND_BOUND
        assert plan.executors["glb"].backend_name == "branch_and_bound"
        # The fallback still computes the exact answer.
        instance = make_cyclic_instance(schema)
        assert engine.answer(query, instance) == compute_range_answer(query, instance)

    def test_avg_dispatches_to_fallback(self):
        plan = ConsistentAnswerEngine().compile(stock_query("AVG"))
        assert plan.glb_strategy == STRATEGY_BRANCH_AND_BOUND
        assert plan.executors["glb"].backend_name == "branch_and_bound"

    def test_exhaustive_fallback_backend(self):
        engine = ConsistentAnswerEngine(fallback="exhaustive")
        plan = engine.compile(stock_query("AVG"))
        assert plan.executors["glb"].backend_name == "exhaustive"
        instance = fig1_stock_instance()
        assert engine.answer(stock_query("AVG"), instance) == compute_range_answer(
            stock_query("AVG"), instance
        )

    def test_explain_mentions_strategy_and_backend(self):
        text = ConsistentAnswerEngine().explain(stock_sum_query())
        assert "strategy=operational" in text
        assert "backend=operational" in text


def make_cyclic_instance(schema):
    from repro.datamodel.instance import DatabaseInstance

    return DatabaseInstance.from_rows(
        schema,
        {
            "U": [("a", "b"), ("a", "c")],
            "V": [("b", "a"), ("c", "a")],
            "T": [("a", "b", 3), ("a", "c", 5)],
        },
    )


# -- backend registry --------------------------------------------------------------------


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        for expected in ("operational", "sqlite", "branch_and_bound", "exhaustive"):
            assert expected in names

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError):
            ConsistentAnswerEngine(backend="no-such-dbms")

    def test_custom_backend_plugs_in(self):
        class TracingBackend(OperationalBackend):
            name = "tracing"

        register_backend("tracing", TracingBackend)
        try:
            engine = ConsistentAnswerEngine(backend="tracing")
            assert engine.answer(
                stock_sum_query(), fig1_stock_instance()
            ) == compute_range_answer(stock_sum_query(), fig1_stock_instance())
        finally:
            from repro.engine.backends import _BACKEND_FACTORIES

            _BACKEND_FACTORIES.pop("tracing", None)


# -- backend parity (randomized property test) -------------------------------------------


class TestBackendParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_operational_and_sqlite_agree_on_generated_workloads(self, seed):
        blocks = 12 + 3 * seed
        inconsistency = (0.1, 0.3, 0.5)[seed % 3]
        instance = _workload_instance(blocks, inconsistency, seed)
        query = stock_sum_query(f"dealer{seed % 5}")
        operational = ConsistentAnswerEngine(backend="operational")
        sql = ConsistentAnswerEngine(backend="sqlite")
        assert operational.glb(query, instance) == sql.glb(query, instance)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("aggregate", ["SUM", "COUNT", "MIN", "MAX"])
    def test_parity_across_aggregates(self, seed, aggregate):
        instance = _workload_instance(10 + seed, 0.4, 100 + seed)
        query = stock_query(aggregate, f"dealer{seed}")
        operational = ConsistentAnswerEngine(backend="operational")
        sql = ConsistentAnswerEngine(backend="sqlite")
        assert operational.glb(query, instance) == sql.glb(query, instance)

    @pytest.mark.parametrize("seed", range(3))
    def test_engine_agrees_with_branch_and_bound(self, seed):
        instance = _workload_instance(10, 0.5, 200 + seed)
        query = stock_sum_query(f"dealer{seed}")
        engine = ConsistentAnswerEngine()
        assert engine.glb(query, instance) == BranchAndBoundSolver(query).glb(instance)


# -- batch execution ---------------------------------------------------------------------


class TestBatchExecution:
    def _items(self, count: int):
        query = stock_sum_query("dealer0")
        return [
            (query, _workload_instance(10 + i, 0.3, 300 + i)) for i in range(count)
        ]

    def test_serial_batch_preserves_order_and_warms_cache(self):
        engine = ConsistentAnswerEngine()
        items = self._items(3)
        results = engine.answer_many(items, AnswerOptions(max_workers=1))
        assert [r.index for r in results] == [0, 1, 2]
        assert results[0].plan_cached is False
        assert all(r.plan_cached for r in results[1:])
        assert all(r.seconds >= 0 for r in results)
        for result, (query, instance) in zip(results, items):
            assert result.answer == ConsistentAnswerEngine().answer(query, instance)

    def test_parallel_batch_matches_serial(self):
        items = self._items(6)
        serial = ConsistentAnswerEngine().answer_many(items, AnswerOptions(max_workers=1))
        parallel = ConsistentAnswerEngine().answer_many(items, AnswerOptions(max_workers=3))
        assert [r.answer for r in serial] == [r.answer for r in parallel]
        assert [r.index for r in parallel] == list(range(6))

    def test_batch_mixes_closed_and_groupby_queries(self):
        instance = fig1_stock_instance()
        items = [
            (stock_sum_query(), instance),
            (stock_groupby_query(), instance),
        ]
        results = ConsistentAnswerEngine().answer_many(items, AnswerOptions(max_workers=1))
        assert results[0].answer == compute_range_answer(stock_sum_query(), instance)
        assert results[1].answer == compute_range_answers(
            stock_groupby_query(), instance
        )

    def test_batch_records_strategies(self):
        results = ConsistentAnswerEngine().answer_many(
            [(stock_sum_query(), fig1_stock_instance())]
        )
        assert results[0].glb_strategy == STRATEGY_OPERATIONAL
        assert results[0].lub_strategy == STRATEGY_BRANCH_AND_BOUND

    def test_empty_batch(self):
        assert ConsistentAnswerEngine().answer_many([]) == []


# -- serialization invariants ------------------------------------------------------------


class TestSerialization:
    def test_bottom_survives_pickling_as_singleton(self):
        for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
            assert pickle.loads(pickle.dumps(BOTTOM, protocol)) is BOTTOM

    def test_range_answer_with_bottom_survives_pickling(self):
        from repro.core.range_answers import RangeAnswer

        answer = RangeAnswer(BOTTOM, BOTTOM)
        restored = pickle.loads(pickle.dumps(answer))
        assert restored.is_bottom


# -- tunable batch parallelism (engine kwargs + env overrides) ---------------------------


class TestBatchConfiguration:
    def test_constructor_kwargs_surface_in_config(self):
        engine = ConsistentAnswerEngine(batch_workers=3, min_parallel_items=7)
        config = engine.config()
        assert config["batch_workers"] == 3
        assert config["min_parallel_items"] == 7
        assert engine.batch_workers == 3
        assert engine.min_parallel_items == 7
        # The config rebuilds an identically-tuned engine (worker processes).
        clone = ConsistentAnswerEngine(**config)
        assert clone.batch_workers == 3
        assert clone.min_parallel_items == 7

    def test_env_override_for_worker_count(self, monkeypatch):
        from repro.engine.batch import default_worker_count

        monkeypatch.setenv("REPRO_BATCH_WORKERS", "5")
        assert default_worker_count() == 5
        # An unconfigured engine picks the env default up lazily.
        assert ConsistentAnswerEngine().batch_workers == 5
        # Explicit kwargs beat the environment.
        assert ConsistentAnswerEngine(batch_workers=2).batch_workers == 2

    def test_env_override_for_min_parallel_items(self, monkeypatch):
        from repro.engine.batch import default_min_parallel_items

        monkeypatch.setenv("REPRO_MIN_PARALLEL_ITEMS", "9")
        assert default_min_parallel_items() == 9
        assert ConsistentAnswerEngine().min_parallel_items == 9

    def test_garbage_env_values_fall_back_to_defaults_with_warning(self, monkeypatch):
        from repro.engine.batch import _reset_env_warnings, default_worker_count

        _reset_env_warnings()
        monkeypatch.setenv("REPRO_BATCH_WORKERS", "not-a-number")
        with pytest.warns(RuntimeWarning, match="REPRO_BATCH_WORKERS"):
            assert default_worker_count() >= 1

    def test_garbage_min_parallel_env_warns_and_falls_back(self, monkeypatch):
        from repro.engine.batch import (
            _MIN_PARALLEL_ITEMS,
            _reset_env_warnings,
            default_min_parallel_items,
        )

        _reset_env_warnings()
        monkeypatch.setenv("REPRO_MIN_PARALLEL_ITEMS", "3.5")
        with pytest.warns(RuntimeWarning, match="REPRO_MIN_PARALLEL_ITEMS"):
            assert default_min_parallel_items() == _MIN_PARALLEL_ITEMS

    def test_malformed_env_warns_exactly_once(self, monkeypatch):
        import warnings as warnings_module

        from repro.engine.batch import _reset_env_warnings, default_worker_count

        _reset_env_warnings()
        monkeypatch.setenv("REPRO_BATCH_WORKERS", "eight")
        with pytest.warns(RuntimeWarning):
            default_worker_count()
        # The second read is silent: the warn-once guard holds.
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert default_worker_count() >= 1

    def test_valid_env_values_do_not_warn(self, monkeypatch):
        import warnings as warnings_module

        from repro.engine.batch import (
            _reset_env_warnings,
            default_min_parallel_items,
            default_worker_count,
        )

        _reset_env_warnings()
        monkeypatch.setenv("REPRO_BATCH_WORKERS", "5")
        monkeypatch.setenv("REPRO_MIN_PARALLEL_ITEMS", "9")
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert default_worker_count() == 5
            assert default_min_parallel_items() == 9

    def test_high_threshold_keeps_batches_serial_and_warms_cache(self):
        engine = ConsistentAnswerEngine(batch_workers=8, min_parallel_items=100)
        instance = fig1_stock_instance()
        items = [(stock_sum_query(), instance)] * 6
        results = engine.answer_many(items)
        # Serial path: the calling engine executed everything itself, so its
        # own plan cache is warm and later items saw the cached plan.
        assert engine.is_cached(stock_sum_query())
        assert [r.plan_cached for r in results] == [False] + [True] * 5


# -- process-wide generated-SQL memo -----------------------------------------------------


class TestSqlMemo:
    def setup_method(self):
        from repro.engine import clear_sql_memo

        clear_sql_memo()

    def test_fresh_engines_share_generated_sql(self):
        from repro.engine import sql_memo_stats

        instance = fig1_stock_instance()
        query = stock_groupby_query()

        first = ConsistentAnswerEngine(backend="sqlite").answer_group_by(
            query, instance
        )
        after_first = sql_memo_stats()
        assert after_first["misses"] > 0
        assert after_first["size"] == after_first["misses"]

        # A fresh engine (e.g. a new serving worker) re-prepares executors
        # but must not regenerate identical per-binding SQL.
        second = ConsistentAnswerEngine(backend="sqlite").answer_group_by(
            query, instance
        )
        after_second = sql_memo_stats()
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] > after_first["hits"]
        assert first == second

    def test_closed_query_sql_memoized_across_engines(self):
        from repro.engine import sql_memo_stats

        instance = fig1_stock_instance()
        query = stock_sum_query()
        answers = [
            ConsistentAnswerEngine(backend="sqlite").answer(query, instance)
            for _ in range(3)
        ]
        stats = sql_memo_stats()
        assert stats["misses"] == 1  # generated exactly once process-wide
        assert stats["hits"] >= 2
        assert answers[0] == answers[1] == answers[2]

    def test_memo_distinguishes_instantiations(self):
        from repro.engine import sql_memo_stats

        instance = fig1_stock_instance()
        engine = ConsistentAnswerEngine(backend="sqlite")
        engine.answer(stock_sum_query("Smith"), instance)
        engine.answer(stock_sum_query("James"), instance)
        stats = sql_memo_stats()
        # Different constants are different rewritings: two distinct entries.
        assert stats["size"] == 2
