"""Tests for the SQL compiler, the generated rewriting and the sqlite backend."""

from fractions import Fraction

import pytest

from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.certainty.checker import is_certain
from repro.certainty.rewriting import consistent_rewriting
from repro.core.evaluator import BOTTOM, OperationalRangeEvaluator
from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import BackendError, NotRewritableError, UnsupportedAggregateError
from repro.query.parser import parse_aggregation_query, parse_query
from repro.sql.backend import SqliteBackend
from repro.sql.compiler import FormulaSqlCompiler
from repro.sql.dialect import quote_identifier, sql_comparison, sql_literal
from repro.sql.generator import SqlRewritingGenerator
from tests.conftest import make_random_instance


class TestDialect:
    def test_quote_identifier(self):
        assert quote_identifier("Stock") == '"Stock"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_sql_literal_strings_escaped(self):
        assert sql_literal("O'Brien") == "'O''Brien'"

    def test_sql_literal_numbers(self):
        assert sql_literal(5) == "5"
        assert sql_literal(Fraction(3, 1)) == "3"
        assert sql_literal(Fraction(1, 2)) == "0.5"


class TestCompiler:
    def test_certainty_sentence_agrees_with_checker(self, stock_schema, stock_instance):
        backend = SqliteBackend()
        backend.load(stock_instance)
        compiler = FormulaSqlCompiler()
        for body_text, expected in [
            ("Dealers('James', t), Stock(p, t, 35)", True),
            ("Dealers('Smith', t), Stock(p, t, 95)", False),
        ]:
            query = parse_query(stock_schema, body_text)
            formula = consistent_rewriting(query)
            sql = compiler.compile_sentence(formula)
            assert bool(backend.execute_scalar(sql)) == expected
            assert is_certain(query, stock_instance) == expected
        backend.close()

    @pytest.mark.parametrize("seed", range(6))
    def test_compiled_certainty_matches_checker_on_random_instances(
        self, two_atom_schema, seed
    ):
        query = parse_query(two_atom_schema, "R(x, y), S(y, z, r)")
        formula = consistent_rewriting(query)
        instance = make_random_instance(two_atom_schema, seed + 600)
        backend = SqliteBackend()
        backend.load(instance)
        sql = FormulaSqlCompiler().compile_sentence(formula)
        assert bool(backend.execute_scalar(sql)) == is_certain(query, instance)
        backend.close()


class TestGenerator:
    def test_running_example_sql(self, running_query, running_instance):
        assert SqliteBackend().glb(running_query, running_instance) == Fraction(9)

    def test_fig1_sql(self, stock_sum_query, stock_instance):
        assert SqliteBackend().glb(stock_sum_query, stock_instance) == Fraction(70)

    def test_bottom_case(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)"
        )
        assert SqliteBackend().glb(query, stock_instance) is BOTTOM

    def test_count_query(self, running_schema, running_instance):
        query = parse_aggregation_query(
            running_schema, "COUNT(1) <- R(x,y), S(y,z,'d',r)"
        )
        expected = ExhaustiveRangeSolver(query).glb(running_instance)
        assert SqliteBackend().glb(query, running_instance) == expected

    def test_min_query(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "MIN(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        assert SqliteBackend().glb(query, stock_instance) == Fraction(35)

    def test_max_query(self, running_schema, running_instance):
        query = parse_aggregation_query(
            running_schema, "MAX(r) <- R(x,y), S(y,z,'d',r)"
        )
        expected = OperationalRangeEvaluator(query).glb(running_instance)
        assert SqliteBackend().glb(query, running_instance) == expected

    def test_group_by_answers(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        answers = SqliteBackend().glb_answers(query, stock_instance)
        assert answers[("James",)] == Fraction(70)
        assert answers[("Smith",)] == Fraction(70)

    def test_generated_sql_is_textual_and_readable(self, running_query):
        generated = SqlRewritingGenerator(running_query).generate()
        assert "WITH" in generated.value_sql
        assert "forall_emb" in generated.value_sql
        assert "EXISTS" in generated.certainty_sql
        assert "SELECT" in generated.describe()

    def test_free_variables_rejected_by_generator(self, stock_schema):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        with pytest.raises(BackendError):
            SqlRewritingGenerator(query)

    def test_cyclic_query_rejected(self):
        schema = Schema(
            [
                RelationSignature("U", 2, 1, numeric_positions=(2,)),
                RelationSignature("V", 2, 1),
            ]
        )
        query = parse_aggregation_query(schema, "SUM(y) <- U(x, y), V(y, x)")
        with pytest.raises(NotRewritableError):
            SqlRewritingGenerator(query)

    def test_avg_rejected(self, running_schema):
        query = parse_aggregation_query(running_schema, "AVG(r) <- R(x,y), S(y,z,'d',r)")
        with pytest.raises(UnsupportedAggregateError):
            SqlRewritingGenerator(query)

    @pytest.mark.parametrize("seed", range(10))
    def test_sql_matches_operational_evaluator_on_random_instances(
        self, two_atom_schema, seed
    ):
        query = parse_aggregation_query(two_atom_schema, "SUM(r) <- R(x, y), S(y, z, r)")
        instance = make_random_instance(two_atom_schema, seed + 900)
        operational = OperationalRangeEvaluator(query).glb(instance)
        via_sql = SqliteBackend().glb(query, instance)
        assert via_sql == operational


class TestBackendLifecycle:
    def test_connection_required(self):
        backend = SqliteBackend()
        with pytest.raises(BackendError):
            backend.execute_scalar("SELECT 1")

    def test_load_and_query_roundtrip(self, stock_instance):
        backend = SqliteBackend()
        backend.load(stock_instance)
        count = backend.execute_scalar('SELECT COUNT(*) FROM "Stock"')
        assert count == 5
        backend.close()

    def test_group_by_on_closed_query_rejected(self, stock_sum_query, stock_instance):
        with pytest.raises(BackendError):
            SqliteBackend().glb_answers(stock_sum_query, stock_instance)

    def test_closed_query_on_group_by_helper_rejected(self, stock_schema, stock_instance):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        with pytest.raises(BackendError):
            SqliteBackend().glb(query, stock_instance)


class TestContextManager:
    def test_with_block_closes_connection(self, stock_instance):
        with SqliteBackend() as backend:
            backend.load(stock_instance)
            assert backend.execute_scalar('SELECT COUNT(*) FROM "Stock"') == 5
        with pytest.raises(BackendError):
            backend.execute_scalar("SELECT 1")

    def test_with_block_closes_on_error(self, stock_instance):
        backend = SqliteBackend()
        with pytest.raises(RuntimeError):
            with backend:
                backend.load(stock_instance)
                raise RuntimeError("boom")
        with pytest.raises(BackendError):
            backend.execute_scalar("SELECT 1")

    def test_unconnected_with_block_is_harmless(self):
        with SqliteBackend() as backend:
            assert backend is not None


class TestExactFractionLiterals:
    """``sql_literal`` used to emit ``repr(float(value))`` for non-integer
    Fractions — lossy for 1/3-like rationals, whose float rendering could
    false-match stored floats.  Literals are now exact or refused, and
    conditions against unrepresentable rationals compile exactly."""

    def test_sql_literal_non_dyadic_raises(self):
        for value in (Fraction(1, 3), Fraction(2, 3), Fraction(-1, 7)):
            with pytest.raises(BackendError, match="exact SQL representation"):
                sql_literal(value)

    def test_sql_literal_dyadic_roundtrips_exactly(self):
        for value in (Fraction(1, 2), Fraction(-3, 8), Fraction(1, 2**40)):
            assert Fraction(float(sql_literal(value))) == value

    def test_equality_with_unrepresentable_rational_is_constant(self):
        # No storable number equals 1/3, so the conditions are constants.
        assert sql_comparison('"v"', "=", Fraction(1, 3)) == "1 = 0"
        assert sql_comparison('"v"', "!=", Fraction(1, 3)) == "1 = 1"
        # Representable values keep the plain comparison.
        assert sql_comparison('"v"', "=", Fraction(1, 2)) == '"v" = 0.5'

    def test_ordering_against_unrepresentable_rational_is_exact(self):
        """For every stored float, the compiled ordering condition agrees
        with exact rational arithmetic — including the floats adjacent to
        the rational, where naive float literals get the strictness wrong."""
        import math
        import operator
        import sqlite3

        ops = {"<": operator.lt, "<=": operator.le, ">": operator.gt, ">=": operator.ge}
        rationals = (Fraction(1, 3), Fraction(2, 3), Fraction(-1, 3), Fraction(1, 7))
        for rational in rationals:
            nearest = float(rational)
            stored = sorted(
                {
                    math.nextafter(nearest, -math.inf),
                    nearest,
                    math.nextafter(nearest, math.inf),
                    -1.0,
                    0.0,
                    1.0,
                }
            )
            connection = sqlite3.connect(":memory:")
            connection.execute("CREATE TABLE t (v REAL)")
            connection.executemany("INSERT INTO t VALUES (?)", [(v,) for v in stored])
            for symbol, fn in ops.items():
                expected = {v for v in stored if fn(Fraction(v), rational)}
                condition = sql_comparison("v", symbol, rational)
                cursor = connection.execute(f"SELECT v FROM t WHERE {condition}")
                rows = {row[0] for row in cursor}
                assert rows == expected, f"{symbol} {rational}"
            connection.close()

    def test_non_dyadic_query_constant_no_longer_false_matches(self, stock_schema):
        """Regression: before the fix the 1/3 literal rendered as its nearest
        float and *matched* a stored float(1/3), so sqlite answered COUNT=1
        where the exact evaluators answer ⊥."""
        from repro.datamodel.instance import DatabaseInstance

        stored = Fraction(float(Fraction(1, 3)))  # dyadic: loads fine
        instance = DatabaseInstance.from_rows(
            stock_schema,
            {
                "Dealers": [("Smith", "Boston")],
                "Stock": [("Tesla X", "Boston", stored)],
            },
        )
        query = parse_aggregation_query(
            stock_schema, "COUNT(1) <- Dealers('Smith', t), Stock(p, t, 1/3)"
        )
        operational = OperationalRangeEvaluator(query).glb(instance)
        assert operational is BOTTOM  # 1/3 equals no storable number
        assert SqliteBackend().glb(query, instance) is BOTTOM

    def test_dyadic_query_constant_parity(self, stock_schema):
        from repro.datamodel.instance import DatabaseInstance

        instance = DatabaseInstance.from_rows(
            stock_schema,
            {
                "Dealers": [("Smith", "Boston")],
                "Stock": [("Tesla X", "Boston", Fraction(1, 4))],
            },
        )
        query = parse_aggregation_query(
            stock_schema, "COUNT(1) <- Dealers('Smith', t), Stock(p, t, 1/4)"
        )
        operational = OperationalRangeEvaluator(query).glb(instance)
        via_sql = SqliteBackend().glb(query, instance)
        assert via_sql == operational == Fraction(1)


class TestFractionConversion:
    def test_float_roundtrip_is_exact(self):
        from repro.sql.backend import _to_fraction

        # 1/2**40 is exactly representable as a float but its denominator
        # exceeds 10**9: the old limit_denominator(10**9) collapsed it to 0.
        value = 1 / 2**40
        assert _to_fraction(value) == Fraction(1, 2**40)
        assert _to_fraction(value) != 0

    def test_int_and_string_conversion(self):
        from repro.sql.backend import _to_fraction

        assert _to_fraction(7) == Fraction(7)
        assert _to_fraction("3.5") == Fraction(7, 2)

    def test_fractional_quantity_survives_sql_roundtrip(self, stock_schema):
        from repro.datamodel.instance import DatabaseInstance

        tiny = Fraction(1, 2**40)
        instance = DatabaseInstance.from_rows(
            stock_schema,
            {
                "Dealers": [("Smith", "Boston")],
                "Stock": [("Tesla X", "Boston", tiny)],
            },
        )
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        assert SqliteBackend().glb(query, instance) == tiny

    def test_non_dyadic_quantity_rejected_not_approximated(self, stock_schema):
        # 1/3 has no exact binary-float representation: storing it would make
        # the SQL backend disagree with the exact evaluators, so loading
        # fails loudly instead.
        from repro.datamodel.instance import DatabaseInstance

        instance = DatabaseInstance.from_rows(
            stock_schema,
            {
                "Dealers": [("Smith", "Boston")],
                "Stock": [("Tesla X", "Boston", Fraction(1, 3))],
            },
        )
        query = parse_aggregation_query(
            stock_schema, "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
        )
        with pytest.raises(BackendError, match="not exactly representable"):
            SqliteBackend().glb(query, instance)
