"""Incremental answering: mutate-then-answer == rebuild-then-answer, exactly.

PR 9's tentpole lets a point write re-answer in O(one shard): the summary
cache keyed on ``(lineage, plan, shard token)`` serves the untouched
shards, the worker pool fast-forwards resident instances from fact deltas,
and the registry reports the write's blast radius (touched blocks, shard
slots).  None of that is allowed to change a single answer — this harness
pins *incremental* execution (warm caches, delta-shipped residents,
concurrent writers) against a cold rebuild of the same final fact set,
which shares no lineage and therefore no cache entries.

Scenario seeds derive from the session ``repro_seed`` fixture via
``derive_seed`` (re-run with ``REPRO_TEST_SEED=<seed>`` to explore other
slices deterministically).
"""

from __future__ import annotations

import threading
import warnings

import pytest

from repro.datamodel.facts import Fact
from repro.datamodel.instance import DatabaseInstance, canonical_shard_slot
from repro.engine import (
    AnswerOptions,
    ConsistentAnswerEngine,
    WorkerPool,
    clear_summary_cache,
    summary_cache_stats,
)
from repro.engine import engine as engine_module
from repro.engine.sharding import STRATEGY_HASHED
from repro.obs.metrics import REGISTRY
from repro.serve.registry import InstanceRegistry
from repro.workloads.generators import (
    InconsistentDatabaseGenerator,
    WorkloadSpec,
    derive_seed,
)
from repro.workloads.queries import (
    stock_sum_query,
    stock_total_query,
    stock_town_groupby_query,
)

BACKENDS = ("operational", "sqlite", "branch_and_bound")
SHARD_COUNTS = (1, 2, 3, 7)

#: Hashed placement is the incremental-answering strategy: block→shard
#: assignment depends only on the block key, so a point write leaves every
#: other shard's cache token (and its cached summary) intact.  The default
#: balanced strategy re-packs shards when block sizes change and would
#: recompute everything — still correct, just not incremental.
INCREMENTAL = dict(strategy=STRATEGY_HASHED)


def _engine(backend: str = "operational") -> ConsistentAnswerEngine:
    return ConsistentAnswerEngine(backend=backend)


def _workload(seed: int, stock_facts: int = 24, max_inconsistent: int = 6):
    """Small generated workload, deterministic in ``seed`` (see
    test_shard_parity for the bounded-inconsistency retry rationale)."""
    spec = WorkloadSpec(
        dealers=8,
        products=6,
        towns=5,
        stock_facts=stock_facts,
        inconsistency=0.3,
        extra_facts_per_block=2,
        seed=seed,
    )
    generator = InconsistentDatabaseGenerator(spec)
    instance = generator.generate()
    attempt = 0
    while len(instance.inconsistent_blocks()) > max_inconsistent:
        attempt += 1
        assert attempt < 64, "workload shape cannot satisfy the bound"
        instance = generator.generate(seed=derive_seed(seed, "retry", attempt))
    return instance


def _point_ops(instance: DatabaseInstance, seed: int):
    """Deterministic point write: remove one Stock fact, add a conflicting
    sibling into another block.  Returns ``[(kind, Fact), ...]``."""
    stock = sorted(
        (f for f in instance.facts if f.relation == "Stock"), key=repr
    )
    victim = stock[seed % len(stock)]
    donor = stock[(seed + 7) % len(stock)]
    sibling = Fact("Stock", (donor.values[0], donor.values[1], 997))
    ops = [("remove", victim)]
    if sibling not in instance.facts:
        ops.append(("add", sibling))
    return ops


def _apply(instance: DatabaseInstance, ops) -> DatabaseInstance:
    """Copy-on-write mutation: same lineage, so warm caches stay live."""
    mutated = instance.copy()
    for kind, fact in ops:
        if kind == "add":
            mutated.add_fact(fact)
        else:
            mutated.remove_fact(fact)
    return mutated


def _rebuild(instance: DatabaseInstance) -> DatabaseInstance:
    """Cold rebuild of the same fact set: fresh lineage, zero shared cache."""
    return DatabaseInstance(instance.schema, instance.facts)


def _answer(engine, query, instance, options=None):
    if query.free_variables:
        return engine.answer_group_by(query, instance, options)
    return engine.answer(query, instance, {}, options)


def _worker_counter(pool, key: str) -> int:
    return sum(w.get(key, 0) for w in pool.stats()["per_worker"])


# -- mutate-then-answer == rebuild-then-answer -------------------------------------------


class TestMutateEqualsRebuild:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_serial_across_shard_counts(self, backend, repro_seed):
        engine = _engine(backend)
        seed = derive_seed(repro_seed, "incr-serial", backend)
        instance = _workload(seed)
        ops = _point_ops(instance, seed)
        mutated = _apply(instance, ops)
        rebuilt = _rebuild(mutated)
        for query in (
            stock_sum_query("dealer0"),
            stock_total_query("SUM"),
            stock_town_groupby_query(),
        ):
            baseline = _answer(engine, query, rebuilt)
            for shards in SHARD_COUNTS:
                options = AnswerOptions(shards=shards, **INCREMENTAL)
                # Warm the cache on the pre-image first: the incremental
                # answer below must mix cached (untouched) and fresh
                # (touched) shard summaries and still match the rebuild.
                _answer(engine, query, instance, options)
                incremental = _answer(engine, query, mutated, options)
                assert incremental == baseline, (
                    f"{backend}/shards={shards}: incremental answer diverged "
                    f"from rebuild for {query}"
                )

    def test_pool_matches_rebuild(self, repro_seed):
        seed = derive_seed(repro_seed, "incr-pool")
        instance = _workload(seed)
        ops = _point_ops(instance, seed)
        mutated = _apply(instance, ops)
        rebuilt = _rebuild(mutated)
        engine = _engine()
        with WorkerPool(workers=2) as pool:
            engine.set_worker_pool(pool)
            for query in (stock_total_query("SUM"), stock_town_groupby_query()):
                baseline = _answer(engine, query, rebuilt)
                for shards in (2, 3):
                    options = AnswerOptions(shards=shards, **INCREMENTAL)
                    _answer(engine, query, instance, options)
                    incremental = _answer(engine, query, mutated, options)
                    assert incremental == baseline, (
                        f"pool/shards={shards}: incremental answer diverged "
                        f"from rebuild for {query}"
                    )


# -- delta-shipped residents -------------------------------------------------------------


class TestDeltaShipping:
    def test_resident_fast_forward_matches_rebuild(self, repro_seed):
        seed = derive_seed(repro_seed, "delta-ship")
        instance = _workload(seed)
        query = stock_total_query("SUM")
        with WorkerPool(workers=1) as pool:
            pool.register_instance("w", instance)
            before = pool.answer(query, instance, name="w")
            assert _worker_counter(pool, "instance_loads") == 1

            ops = _point_ops(instance, seed)
            mutated = _apply(instance, ops)
            ref = pool.apply_named_delta("w", mutated, ops)
            assert ref.delta is not None and len(ref.delta) == 1
            assert ref.data_version == mutated.data_version

            after = pool.answer(query, mutated, name="w")
            assert _worker_counter(pool, "delta_applies") == 1
            assert _worker_counter(pool, "delta_fallbacks") == 0
            # The delta ship did not re-pickle: still exactly one full load.
            assert _worker_counter(pool, "instance_loads") == 1
            assert pool.stats()["delta_ships"] == 1

        expected = _engine().answer(query, _rebuild(mutated))
        assert after == expected
        assert before != after or instance.facts == mutated.facts

    def test_stale_resident_falls_back_to_full_load(self, repro_seed):
        seed = derive_seed(repro_seed, "delta-stale")
        instance = _workload(seed)
        query = stock_total_query("SUM")
        with WorkerPool(workers=1) as pool:
            pool.register_instance("w", instance)
            pool.answer(query, instance, name="w")  # resident at v0

            # Re-register a newer full snapshot the worker never resolves,
            # then ship a delta whose base is that unseen snapshot: the
            # resident's version matches no chain segment.
            middle = _apply(instance, _point_ops(instance, seed))
            pool.register_instance("w", middle)
            ops = _point_ops(middle, seed + 1)
            final = _apply(middle, ops)
            ref = pool.apply_named_delta("w", final, ops)
            assert ref.delta is not None

            answer = pool.answer(query, final, name="w")
            assert _worker_counter(pool, "delta_fallbacks") == 1
            assert _worker_counter(pool, "delta_applies") == 0
            assert _worker_counter(pool, "instance_loads") == 2

        assert answer == _engine().answer(query, _rebuild(final))

    def test_oversized_delta_reships(self, repro_seed):
        seed = derive_seed(repro_seed, "delta-size")
        instance = _workload(seed)
        with WorkerPool(workers=1, delta_max_ops=1) as pool:
            pool.register_instance("w", instance)
            ops = _point_ops(instance, seed)
            assert len(ops) > 1
            mutated = _apply(instance, ops)
            ref = pool.apply_named_delta("w", mutated, ops)
            assert ref.delta is None  # over the threshold: full re-pickle
            assert pool.stats()["delta_reships"] == 1
            answer = pool.answer(stock_total_query("SUM"), mutated, name="w")
        assert answer == _engine().answer(
            stock_total_query("SUM"), _rebuild(mutated)
        )


# -- acceptance: point write on a >=10^4-fact instance recomputes one shard --------------


class TestOneShardRecompute:
    def test_point_write_recomputes_exactly_one_shard(self):
        spec = WorkloadSpec(
            dealers=30,
            products=120,
            towns=100,
            stock_facts=10_000,
            inconsistency=0.2,
            extra_facts_per_block=1,
            seed=11,
        )
        instance = InconsistentDatabaseGenerator(spec).generate()
        assert len(instance) >= 10_000
        engine = _engine()
        # MIN is rewritable in both directions: per-shard summaries stay
        # polynomial at this scale (whole-relation SUM's lub would hit the
        # exponential branch-and-bound fallback on ~2000 open blocks).
        query = stock_total_query("MIN")
        shards = 8
        options = AnswerOptions(shards=shards, **INCREMENTAL)
        hits = REGISTRY.counter(
            "repro_summary_cache_hits_total",
            "Shard summaries served from the cache",
        )
        misses = REGISTRY.counter(
            "repro_summary_cache_misses_total",
            "Shard summaries recomputed on a miss",
        )

        clear_summary_cache()
        hits0, misses0 = hits.value(), misses.value()
        cold = engine.answer(query, instance, {}, options)
        assert misses.value() - misses0 == shards
        assert hits.value() - hits0 == 0

        ops = _point_ops(instance, 11)[:1]  # a single-block point write
        mutated = _apply(instance, ops)
        hits1, misses1 = hits.value(), misses.value()
        warm = engine.answer(query, mutated, {}, options)
        # Exactly one shard summary recomputed; the other N-1 came from the
        # cache.  This is the tentpole's O(one shard) re-answer.  (Parity
        # against a cold rebuild is pinned at small scale above — the
        # unsharded baseline takes minutes at 10^4 facts.)
        assert misses.value() - misses1 == 1
        assert hits.value() - hits1 == shards - 1

        stats = summary_cache_stats()
        assert stats["entries"] >= shards + 1
        # A fully-cached re-answer (all N shards hit) reproduces the warm
        # answer bit-for-bit.
        hits2, misses2 = hits.value(), misses.value()
        assert engine.answer(query, mutated, {}, options) == warm
        assert hits.value() - hits2 == shards
        assert misses.value() - misses2 == 0
        assert cold == engine.answer(query, instance, {}, options)


# -- cache-invalidation ordering under concurrent mutate + answer ------------------------


class TestConcurrentMutateAnswer:
    def test_readers_always_see_a_consistent_snapshot(self, repro_seed):
        seed = derive_seed(repro_seed, "incr-concurrent")
        registry = InstanceRegistry()
        registry.register("w", _workload(seed), shards=3)
        engine = _engine()
        query = stock_total_query("SUM")
        options = AnswerOptions(shards=3, **INCREMENTAL)
        invalidations = REGISTRY.counter(
            "repro_summary_cache_invalidations_total",
            "Cached shard summaries invalidated by instance mutation",
        )
        invalidations0 = invalidations.value()
        errors = []
        done = threading.Event()

        def mutator():
            try:
                for i in range(25):
                    # Fresh block per write (new product key): every write
                    # invalidates exactly one shard slot.
                    outcome = registry.mutate(
                        "w",
                        [("add_fact", "Stock", (f"delta-p{i}", "town0", i + 1))],
                    )
                    assert len(outcome.touched_blocks) == 1
                    assert len(outcome.shards_invalidated) == 1
                    expected_slot = canonical_shard_slot(
                        outcome.touched_blocks[0], 3
                    )
                    assert outcome.shards_invalidated == (expected_slot,)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
            finally:
                done.set()

        def reader():
            while True:
                finishing = done.is_set()
                snapshot = registry.get("w").instance
                got = engine.answer(query, snapshot, {}, options)
                want = engine.answer(query, _rebuild(snapshot))
                if got != want:
                    errors.append(
                        AssertionError(
                            f"stale answer at data_version="
                            f"{snapshot.data_version}: {got} != {want}"
                        )
                    )
                if finishing:
                    # One full pass after the last write: the final state
                    # was checked too.
                    return

        threads = [threading.Thread(target=mutator)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors[0]
        entry = registry.get("w")
        assert entry.version == 26
        assert sum(entry.shard_versions) == 25
        assert invalidations.value() - invalidations0 >= 25


# -- AnswerOptions front door ------------------------------------------------------------


class TestAnswerOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnswerOptions(shards=0)
        with pytest.raises(ValueError):
            AnswerOptions(max_workers=0)
        with pytest.raises(ValueError):
            AnswerOptions(chunk_size=0)
        with pytest.raises(ValueError):
            AnswerOptions(deadline=0.0)

    def test_positional_and_keyword_options_agree(self, repro_seed):
        engine = _engine()
        instance = _workload(derive_seed(repro_seed, "opts"))
        query = stock_total_query("SUM")
        options = AnswerOptions(shards=2, **INCREMENTAL)
        assert engine.answer(query, instance, {}, options) == engine.answer(
            query, instance, options=options
        )

    def test_legacy_kwargs_warn_once_and_match(self, repro_seed):
        engine = _engine()
        instance = _workload(derive_seed(repro_seed, "opts-legacy"))
        query = stock_total_query("SUM")
        engine_module._LEGACY_KWARGS_WARNED.discard(("answer", "shards"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = engine.answer(query, instance, shards=2)
            engine.answer(query, instance, shards=2)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1  # warn-once per (method, kwarg)
        assert "AnswerOptions" in str(deprecations[0].message)
        assert legacy == engine.answer(
            query, instance, options=AnswerOptions(shards=2)
        )

    def test_mixing_options_and_legacy_kwargs_rejected(self, repro_seed):
        engine = _engine()
        instance = _workload(derive_seed(repro_seed, "opts-mixed"))
        query = stock_total_query("SUM")
        with pytest.raises(TypeError, match="not both"):
            engine.answer(
                query, instance, options=AnswerOptions(shards=2), shards=3
            )
        with pytest.raises(TypeError, match="unexpected keyword"):
            engine.answer(query, instance, bogus_knob=1)
