"""Tests for aggregation queries (AGGR[sjfBCQ] syntax objects)."""

import pytest

from repro.exceptions import QueryError
from repro.query.aggregation import AggregationQuery
from repro.query.parser import parse_aggregation_query, parse_query
from repro.query.terms import Variable


class TestAggregationQuery:
    def test_aggregate_symbol_uppercased(self, stock_schema):
        body = parse_query(stock_schema, "Stock(p, t, y)")
        y = next(v for v in body.variables if v.name == "y")
        query = AggregationQuery("sum", y, body)
        assert query.aggregate == "SUM"

    def test_aggregated_variable_must_occur_in_body(self, stock_schema):
        body = parse_query(stock_schema, "Stock(p, t, y)")
        with pytest.raises(QueryError):
            AggregationQuery("SUM", Variable("missing", numeric=True), body)

    def test_constant_aggregated_term_allowed(self, stock_schema):
        body = parse_query(stock_schema, "Stock(p, t, y)")
        query = AggregationQuery("COUNT", 1, body)
        assert query.aggregated_term == 1

    def test_non_numeric_constant_rejected(self, stock_schema):
        body = parse_query(stock_schema, "Stock(p, t, y)")
        with pytest.raises(QueryError):
            AggregationQuery("SUM", "hello", body)

    def test_closedness(self, stock_schema):
        closed = parse_aggregation_query(stock_schema, "SUM(y) <- Stock(p, t, y)")
        grouped = parse_aggregation_query(
            stock_schema, "(t, SUM(y)) <- Stock(p, t, y)"
        )
        assert closed.is_closed()
        assert not grouped.is_closed()
        assert [v.name for v in grouped.free_variables] == ["t"]

    def test_with_aggregate(self, stock_schema):
        query = parse_aggregation_query(stock_schema, "SUM(y) <- Stock(p, t, y)")
        assert query.with_aggregate("MAX").aggregate == "MAX"
        assert query.with_aggregate("MAX").body == query.body

    def test_instantiate_free_variables(self, stock_schema):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        closed = query.instantiate_free_variables(("Smith",))
        assert closed.is_closed()
        assert "Smith" in closed.body.atom_for_relation("Dealers").terms

    def test_instantiate_requires_matching_arity(self, stock_schema):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        with pytest.raises(QueryError):
            query.instantiate_free_variables(("Smith", "extra"))

    def test_equality_and_hash(self, stock_schema):
        first = parse_aggregation_query(stock_schema, "SUM(y) <- Stock(p, t, y)")
        second = parse_aggregation_query(stock_schema, "SUM(y) <- Stock(p, t, y)")
        third = parse_aggregation_query(stock_schema, "MAX(y) <- Stock(p, t, y)")
        assert first == second
        assert hash(first) == hash(second)
        assert first != third

    def test_str_closed(self, stock_schema):
        query = parse_aggregation_query(stock_schema, "SUM(y) <- Stock(p, t, y)")
        assert str(query) == "SUM(y) <- Stock(p, t, y)"

    def test_str_grouped(self, stock_schema):
        query = parse_aggregation_query(
            stock_schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
        )
        assert str(query) == "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
