"""Tests for the benchmark regression gate's schema-evolution tolerance.

A fresh ``BENCH_*.json`` that dropped or reshaped a key the committed
baseline still has must skip-with-warning, not raise or hard-fail CI.
"""

import importlib.util
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "check_regression.py",
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


BASELINE_SHARD = {
    "queries": {
        "q1": {
            "best_speedup": 2.0,
            "sharded": {"2": {"seconds": 0.5}, "4": {"seconds": 0.25}},
        },
        "q2": {"best_speedup": 3.0, "sharded": {"2": {"seconds": 0.1}}},
    }
}


class TestShardMetricsTolerance:
    def test_identical_reports_compare_cleanly(self, gate):
        lines, failures = gate.compare("shard", BASELINE_SHARD, BASELINE_SHARD, 2.0)
        assert not failures
        assert all("ok" in line for line in lines)

    def test_fresh_missing_key_is_skipped_not_keyerror(self, gate):
        fresh = {
            "queries": {
                "q1": {"sharded": {"4": {"seconds": 0.3}}},  # best_speedup gone
                "q2": {"best_speedup": 3.1},  # sharded table gone
            }
        }
        lines, failures = gate.compare("shard", BASELINE_SHARD, fresh, 2.0)
        assert not failures
        assert any("skip" in line for line in lines)

    def test_reshaped_entries_do_not_raise(self, gate):
        fresh = {
            "queries": {
                "q1": ["not", "an", "object"],
                "q2": {"best_speedup": 3.0, "sharded": "reshaped"},
            }
        }
        lines, failures = gate.compare("shard", BASELINE_SHARD, fresh, 2.0)
        assert not failures
        baseline_bad = {
            "queries": {
                "q1": {"best_speedup": 2.0, "sharded": {"2": "weird"}},
                "q2": True,
            }
        }
        lines, failures = gate.compare("shard", baseline_bad, BASELINE_SHARD, 2.0)
        assert not failures

    def test_queries_table_of_wrong_type_yields_no_metrics(self, gate):
        assert gate._shard_metrics({"queries": "gone"}, BASELINE_SHARD) == []
        assert gate._shard_metrics(BASELINE_SHARD, {}) == []

    def test_real_regression_still_fails(self, gate):
        fresh = {
            "queries": {
                "q1": {
                    "best_speedup": 0.5,  # 4x worse than the 2.0 baseline
                    "sharded": {"2": {"seconds": 0.5}, "4": {"seconds": 0.25}},
                },
                "q2": {"best_speedup": 3.0, "sharded": {"2": {"seconds": 0.1}}},
            }
        }
        _lines, failures = gate.compare("shard", BASELINE_SHARD, fresh, 2.0)
        assert failures and "q1.best_speedup" in failures[0]

    def test_scenarios_kind_shares_the_shard_comparator(self, gate):
        """``--kind scenarios`` gates the (scenario, aggregate) matrix
        through the same per-query comparator as ``shard``."""
        baseline = {
            "queries": {
                "near_total_inconsistency.AVG": {
                    "best_speedup": 120.0,
                    "sharded": {"2": {"seconds": 0.004}, "4": {"seconds": 0.006}},
                }
            }
        }
        lines, failures = gate.compare("scenarios", baseline, baseline, 3.0)
        assert not failures
        assert any(
            "near_total_inconsistency.AVG.best_speedup" in line for line in lines
        )
        regressed = {
            "queries": {
                "near_total_inconsistency.AVG": {
                    "best_speedup": 10.0,  # 12x worse
                    "sharded": {"2": {"seconds": 0.004}, "4": {"seconds": 0.006}},
                }
            }
        }
        _lines, failures = gate.compare("scenarios", baseline, regressed, 3.0)
        assert failures and "best_speedup" in failures[0]

    def test_incremental_kind_gates_speedup_and_latency(self, gate):
        baseline = {
            "point_write": {"speedup_vs_full": 8.0, "cached_s_median": 0.8}
        }
        lines, failures = gate.compare("incremental", baseline, baseline, 2.0)
        assert not failures
        assert any("point_write.speedup_vs_full" in line for line in lines)
        regressed = {
            "point_write": {"speedup_vs_full": 1.5, "cached_s_median": 0.9}
        }
        _lines, failures = gate.compare("incremental", baseline, regressed, 2.0)
        assert failures and "speedup_vs_full" in failures[0]
        reshaped = {"point_write": "gone"}
        lines, failures = gate.compare("incremental", baseline, reshaped, 2.0)
        assert not failures
        assert all("skip" in line for line in lines)

    def test_non_numeric_values_are_skipped(self, gate):
        baseline = {"throughput_rps": 100.0, "p95_ms": 5.0}
        fresh = {"throughput_rps": "fast", "p95_ms": True}
        lines, failures = gate.compare("serve", baseline, fresh, 2.0)
        assert not failures
        assert all("skip" in line for line in lines)


class TestGateCli:
    def _write(self, tmp_path, name, payload):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_no_comparable_metrics_warns_and_exits_zero(self, gate, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", BASELINE_SHARD)
        fresh = self._write(tmp_path, "fresh.json", {"schema": "v2"})
        assert (
            gate.main(["--kind", "shard", "--baseline", baseline, "--fresh", fresh])
            == 0
        )
        assert "no comparable metrics" in capsys.readouterr().err

    def test_all_skipped_metrics_also_warn_and_exit_zero(self, gate, tmp_path, capsys):
        """Metrics that exist but are all skipped must count as 'nothing
        gated' — SERVE_METRICS is static, so skips alone must trigger the
        warning path, not a silent pass."""
        baseline = self._write(
            tmp_path, "base.json", {"throughput_rps": 100.0, "p95_ms": 5.0}
        )
        fresh = self._write(tmp_path, "fresh.json", {"schema": "v2"})
        args = ["--kind", "serve", "--baseline", baseline, "--fresh", fresh]
        assert gate.main(args) == 0
        assert "no comparable metrics" in capsys.readouterr().err
        assert gate.main(args + ["--require-metrics"]) == 1

    def test_require_metrics_restores_strictness(self, gate, tmp_path):
        baseline = self._write(tmp_path, "base.json", BASELINE_SHARD)
        fresh = self._write(tmp_path, "fresh.json", {"schema": "v2"})
        assert (
            gate.main(
                [
                    "--kind",
                    "shard",
                    "--baseline",
                    baseline,
                    "--fresh",
                    fresh,
                    "--require-metrics",
                ]
            )
            == 1
        )
