"""Inventory analytics over an inconsistent warehouse database.

A realistic scenario in the spirit of the paper's introduction: an inventory
database integrated from several sources violates its primary keys (the same
product/town pair is reported with different quantities, dealers are recorded
in two towns).  The analyst writes ordinary SQL; the library rewrites it and
returns *guaranteed* bounds instead of a single unreliable number.

Run with::

    python examples/inconsistent_inventory.py
"""

import time

from repro import RangeConsistentAnswers, parse_sql_aggregation_query
from repro.baselines import BranchAndBoundSolver
from repro.sql import SqliteBackend, SqlRewritingGenerator
from repro.workloads import InconsistentDatabaseGenerator, WorkloadSpec


def main() -> None:
    spec = WorkloadSpec(
        dealers=30,
        products=15,
        towns=8,
        stock_facts=100,
        inconsistency=0.25,
        seed=7,
    )
    generator = InconsistentDatabaseGenerator(spec)
    schema = generator.schema
    instance = generator.generate()
    print(
        f"generated {len(instance)} facts, "
        f"{len(instance.inconsistent_blocks())} inconsistent blocks, "
        f"{instance.repair_count()} repairs"
    )

    sql = """
        SELECT SUM(S.Qty)
        FROM Dealers AS D, Stock AS S
        WHERE D.Town = S.Town AND D.Name = 'dealer0'
    """
    query = parse_sql_aggregation_query(schema, sql)
    print(f"\nSQL query translated to AGGR[sjfBCQ]: {query}")

    answers = RangeConsistentAnswers(query)
    print(f"separation-theorem verdict: {answers.verdict('glb').reason}")

    start = time.perf_counter()
    glb = answers.glb(instance)
    rewriting_seconds = time.perf_counter() - start
    print(f"\nGLB via rewriting-based evaluation: {glb}  ({rewriting_seconds:.4f}s)")

    start = time.perf_counter()
    sql_glb = SqliteBackend().glb(query, instance)
    sql_seconds = time.perf_counter() - start
    print(f"GLB via generated SQL on sqlite3:   {sql_glb}  ({sql_seconds:.4f}s)")

    start = time.perf_counter()
    bnb_glb = BranchAndBoundSolver(query).glb(instance)
    bnb_seconds = time.perf_counter() - start
    print(f"GLB via branch-and-bound baseline:  {bnb_glb}  ({bnb_seconds:.4f}s)")

    lub = answers.lub(instance)
    print(f"LUB via exact solver:               {lub}")

    generated = SqlRewritingGenerator(query).generate()
    print("\nGenerated SQL rewriting (certainty guard + glb pipeline):")
    print(generated.describe())


if __name__ == "__main__":
    main()
