"""Quickstart: range consistent answers on the paper's Fig. 1 database.

Run with::

    python examples/quickstart.py

The example builds the dbStock instance of Fig. 1, asks the introduction's
query g0 (total quantity of cars in Smith's town of operation), and prints the
greatest lower bound / least upper bound of the answer across all repairs,
both for the closed query and for the per-dealer GROUP BY variant.

Everything goes through :class:`repro.ConsistentAnswerEngine`: the query is
compiled once into a cached plan (classification + strategy selection) and
repeated evaluations reuse it — the same front door a service would expose.
"""

from repro import (
    ConsistentAnswerEngine,
    DatabaseInstance,
    RelationSignature,
    Schema,
    parse_aggregation_query,
)


def build_schema() -> Schema:
    return Schema(
        [
            RelationSignature("Dealers", 2, 1, attribute_names=("Name", "Town")),
            RelationSignature(
                "Stock",
                3,
                2,
                numeric_positions=(3,),
                attribute_names=("Product", "Town", "Qty"),
            ),
        ]
    )


def build_instance(schema: Schema) -> DatabaseInstance:
    return DatabaseInstance.from_rows(
        schema,
        {
            "Dealers": [
                ("Smith", "Boston"),
                ("Smith", "New York"),
                ("James", "Boston"),
            ],
            "Stock": [
                ("Tesla X", "Boston", 35),
                ("Tesla X", "Boston", 40),
                ("Tesla Y", "Boston", 35),
                ("Tesla Y", "New York", 95),
                ("Tesla Y", "New York", 96),
            ],
        },
    )


def main() -> None:
    schema = build_schema()
    instance = build_instance(schema)

    print("Database instance (blocks separated by primary key):")
    for block in instance.blocks():
        marker = "  [inconsistent]" if len(block) > 1 else ""
        print("  " + " | ".join(sorted(str(f) for f in block)) + marker)
    print(f"number of repairs: {instance.repair_count()}\n")

    engine = ConsistentAnswerEngine()

    query = parse_aggregation_query(
        schema, "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
    )
    print(f"query g0: {query}")
    answer = engine.answer(query, instance)
    print(f"range consistent answer [glb, lub] = {answer}")
    print("(the paper's Fig. 1 discussion: the dagger repair attains the glb 70)\n")

    print("compiled plan:")
    print(engine.explain(query))
    print()

    groupby = parse_aggregation_query(
        schema, "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"
    )
    print(f"GROUP BY query: {groupby}")
    for group, group_answer in engine.answer_group_by(groupby, instance).items():
        print(f"  dealer {group[0]!r}: {group_answer}")

    # Ask g0 again: the engine serves the compiled plan from its LRU cache.
    engine.answer(query, instance)
    print(f"\nplan cache: {engine.cache_stats()}")


if __name__ == "__main__":
    main()
