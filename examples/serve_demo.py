"""Serving-layer walkthrough: boot, register, query, mutate, restart, observe.

Runs entirely in-process (server on an ephemeral port, async client in the
same event loop) and demonstrates the full serving surface:

1. boot the server with the paper's example instances pre-registered —
   backed by a durable store directory (``--store-dir`` in production);
2. answer the introduction's SUM query over HTTP — the exact [70, 96];
3. GROUP BY per dealer, plus a per-request binding for one group;
4. register a *new* instance over the wire and query it;
5. batch several queries through /answer_many;
6. mutate the registered instance through the write path
   (POST /instances/{name}/facts) with optimistic concurrency, and watch
   the answer and the version change;
7. stop the server, boot a fresh one on the same store directory, and show
   the mutation survived the restart — version intact;
8. read /metrics: plan-cache hits prove requests share compiled plans.

Run with: PYTHONPATH=src python examples/serve_demo.py
"""

import asyncio
import tempfile

from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.serve import (
    ConsistentAnswerServer,
    ServeClient,
    ServeClientError,
    ServeConfig,
)

STOCK_SUM = "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
STOCK_GROUP_BY = "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"


def build_sensor_instance() -> DatabaseInstance:
    """A small inconsistent sensor database to register over HTTP."""
    schema = Schema(
        [
            RelationSignature(
                "Readings",
                3,
                2,
                numeric_positions=(3,),
                attribute_names=("Sensor", "Hour", "Value"),
            )
        ]
    )
    return DatabaseInstance.from_rows(
        schema,
        {
            "Readings": [
                ("s1", "09h", 21),
                ("s1", "09h", 23),  # conflicting reading, same key
                ("s2", "09h", 19),
            ]
        },
    )


async def main() -> None:
    store_dir = tempfile.mkdtemp(prefix="repro-demo-store-")
    server = ConsistentAnswerServer(
        ServeConfig(port=0, workers=4, store_dir=store_dir)
    )
    host, port = await server.start()
    print(f"server: http://{host}:{port}  instances={server.registry.names()}")
    print(f"durable store: {store_dir}")

    async with ServeClient(host, port) as client:
        answer = await client.answer("stock", STOCK_SUM)
        print(f"\nSUM over dbStock (Fig. 1): {answer}")

        groups = await client.answer_group_by("stock", STOCK_GROUP_BY)
        print("per-dealer GROUP BY:")
        for key, group_answer in sorted(groups.items(), key=repr):
            print(f"  {key[0]:>6}: {group_answer}")

        james = await client.answer("stock", STOCK_GROUP_BY, binding={"x": "James"})
        print(f"bound to James only: {james}")

        registered = await client.register_instance(
            "sensors", build_sensor_instance()
        )
        print(
            f"\nregistered 'sensors': {registered['facts']} facts, "
            f"{registered['inconsistent_blocks']} inconsistent block(s)"
        )
        sensor_sum = await client.answer("sensors", "SUM(v) <- Readings(s, h, v)")
        print(f"SUM over all readings: {sensor_sum}")

        batch = await client.answer_many(
            [
                ("stock", STOCK_SUM),
                ("stock", STOCK_SUM),  # identical: plan-cache hit
                ("sensors", "MAX(v) <- Readings(s, h, v)"),
            ]
        )
        print("\nbatch results:")
        for item in batch:
            label = item.get("answer") or f"{len(item['groups'])} groups"
            print(
                f"  [{item['index']}] {item['instance']:>8} "
                f"cached={item['plan_cached']} -> {label}"
            )

        # The write path: mutate the sensor database in place over HTTP.
        # expected_version makes concurrent writers safe: the losing writer
        # gets a clean 409 instead of silently interleaving.
        mutated = await client.mutate_instance(
            "sensors",
            [
                ("add", "Readings", ["s3", "09h", 25]),
                ("remove", "Readings", ["s1", "09h", 23]),  # retract the glitch
            ],
            expected_version=1,
        )
        print(
            f"\nmutated 'sensors' -> version {mutated['version']}, "
            f"{mutated['facts']} facts"
        )
        try:
            await client.mutate_instance(
                "sensors",
                [("add", "Readings", ["s4", "09h", 1])],
                expected_version=1,
            )
        except ServeClientError as exc:
            print(f"stale writer rejected: {exc.status} {exc.error_type}")
        sensor_sum = await client.answer("sensors", "SUM(v) <- Readings(s, h, v)")
        print(f"SUM over all readings after mutation: {sensor_sum}")

        metrics = await client.metrics()
        cache = metrics["plan_cache"]
        print(
            f"\nplan cache after serving: hits={cache['hits']} "
            f"misses={cache['misses']} hit_rate={cache['hit_rate']:.0%}"
        )
        total = sum(
            count
            for by_status in metrics["requests_total"].values()
            for count in by_status.values()
        )
        print(f"requests served: {total}")
        store = metrics["store"]
        print(
            f"store: {store['instances']} instance(s), "
            f"versions={store['versions']}"
        )

    await server.stop()

    # Restart on the same store directory: everything — the wire-registered
    # instance, the mutation, the bumped version — survives the process.
    server = ConsistentAnswerServer(
        ServeConfig(port=0, workers=4, store_dir=store_dir)
    )
    host, port = await server.start()
    async with ServeClient(host, port) as client:
        listed = {item["name"]: item for item in await client.instances()}
        sensors = listed["sensors"]
        print(
            f"\nafter restart: instances={sorted(listed)}\n"
            f"'sensors' came back at version {sensors['version']} "
            f"with {sensors['facts']} facts"
        )
        sensor_sum = await client.answer("sensors", "SUM(v) <- Readings(s, h, v)")
        print(f"SUM over all readings after restart: {sensor_sum}")
    await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
