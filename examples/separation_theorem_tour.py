"""A tour of the separation theorem: which queries admit a rewriting?

The example classifies a catalogue of aggregation queries with the paper's
results (Theorems 1.1, 5.5, 6.1, 7.8, 7.10, 7.11, Corollary 7.5), prints the
verdicts, and shows the constructed AGGR[FOL] rewriting for one rewritable
query.

Run with::

    python examples/separation_theorem_tour.py
"""

from repro import (
    GlbRewriter,
    RelationSignature,
    Schema,
    classify_aggregation_query,
    parse_aggregation_query,
)


def catalogue():
    schema = Schema(
        [
            RelationSignature("R", 2, 1, numeric_positions=(2,)),
            RelationSignature("S", 2, 1, numeric_positions=(2,)),
            RelationSignature("T", 3, 2, numeric_positions=(3,)),
            RelationSignature("U", 2, 1),
            RelationSignature("V", 2, 1),
        ]
    )
    queries = {
        "sum over a single relation": "SUM(r) <- R(x, r)",
        "sum over a join (acyclic attack graph)": "SUM(r) <- U(x, y), T(x, y, r)",
        "sum over a cyclic attack graph": "SUM(r) <- U(x, y), V(y, x), T(x, y, r)",
        "count over a join": "COUNT(1) <- U(x, y), T(x, y, r)",
        "max over a join": "MAX(r) <- U(x, y), T(x, y, r)",
        "min over a join": "MIN(r) <- U(x, y), T(x, y, r)",
        "avg over a single relation": "AVG(r) <- R(x, r)",
        "product over a single relation": "PRODUCT(r) <- R(x, r)",
        "count-distinct over a single relation": "COUNT_DISTINCT(r) <- R(x, r)",
    }
    return schema, queries


def main() -> None:
    schema, queries = catalogue()
    print(f"{'query':<45} {'glb rewritable':<16} {'lub rewritable':<16}")
    print("-" * 80)
    parsed = {}
    for label, text in queries.items():
        query = parse_aggregation_query(schema, text)
        parsed[label] = query
        glb_verdict = classify_aggregation_query(query, "glb")
        lub_verdict = classify_aggregation_query(query, "lub")

        def render(verdict):
            if verdict.expressible is True:
                return "yes"
            if verdict.expressible is False:
                return "no"
            return "open"

        print(f"{label:<45} {render(glb_verdict):<16} {render(lub_verdict):<16}")

    print("\nDetailed verdict for the cyclic query:")
    verdict = classify_aggregation_query(
        parsed["sum over a cyclic attack graph"], "glb"
    )
    print(f"  {verdict.reason}")
    print(f"  CERTAINTY complexity of the body: {verdict.certainty_class}")

    print("\nConstructed AGGR[FOL] rewriting for 'sum over a join':")
    rewriting = GlbRewriter(parsed["sum over a join (acyclic attack graph)"]).rewrite()
    print(rewriting.describe())


if __name__ == "__main__":
    main()
