"""Reproduce the Section 7.3 refutation of Fuxman's SUM rewriting claim.

Theorem 7.9: for the Caggforest query ``SUM(r) <- S1(x,'c1'), S2(y,'c2'),
T(x,y,r)``, GLB-CQA becomes NP-hard as soon as the numeric column may contain
``-1`` — so the SQL rewriting claimed in Fuxman's thesis cannot be correct.
The example builds the MAX-CUT gadget of Appendix K, compares the exact glb
with the ConQuer-style independent-block evaluation, and shows that the
library's own classifier refuses to produce a rewriting once negative numbers
are in play (SUM is no longer monotone).

Run with::

    python examples/fuxman_refutation.py
"""

from repro import parse_aggregation_query
from repro.aggregates import SUM, descending_chain_witness
from repro.baselines import (
    BranchAndBoundSolver,
    FuxmanIndependentBlockSolver,
    is_caggforest,
)
from repro.workloads import theorem79_gadget


def main() -> None:
    edges = [("v1", "v2"), ("v2", "v3"), ("v1", "v3"), ("v3", "v4")]
    schema, instance = theorem79_gadget(edges)
    query = parse_aggregation_query(
        schema, "SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)"
    )

    print(f"query: {query}")
    print(f"in Caggforest (Definition N.1): {is_caggforest(query)}")
    print(
        f"facts: {len(instance)}, inconsistent blocks: "
        f"{len(instance.inconsistent_blocks())}"
    )

    chain = descending_chain_witness(SUM, allow_negative=True)
    print(
        f"\nSUM over N ∪ {{-1}} has a bounded descending chain "
        f"(s={chain.s}, t={chain.t}), so Lemma 7.3 applies: GLB-CQA is NP-hard."
    )

    exact = BranchAndBoundSolver(query, use_pruning=False).glb(instance)
    fuxman = FuxmanIndependentBlockSolver(query).glb(instance)
    print(f"\nexact glb (branch-and-bound over repairs): {exact}")
    print(f"ConQuer-style independent-block value:     {fuxman}")
    print(f"values agree: {fuxman == exact}")
    print(
        "\nThe independent-block strategy that is exact for Caggforest over "
        "non-negative numbers no longer matches the true glb, illustrating the "
        "flaw reported in Section 7.3."
    )


if __name__ == "__main__":
    main()
