"""SQL rewriting backend: compile rewritings to SQL and run them on sqlite3."""

from repro.sql.dialect import quote_identifier, sql_comparison, sql_literal
from repro.sql.compiler import FormulaSqlCompiler
from repro.sql.generator import SqlRewritingGenerator, GeneratedSql
from repro.sql.backend import SqliteBackend

__all__ = [
    "quote_identifier",
    "sql_comparison",
    "sql_literal",
    "FormulaSqlCompiler",
    "SqlRewritingGenerator",
    "GeneratedSql",
    "SqliteBackend",
]
