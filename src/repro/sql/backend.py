"""sqlite3 execution backend for the SQL rewritings.

The paper's practical pitch is that AGGR[FOL] rewritings run on an unmodified
DBMS.  A full deployment would target PostgreSQL; offline we use the standard
library's sqlite3, which supports everything the generated SQL needs
(correlated EXISTS, CTEs, standard aggregates).  See DESIGN.md for the
substitution note.
"""

from __future__ import annotations

import sqlite3
from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.core.evaluator import BOTTOM
from repro.datamodel.facts import Constant
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import Schema
from repro.exceptions import BackendError
from repro.query.aggregation import AggregationQuery
from repro.sql.dialect import quote_identifier
from repro.sql.generator import GeneratedSql, SqlRewritingGenerator


def _to_fraction(value) -> Fraction:
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        # Binary floats convert to Fraction exactly; limit_denominator would
        # silently corrupt values such as 1/2**40 (denominator > 10**9).
        return Fraction(value)
    return Fraction(str(value))


def _to_sql_number(value: Fraction):
    """An int or float storing ``value`` exactly, or :class:`BackendError`."""
    if value.denominator == 1:
        return int(value)
    as_float = float(value)
    if Fraction(as_float) != value:
        raise BackendError(
            f"quantity {value} is not exactly representable in the DBMS's "
            "binary floats; the SQL backend would disagree with the exact "
            "evaluators"
        )
    return as_float


class SqliteBackend:
    """Loads database instances into sqlite3 and runs generated rewritings."""

    def __init__(self) -> None:
        self._connection: Optional[sqlite3.Connection] = None

    # -- connection / schema ----------------------------------------------------------

    def connect(self) -> sqlite3.Connection:
        """(Re)open an in-memory database."""
        self.close()
        self._connection = sqlite3.connect(":memory:")
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "SqliteBackend":
        """Use as ``with SqliteBackend() as backend:`` — closes on exit even
        when the body raises, so error paths do not leak connections."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise BackendError("backend is not connected; call connect() first")
        return self._connection

    def create_schema(self, schema: Schema) -> None:
        """Create one table per relation signature.

        No PRIMARY KEY constraint is declared: the whole point is to store
        instances that *violate* their primary keys.
        """
        cursor = self.connection.cursor()
        for signature in schema:
            columns = []
            for position, name in enumerate(signature.attribute_names, start=1):
                sql_type = "NUMERIC" if signature.is_numeric(position) else "TEXT"
                columns.append(f"{quote_identifier(name)} {sql_type}")
            cursor.execute(
                f"CREATE TABLE IF NOT EXISTS {quote_identifier(signature.name)} "
                f"({', '.join(columns)})"
            )
        self.connection.commit()

    def load_instance(self, instance: DatabaseInstance) -> None:
        """Insert every fact of the instance.

        Fractions are stored as SQL numbers.  A Fraction that is not exactly
        representable as a binary float (e.g. 1/3) is rejected rather than
        silently approximated: the operational evaluator is exact, and a
        lossy store would make the two backends disagree.
        """
        cursor = self.connection.cursor()
        for fact in instance:
            signature = instance.schema.relation(fact.relation)
            placeholders = ", ".join("?" for _ in range(signature.arity))
            values = [
                _to_sql_number(v) if isinstance(v, Fraction) else v
                for v in fact.values
            ]
            cursor.execute(
                f"INSERT INTO {quote_identifier(fact.relation)} VALUES ({placeholders})",
                values,
            )
        self.connection.commit()

    def load(self, instance: DatabaseInstance) -> None:
        """Connect, create the schema and load the instance in one call."""
        self.connect()
        self.create_schema(instance.schema)
        self.load_instance(instance)

    # -- query execution ------------------------------------------------------------------

    def execute_scalar(self, sql: str):
        cursor = self.connection.cursor()
        cursor.execute(sql)
        row = cursor.fetchone()
        return None if row is None else row[0]

    def run_generated(self, generated: GeneratedSql):
        """Run a generated rewriting against the loaded database."""
        holds = self.execute_scalar(generated.certainty_sql)
        if not holds:
            return BOTTOM
        value = self.execute_scalar(generated.value_sql)
        if value is None:
            return BOTTOM
        return _to_fraction(value)

    # -- high-level helpers --------------------------------------------------------------------

    def glb(self, query: AggregationQuery, instance: DatabaseInstance):
        """GLB-CQA of a closed query via SQL rewriting on sqlite3."""
        if query.free_variables:
            raise BackendError("use glb_answers() for queries with free variables")
        generated = SqlRewritingGenerator(query).generate()
        self.load(instance)
        try:
            return self.run_generated(generated)
        finally:
            self.close()

    def glb_answers(
        self, query: AggregationQuery, instance: DatabaseInstance
    ) -> Dict[Tuple[Constant, ...], object]:
        """Per-group GLB-CQA for a GROUP BY query (Section 6.2).

        Free variables are instantiated with every possible answer and the
        closed rewriting is executed per instantiation, mirroring the paper's
        treatment of free variables as constants.
        """
        from repro.embeddings.embeddings import embeddings_of

        free = query.free_variables
        if not free:
            raise BackendError("query has no free variables; use glb()")
        candidates = []
        seen = set()
        for embedding in embeddings_of(query.body, instance):
            candidate = tuple(embedding[v.name] for v in free)
            if candidate not in seen:
                seen.add(candidate)
                candidates.append(candidate)

        self.load(instance)
        results: Dict[Tuple[Constant, ...], object] = {}
        try:
            for candidate in sorted(candidates, key=repr):
                closed = query.instantiate_free_variables(candidate)
                generated = SqlRewritingGenerator(closed).generate()
                results[candidate] = self.run_generated(generated)
        finally:
            self.close()
        return results
