"""Compilation of (guarded) first-order formulas to SQL boolean expressions.

The consistent rewritings produced by :mod:`repro.certainty.rewriting` and the
∀embedding formulas of Lemma 4.3 are *guarded*: every existential quantifier
is of the form ``∃x̄ (R(...) ∧ φ)`` and every universal quantifier of the form
``∀x̄ (R(...) → φ)``, where the relational atom mentions all quantified
variables.  Such formulas translate directly into correlated ``EXISTS`` /
``NOT EXISTS`` subqueries, which is how ConQuer-style systems ship consistent
rewritings to a DBMS.

The compiler receives a *scope*: a mapping from variable names to SQL
expressions (column references of the enclosing query, or literals).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import BackendError
from repro.fol.syntax import (
    And,
    Comparison,
    Exists,
    FalseFormula,
    ForAll,
    Formula,
    Implies,
    Not,
    NumericalConstant,
    NumericalVariable,
    Or,
    RelationAtom,
    TrueFormula,
)
from repro.query.atom import Atom
from repro.query.terms import Variable, is_variable
from repro.sql.dialect import (
    mirror_operator,
    quote_identifier,
    sql_comparison,
    sql_literal,
)

Scope = Dict[str, str]


class FormulaSqlCompiler:
    """Compiles guarded first-order formulas into SQL boolean expressions."""

    def __init__(self) -> None:
        self._alias_counter = itertools.count()

    # -- public API -----------------------------------------------------------------

    def compile(self, formula: Formula, scope: Optional[Scope] = None) -> str:
        """SQL boolean expression equivalent to ``formula`` under ``scope``."""
        return self._compile(formula, dict(scope or {}))

    def compile_sentence(self, formula: Formula) -> str:
        """A full ``SELECT`` statement returning 1/0 for a closed formula."""
        condition = self.compile(formula, {})
        return f"SELECT CASE WHEN {condition} THEN 1 ELSE 0 END AS holds"

    # -- recursive translation ---------------------------------------------------------

    def _compile(self, formula: Formula, scope: Scope) -> str:
        if isinstance(formula, TrueFormula):
            return "1 = 1"
        if isinstance(formula, FalseFormula):
            return "1 = 0"
        if isinstance(formula, Comparison):
            return self._compile_comparison(formula, scope)
        if isinstance(formula, RelationAtom):
            return self._compile_atom_membership(formula.atom, scope)
        if isinstance(formula, Not):
            return f"NOT ({self._compile(formula.operand, scope)})"
        if isinstance(formula, And):
            if not formula.operands:
                return "1 = 1"
            return " AND ".join(
                f"({self._compile(op, scope)})" for op in formula.operands
            )
        if isinstance(formula, Or):
            if not formula.operands:
                return "1 = 0"
            return " OR ".join(
                f"({self._compile(op, scope)})" for op in formula.operands
            )
        if isinstance(formula, Implies):
            antecedent = self._compile(formula.antecedent, scope)
            consequent = self._compile(formula.consequent, scope)
            return f"(NOT ({antecedent}) OR ({consequent}))"
        if isinstance(formula, Exists):
            return self._compile_exists(formula, scope)
        if isinstance(formula, ForAll):
            return self._compile_forall(formula, scope)
        raise BackendError(f"cannot compile formula node {formula!r} to SQL")

    # -- quantifiers ----------------------------------------------------------------------

    def _compile_exists(self, formula: Exists, scope: Scope) -> str:
        guard, remainder = self._split_guard(formula.operand, formula.variables)
        alias = self._fresh_alias()
        inner_scope, conditions = self._atom_scope(guard, alias, scope, formula.variables)
        inner = self._compile(remainder, inner_scope)
        table = quote_identifier(guard.relation)
        where = " AND ".join([*conditions, f"({inner})"]) if conditions or inner else "1 = 1"
        return f"EXISTS (SELECT 1 FROM {table} AS {alias} WHERE {where})"

    def _compile_forall(self, formula: ForAll, scope: Scope) -> str:
        operand = formula.operand
        if not isinstance(operand, Implies) or not isinstance(
            operand.antecedent, RelationAtom
        ):
            raise BackendError(
                "universal quantification must be guarded by a relational atom "
                "(∀x̄ (R(...) → φ)) to be compiled to SQL"
            )
        guard = operand.antecedent.atom
        alias = self._fresh_alias()
        inner_scope, conditions = self._atom_scope(guard, alias, scope, formula.variables)
        inner = self._compile(operand.consequent, inner_scope)
        table = quote_identifier(guard.relation)
        where_parts = list(conditions) + [f"NOT ({inner})"]
        where = " AND ".join(where_parts)
        return f"NOT EXISTS (SELECT 1 FROM {table} AS {alias} WHERE {where})"

    def _split_guard(
        self, operand: Formula, variables: Sequence[Variable]
    ) -> Tuple[Atom, Formula]:
        """Find a relational atom guarding the quantified variables."""
        needed = {v.name for v in variables}
        candidates: List[Formula]
        if isinstance(operand, RelationAtom):
            candidates = [operand]
            rest: List[Formula] = []
        elif isinstance(operand, And):
            candidates = [op for op in operand.operands if isinstance(op, RelationAtom)]
            rest = list(operand.operands)
        else:
            candidates = []
            rest = [operand]
        for candidate in candidates:
            atom_vars = {v.name for v in candidate.atom.variables}
            if needed <= atom_vars or not needed:
                remaining = [op for op in rest if op is not candidate]
                if not remaining:
                    return candidate.atom, TrueFormula()
                if len(remaining) == 1:
                    return candidate.atom, remaining[0]
                return candidate.atom, And(tuple(remaining))
        raise BackendError(
            "existential quantification must be guarded by a relational atom "
            "covering the quantified variables to be compiled to SQL"
        )

    def _atom_scope(
        self,
        atom: Atom,
        alias: str,
        scope: Scope,
        quantified: Sequence[Variable],
    ) -> Tuple[Scope, List[str]]:
        """Extend the scope with the atom's columns and emit join conditions."""
        quantified_names = {v.name for v in quantified}
        new_scope = dict(scope)
        conditions: List[str] = []
        attribute_names = atom.signature.attribute_names
        for position, term in enumerate(atom.terms):
            column = f"{alias}.{quote_identifier(attribute_names[position])}"
            if is_variable(term):
                if term.name in quantified_names and term.name not in scope:
                    if term.name in new_scope and new_scope[term.name] != column:
                        conditions.append(f"{column} = {new_scope[term.name]}")
                    else:
                        new_scope[term.name] = column
                elif term.name in new_scope:
                    conditions.append(f"{column} = {new_scope[term.name]}")
                else:
                    # An unquantified, unbound variable: treat the column as its
                    # binding (happens for guards repeating outer atoms).
                    new_scope[term.name] = column
            else:
                conditions.append(sql_comparison(column, "=", term))
        return new_scope, conditions

    # -- leaves -------------------------------------------------------------------------------

    def _compile_atom_membership(self, atom: Atom, scope: Scope) -> str:
        """Membership test for an atom whose variables are all in scope."""
        alias = self._fresh_alias()
        attribute_names = atom.signature.attribute_names
        conditions = []
        for position, term in enumerate(atom.terms):
            column = f"{alias}.{quote_identifier(attribute_names[position])}"
            if is_variable(term):
                conditions.append(f"{column} = {self._term_sql(term, scope)}")
            else:
                conditions.append(sql_comparison(column, "=", term))
        table = quote_identifier(atom.relation)
        where = " AND ".join(conditions) if conditions else "1 = 1"
        return f"EXISTS (SELECT 1 FROM {table} AS {alias} WHERE {where})"

    def _compile_comparison(self, comparison: Comparison, scope: Scope) -> str:
        operator = "=" if comparison.operator == "=" else comparison.operator
        if operator == "!=":
            operator = "<>"
        # Constant sides go through the exactness-preserving translation:
        # rationals without an exact SQL form need the comparison, not the
        # literal, to be compiled.
        right_value = self._constant_value(comparison.right)
        if right_value is not None:
            return sql_comparison(
                self._term_sql(comparison.left, scope), operator, right_value
            )
        left_value = self._constant_value(comparison.left)
        if left_value is not None:
            return sql_comparison(
                self._term_sql(comparison.right, scope),
                mirror_operator(operator),
                left_value,
            )
        left = self._term_sql(comparison.left, scope)
        right = self._term_sql(comparison.right, scope)
        return f"{left} {operator} {right}"

    @staticmethod
    def _constant_value(term):
        if isinstance(term, NumericalConstant):
            return term.value
        if isinstance(term, (NumericalVariable,)) or is_variable(term):
            return None
        return term

    def _term_sql(self, term, scope: Scope) -> str:
        if isinstance(term, NumericalConstant):
            return sql_literal(term.value)
        if isinstance(term, NumericalVariable):
            term = term.variable
        if is_variable(term):
            try:
                return scope[term.name]
            except KeyError as exc:
                raise BackendError(
                    f"variable {term.name!r} is not bound in the SQL scope"
                ) from exc
        return sql_literal(term)

    def _fresh_alias(self) -> str:
        return f"q{next(self._alias_counter)}"
