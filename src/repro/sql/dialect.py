"""Small SQL dialect helpers shared by the compiler, generator and backend.

The generated SQL sticks to the common subset of SQLite and PostgreSQL:
quoted identifiers, standard aggregate functions, correlated ``EXISTS`` /
``NOT EXISTS`` subqueries, and ``WITH`` common table expressions.  The paper's
practical motivation is exactly this: AGGR[FOL] rewritings are "well-suited
for implementation in SQL, allowing them to benefit from existing DBMS
technology".
"""

from __future__ import annotations

from fractions import Fraction

from repro.datamodel.facts import Constant, is_numeric_constant

#: Aggregate symbols that map directly onto SQL aggregate functions.
SQL_AGGREGATES = {
    "SUM": "SUM",
    "COUNT": "COUNT",
    "MIN": "MIN",
    "MAX": "MAX",
    "AVG": "AVG",
}


def quote_identifier(name: str) -> str:
    """Quote an identifier for SQL (doubling embedded quotes)."""
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def sql_literal(value: Constant) -> str:
    """Render a Python constant as a SQL literal."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return repr(float(value))
    if is_numeric_constant(value):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def sql_aggregate_function(aggregate: str) -> str:
    """SQL function name for an aggregate symbol (COUNT is emitted as SUM of 1s
    by the generator, so only the directly supported symbols appear here)."""
    try:
        return SQL_AGGREGATES[aggregate.upper()]
    except KeyError as exc:
        raise ValueError(f"aggregate {aggregate!r} has no SQL counterpart") from exc
