"""Small SQL dialect helpers shared by the compiler, generator and backend.

The generated SQL sticks to the common subset of SQLite and PostgreSQL:
quoted identifiers, standard aggregate functions, correlated ``EXISTS`` /
``NOT EXISTS`` subqueries, and ``WITH`` common table expressions.  The paper's
practical motivation is exactly this: AGGR[FOL] rewritings are "well-suited
for implementation in SQL, allowing them to benefit from existing DBMS
technology".
"""

from __future__ import annotations

from fractions import Fraction

from repro.datamodel.facts import Constant, is_numeric_constant
from repro.exceptions import BackendError

#: Aggregate symbols that map directly onto SQL aggregate functions.
SQL_AGGREGATES = {
    "SUM": "SUM",
    "COUNT": "COUNT",
    "MIN": "MIN",
    "MAX": "MAX",
    "AVG": "AVG",
}


def quote_identifier(name: str) -> str:
    """Quote an identifier for SQL (doubling embedded quotes)."""
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def sql_literal(value: Constant) -> str:
    """Render a Python constant as a SQL literal, exactly.

    Rationals are emitted only when the SQL value round-trips: integers as
    INTEGER literals, dyadic fractions as the REAL literal that parses back
    to the very same value.  A rational with no exact SQL representation
    (1/3, …) raises :class:`BackendError` instead of silently emitting a
    nearby float — conditions against such values go through
    :func:`sql_comparison`, which compiles them exactly.
    """
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        try:
            as_float = float(value)
        except OverflowError:
            as_float = None
        if as_float is None or Fraction(as_float) != value:
            raise BackendError(
                f"rational {value} has no exact SQL representation; the SQL "
                "backend refuses to approximate (the exact evaluators would "
                "disagree) — conditions can use sql_comparison() instead"
            )
        return repr(as_float)
    if is_numeric_constant(value):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


_MIRRORED_OPERATORS = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def mirror_operator(operator: str) -> str:
    """The operator for swapped operands: ``a < b`` ⟺ ``b > a``."""
    try:
        return _MIRRORED_OPERATORS["<>" if operator == "!=" else operator]
    except KeyError as exc:
        raise BackendError(f"unsupported SQL comparison operator {operator!r}") from exc


def sql_comparison(column: str, operator: str, value: Constant) -> str:
    """Compile ``column <operator> value`` exactly, even for 1/3-like rationals.

    Every number the backend stores is exactly an SQL INTEGER or REAL
    (``load_instance`` rejects the rest), so a rational with no exact SQL
    form can never *equal* a stored value, and its order relative to stored
    values is decided by the nearest float and its rounding direction.  That
    turns the lossy ``column = 0.3333…`` (which false-matches the stored
    float) into a constant-false condition, and ``column < 1/3`` into the
    float comparison with the exact-faithful strictness.
    """
    if operator == "!=":
        operator = "<>"
    if operator not in _MIRRORED_OPERATORS:
        raise BackendError(f"unsupported SQL comparison operator {operator!r}")
    if not isinstance(value, Fraction):
        return f"{column} {operator} {sql_literal(value)}"
    try:
        nearest = float(value)
        drift = (Fraction(nearest) > value) - (Fraction(nearest) < value)
    except OverflowError:
        nearest = None
        drift = -1 if value > 0 else 1  # beyond the float range on that side
    if drift == 0:
        return f"{column} {operator} {sql_literal(value)}"
    if operator == "=":
        return "1 = 0"
    if operator == "<>":
        return "1 = 1"
    if nearest is None:
        # value sits beyond every storable number on one side.
        below = value > 0  # every stored number is below value
        wants_smaller = operator in ("<", "<=")
        return "1 = 1" if below == wants_smaller else "1 = 0"
    literal = repr(nearest)
    if operator in ("<", "<="):
        # No stored number equals value, so < and <= coincide; the nearest
        # float is included exactly when it rounded down (drift < 0).
        return f"{column} {'<=' if drift < 0 else '<'} {literal}"
    return f"{column} {'>' if drift < 0 else '>='} {literal}"


def sql_aggregate_function(aggregate: str) -> str:
    """SQL function name for an aggregate symbol (COUNT is emitted as SUM of 1s
    by the generator, so only the directly supported symbols appear here)."""
    try:
        return SQL_AGGREGATES[aggregate.upper()]
    except KeyError as exc:
        raise ValueError(f"aggregate {aggregate!r} has no SQL counterpart") from exc
