"""Generation of the SQL glb rewriting (the Fig. 5 pipeline as SQL CTEs).

For a closed query ``AGG(r) <- q(ū)`` with a monotone + associative aggregate
and an acyclic attack graph, the generator emits two SQL statements:

* ``certainty_sql`` — returns 1 when every repair satisfies the body (the
  ⊥-guard), compiled from the consistent first-order rewriting;
* ``value_sql`` — a ``WITH`` pipeline:

  - ``forall_emb``: one row per ∀embedding (the base join filtered by the
    compiled ω-conditions of Lemma 4.3), carrying every query variable and
    the aggregated value;
  - one pair of grouping steps per atom of the topological sort, from the last
    atom back to the first: group by the prefix variables plus the key of the
    atom and take ``MIN(val)`` (choose the cheapest extension of a
    ∀key-embedding), then group by the prefix variables alone and apply the
    query's aggregate (the Decomposition Lemma);
  - the final level returns the glb.

COUNT queries are translated to ``SUM(1)``; MIN queries use the simple
rewriting of Theorem 7.10 (plain MIN over the body join).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.aggregates.properties import is_covered_by_separation_theorem
from repro.attacks.attack_graph import AttackGraph
from repro.certainty.rewriting import ConsistentRewriter
from repro.core.evaluator import _normalise_query
from repro.exceptions import BackendError, NotRewritableError, UnsupportedAggregateError
from repro.query.aggregation import AggregationQuery
from repro.query.atom import Atom
from repro.query.terms import is_variable
from repro.sql.compiler import FormulaSqlCompiler
from repro.sql.dialect import (
    quote_identifier,
    sql_aggregate_function,
    sql_comparison,
    sql_literal,
)


@dataclass(frozen=True)
class GeneratedSql:
    """The SQL artefacts of one rewriting."""

    query: AggregationQuery
    certainty_sql: str
    value_sql: str
    base_join_sql: str

    def describe(self) -> str:
        return (
            f"-- query: {self.query}\n"
            f"-- certainty (⊥ guard)\n{self.certainty_sql};\n\n"
            f"-- glb value\n{self.value_sql};\n"
        )


class SqlRewritingGenerator:
    """Builds the SQL glb rewriting for a closed query in AGGR[sjfBCQ]."""

    def __init__(self, query: AggregationQuery) -> None:
        if query.free_variables:
            raise BackendError(
                "the SQL generator handles closed queries; instantiate free "
                "variables first (the backend does this automatically)"
            )
        query.body.require_self_join_free()
        self._original = query
        self._query, self._operator = _normalise_query(query)
        self._graph = AttackGraph(self._query.body)
        if not self._graph.is_acyclic():
            raise NotRewritableError(
                "attack graph is cyclic; no SQL rewriting exists (Theorem 5.5)"
            )
        if self._operator.name != "MIN" and not is_covered_by_separation_theorem(
            self._operator
        ):
            raise UnsupportedAggregateError(
                f"aggregate {self._operator.name} is not covered by the SQL "
                "rewriting (Theorem 6.1 requires monotonicity and associativity)"
            )
        self._order: List[Atom] = self._graph.topological_sort()
        self._aliases = {atom: f"a{i}" for i, atom in enumerate(self._order)}
        self._columns = self._column_scope()

    # -- public API -------------------------------------------------------------------

    def generate(self) -> GeneratedSql:
        certainty_sql = self._certainty_sql()
        if self._operator.name == "MIN":
            value_sql = self._min_value_sql()
        else:
            value_sql = self._pipeline_value_sql()
        return GeneratedSql(
            self._original, certainty_sql, value_sql, self._base_join_sql(False)
        )

    # -- scope / base join -----------------------------------------------------------------

    def _column_scope(self) -> Dict[str, str]:
        """First column expression for every variable of the body."""
        scope: Dict[str, str] = {}
        for atom in self._order:
            alias = self._aliases[atom]
            names = atom.signature.attribute_names
            for position, term in enumerate(atom.terms):
                if is_variable(term) and term.name not in scope:
                    scope[term.name] = f"{alias}.{quote_identifier(names[position])}"
        return scope

    def _join_conditions(self) -> List[str]:
        conditions: List[str] = []
        for atom in self._order:
            alias = self._aliases[atom]
            names = atom.signature.attribute_names
            for position, term in enumerate(atom.terms):
                column = f"{alias}.{quote_identifier(names[position])}"
                if is_variable(term):
                    if self._columns[term.name] != column:
                        conditions.append(f"{column} = {self._columns[term.name]}")
                else:
                    conditions.append(sql_comparison(column, "=", term))
        return conditions

    def _from_clause(self) -> str:
        parts = [
            f"{quote_identifier(atom.relation)} AS {self._aliases[atom]}"
            for atom in self._order
        ]
        return ", ".join(parts)

    def _value_expression(self) -> str:
        term = self._query.aggregated_term
        if is_variable(term):
            return self._columns[term.name]
        return sql_literal(term)

    def _variable_select_list(self) -> List[str]:
        return [
            f"{self._columns[name]} AS {quote_identifier('v_' + name)}"
            for name in sorted(self._columns)
        ]

    def _base_join_sql(self, with_forall_conditions: bool) -> str:
        select_list = self._variable_select_list() + [
            f"{self._value_expression()} AS val"
        ]
        conditions = self._join_conditions()
        if with_forall_conditions:
            conditions = conditions + self._forall_conditions()
        where = " AND ".join(f"({c})" for c in conditions) if conditions else "1 = 1"
        return (
            f"SELECT {', '.join(select_list)} FROM {self._from_clause()} WHERE {where}"
        )

    # -- ∀embedding conditions --------------------------------------------------------------------

    def _forall_conditions(self) -> List[str]:
        rewriter = ConsistentRewriter(self._query.body)
        compiler = FormulaSqlCompiler()
        conditions: List[str] = []
        bound: set = set()
        for index, atom in enumerate(self._order):
            suffix = self._order[index:]
            bound_for_omega = bound | {v.name for v in atom.key_variables}
            omega = rewriter.suffix_rewriting(suffix, bound_for_omega)
            scope = {name: self._columns[name] for name in bound_for_omega}
            conditions.append(compiler.compile(omega, scope))
            bound |= {v.name for v in atom.variables}
        return conditions

    # -- certainty -----------------------------------------------------------------------------------

    def _certainty_sql(self) -> str:
        rewriter = ConsistentRewriter(self._query.body)
        compiler = FormulaSqlCompiler()
        return compiler.compile_sentence(rewriter.rewriting())

    # -- value pipelines --------------------------------------------------------------------------------

    def _min_value_sql(self) -> str:
        return f"SELECT MIN(val) AS glb FROM ({self._base_join_sql(False)})"

    def _pipeline_value_sql(self) -> str:
        aggregate_fn = sql_aggregate_function(self._operator.name)
        ctes = [f"forall_emb AS ({self._base_join_sql(True)})"]
        previous = "forall_emb"
        n = len(self._order)
        prefix_vars: List[List[str]] = [[]]
        for atom in self._order:
            prefix_vars.append(
                sorted(set(prefix_vars[-1]) | {v.name for v in atom.variables})
            )
        for level in range(n - 1, -1, -1):
            atom = self._order[level]
            prefix = prefix_vars[level]
            key_names = sorted(
                set(prefix) | {v.name for v in atom.key_variables}
            )
            prefix_cols = [quote_identifier("v_" + name) for name in prefix]
            key_cols = [quote_identifier("v_" + name) for name in key_names]
            inner_select = ", ".join(key_cols + ["MIN(val) AS val"]) if key_cols else "MIN(val) AS val"
            inner_group = f" GROUP BY {', '.join(key_cols)}" if key_cols else ""
            outer_select = ", ".join(prefix_cols + [f"{aggregate_fn}(val) AS val"]) if prefix_cols else f"{aggregate_fn}(val) AS val"
            outer_group = f" GROUP BY {', '.join(prefix_cols)}" if prefix_cols else ""
            cte_name = f"lvl_{level}"
            ctes.append(
                f"{cte_name} AS (SELECT {outer_select} FROM "
                f"(SELECT {inner_select} FROM {previous}{inner_group})"
                f"{outer_group})"
            )
            previous = cte_name
        with_clause = ",\n".join(ctes)
        return f"WITH {with_clause}\nSELECT val AS glb FROM {previous}"
