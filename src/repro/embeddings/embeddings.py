"""Embeddings of conjunctive queries into database instances."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.datamodel.facts import Constant
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.valuation import Valuation
from repro.query.conjunctive import ConjunctiveQuery


def embeddings_of(
    query: ConjunctiveQuery,
    instance: DatabaseInstance,
    binding: Optional[Dict[str, Constant]] = None,
) -> List[Valuation]:
    """All embeddings of the query body into the instance.

    An embedding is a valuation over ``vars(q)`` mapping every atom to a fact
    of the instance.  ``binding`` optionally pre-assigns some variables.
    """
    results: List[Valuation] = []

    def backtrack(index: int, current: Dict[str, Constant]) -> None:
        if index == len(query.atoms):
            results.append(Valuation(current))
            return
        atom = query.atoms[index]
        for fact in instance.relation(atom.relation):
            grounded = atom.apply_valuation(current)
            match = grounded.match(fact)
            if match is None:
                continue
            extended = dict(current)
            extended.update(match)
            backtrack(index + 1, extended)

    backtrack(0, dict(binding or {}))
    # Deduplicate (two different fact choices can induce the same valuation
    # only when atoms are subsumed, which cannot happen for self-join-free
    # queries, but the guard keeps the function total).
    unique: List[Valuation] = []
    seen = set()
    for valuation in results:
        key = tuple(sorted(valuation.items(), key=lambda kv: kv[0]))
        if key not in seen:
            seen.add(key)
            unique.append(valuation)
    return unique


def embeddings_satisfy_key_constraints(
    query: ConjunctiveQuery, embeddings: Iterable[Valuation]
) -> bool:
    """``M |= K(q)``: check the key FDs of the query over a set of embeddings.

    For every atom ``F``, any two embeddings that agree on ``Key(F)`` must
    agree on ``vars(F)``.
    """
    embeddings = list(embeddings)
    for atom in query.atoms:
        key_names = sorted(v.name for v in atom.key_variables)
        all_names = sorted(v.name for v in atom.variables)
        seen: Dict[tuple, tuple] = {}
        for valuation in embeddings:
            key_value = tuple(valuation[name] for name in key_names)
            full_value = tuple(valuation[name] for name in all_names)
            if key_value in seen and seen[key_value] != full_value:
                return False
            seen.setdefault(key_value, full_value)
    return True
