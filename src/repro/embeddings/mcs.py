"""Maximal consistent subsets (MCS) of a set of embeddings (Definition 6.2).

Given a set ``M`` of embeddings of a query ``q``, an MCS is a ⊆-maximal subset
that satisfies ``K(q)``.  Satisfaction of key FDs is a pairwise condition, so
the MCSs of ``M`` are exactly the maximal independent sets of the *conflict
graph* on ``M`` (two embeddings conflict when they agree on the key of some
atom but disagree on its variables).  Enumeration is exponential in general;
this module is used for ground truth on small inputs (Corollary 6.4).
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set

from repro.datamodel.valuation import Valuation
from repro.query.conjunctive import ConjunctiveQuery


def _conflicts(
    query: ConjunctiveQuery, first: Valuation, second: Valuation
) -> bool:
    """True when {first, second} violates some key FD of the query."""
    for atom in query.atoms:
        key_names = sorted(v.name for v in atom.key_variables)
        all_names = sorted(v.name for v in atom.variables)
        if all(first[n] == second[n] for n in key_names) and any(
            first[n] != second[n] for n in all_names
        ):
            return True
    return False


def maximal_consistent_subsets(
    query: ConjunctiveQuery, embeddings: Sequence[Valuation]
) -> List[List[Valuation]]:
    """All MCSs of ``embeddings`` relative to ``K(q)``.

    Implemented as maximal-independent-set enumeration over the conflict
    graph (Bron–Kerbosch on the complement graph).  Intended for small inputs.
    """
    embeddings = list(embeddings)
    n = len(embeddings)
    if n == 0:
        return [[]]

    conflict: List[Set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if _conflicts(query, embeddings[i], embeddings[j]):
                conflict[i].add(j)
                conflict[j].add(i)

    # Maximal independent sets of the conflict graph are maximal cliques of its
    # complement; use Bron–Kerbosch with pivoting on the complement adjacency.
    complement: List[Set[int]] = [
        set(range(n)) - conflict[i] - {i} for i in range(n)
    ]
    results: List[FrozenSet[int]] = []

    def bron_kerbosch(r: Set[int], p: Set[int], x: Set[int]) -> None:
        if not p and not x:
            results.append(frozenset(r))
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda v: len(complement[v] & p))
        for vertex in list(p - complement[pivot]):
            bron_kerbosch(
                r | {vertex}, p & complement[vertex], x & complement[vertex]
            )
            p.remove(vertex)
            x.add(vertex)

    bron_kerbosch(set(), set(range(n)), set())
    return [
        [embeddings[i] for i in sorted(subset)]
        for subset in sorted(results, key=lambda s: sorted(s))
    ]
