"""∀embeddings (Section 4) — direct computation and the Lemma 4.3 formula.

An ℓ-∀embedding extends an (ℓ−1)-∀embedding with values for the ℓ-th atom of
a topological sort such that, once the key of the ℓ-th atom is fixed, the
remaining suffix of the query is certain (true in every repair).  The set of
(full) ∀embeddings is the input of the MCS characterisation of Corollary 6.4
and of the operational GLB evaluator.

Two computations are offered:

* :class:`ForallEmbeddingComputer` — a direct polynomial-time algorithm that
  mirrors the inductive definition, using the recursive certainty checker.
* :func:`forall_embedding_formula` — the first-order formula of Lemma 4.3
  (``ψ_n``), built from consistent rewritings of query suffixes; it can be
  evaluated with :mod:`repro.fol.evaluation` and compiled to SQL.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.attacks.attack_graph import AttackGraph
from repro.certainty.checker import certain_suffix_holds
from repro.certainty.rewriting import ConsistentRewriter
from repro.datamodel.facts import Constant
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.valuation import Valuation
from repro.exceptions import NotRewritableError
from repro.fol.builders import conjunction
from repro.fol.syntax import Formula, RelationAtom
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery

Binding = Dict[str, Constant]


class ForallEmbeddingComputer:
    """Computes ℓ-∀embeddings and ∀embeddings of an acyclic sjfBCQ query."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        instance: DatabaseInstance,
        order: Optional[Sequence[Atom]] = None,
    ) -> None:
        query.require_self_join_free()
        self._query = query
        self._instance = instance
        self._graph = AttackGraph(query)
        if not self._graph.is_acyclic():
            raise NotRewritableError(
                "∀embeddings are defined relative to an acyclic attack graph"
            )
        self._order: List[Atom] = list(order or self._graph.topological_sort())
        if set(self._order) != set(query.atoms):
            raise ValueError("order must be a permutation of the query atoms")
        frozen = {v.name for v in query.free_variables}
        self._frozen = frozen

    # -- public API ---------------------------------------------------------------

    @property
    def order(self) -> List[Atom]:
        return list(self._order)

    def query_is_certain(self, binding: Optional[Binding] = None) -> bool:
        """True when every repair satisfies the query (the 0-∀embedding exists)."""
        return certain_suffix_holds(self._order, self._instance, dict(binding or {}))

    def level_embeddings(
        self, level: int, binding: Optional[Binding] = None
    ) -> List[Valuation]:
        """All ℓ-∀embeddings for ``level = ℓ`` (0 ≤ ℓ ≤ n)."""
        base = dict(binding or {})
        if not self.query_is_certain(base):
            return []
        partials: List[Binding] = [dict(base)]
        for position in range(level):
            partials = self._extend_level(partials, position)
        covered = self._variables_up_to(level) | set(base)
        return [Valuation({k: v for k, v in p.items() if k in covered}) for p in partials]

    def forall_embeddings(self, binding: Optional[Binding] = None) -> List[Valuation]:
        """All (n-)∀embeddings of the query in the instance."""
        return self.level_embeddings(len(self._order), binding)

    # -- internals ----------------------------------------------------------------

    def _variables_up_to(self, level: int) -> Set[str]:
        names: Set[str] = set(self._frozen)
        for atom in self._order[:level]:
            names |= {v.name for v in atom.variables}
        return names

    def _extend_level(self, partials: List[Binding], position: int) -> List[Binding]:
        """Extend (ℓ−1)-∀embeddings to ℓ-∀embeddings for ``ℓ = position + 1``."""
        atom = self._order[position]
        suffix = self._order[position:]
        remaining_suffix = self._order[position + 1:]
        extended_list: List[Binding] = []
        seen: Set[Tuple] = set()
        for partial in partials:
            for fact in self._instance.relation(atom.relation):
                grounded = atom.apply_valuation(partial)
                match = grounded.match(fact)
                if match is None:
                    continue
                extended = dict(partial)
                extended.update(match)
                # The ℓ-embedding condition: the partial valuation must extend
                # to a full embedding of the query in the instance.
                if remaining_suffix and not self._extendable(remaining_suffix, extended):
                    continue
                # The ∀-condition: with the key of the ℓ-th atom fixed, the
                # suffix must hold in every repair.
                key_binding = dict(partial)
                for variable in atom.key_variables:
                    key_binding[variable.name] = extended[variable.name]
                if not certain_suffix_holds(suffix, self._instance, key_binding):
                    continue
                signature = tuple(sorted(extended.items(), key=lambda kv: kv[0]))
                if signature not in seen:
                    seen.add(signature)
                    extended_list.append(extended)
        return extended_list

    def _extendable(self, atoms: Sequence[Atom], binding: Binding) -> bool:
        """Can ``binding`` be extended to satisfy all of ``atoms`` in the instance?"""
        if not atoms:
            return True
        first, rest = atoms[0], atoms[1:]
        for fact in self._instance.relation(first.relation):
            grounded = first.apply_valuation(binding)
            match = grounded.match(fact)
            if match is None:
                continue
            extended = dict(binding)
            extended.update(match)
            if self._extendable(rest, extended):
                return True
        return False


def forall_embeddings(
    query: ConjunctiveQuery,
    instance: DatabaseInstance,
    order: Optional[Sequence[Atom]] = None,
    binding: Optional[Binding] = None,
) -> List[Valuation]:
    """Convenience wrapper around :class:`ForallEmbeddingComputer`."""
    return ForallEmbeddingComputer(query, instance, order).forall_embeddings(binding)


def forall_embedding_formula(
    query: ConjunctiveQuery, order: Optional[Sequence[Atom]] = None
) -> Formula:
    """The formula ``ψ_n(ū)`` of Lemma 4.3.

    Its free variables are the variables of the query body; a valuation ``θ``
    over them satisfies the formula exactly when ``θ`` is a ∀embedding of the
    query in the database instance.  The construction conjoins, for every atom
    ``F_{j+1}`` of the topological sort, the consistent rewriting
    ``ω_{j+1}(ū_j, x̄_{j+1})`` of the query suffix and the atom itself.
    """
    query.require_self_join_free()
    rewriter = ConsistentRewriter(query)
    atoms = list(order or rewriter.topological_sort)
    if set(atoms) != set(query.atoms):
        raise ValueError("order must be a permutation of the query atoms")

    frozen = {v.name for v in query.free_variables}
    conjuncts: List[Formula] = []
    bound: Set[str] = set(frozen)
    for position, atom in enumerate(atoms):
        suffix = atoms[position:]
        bound_for_omega = bound | {v.name for v in atom.key_variables}
        omega = rewriter.suffix_rewriting(suffix, bound_for_omega)
        conjuncts.append(omega)
        conjuncts.append(RelationAtom(atom))
        bound |= {v.name for v in atom.variables}
    return conjunction(conjuncts)
