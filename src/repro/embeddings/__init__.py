"""Embeddings, ∀embeddings and maximal consistent subsets."""

from repro.embeddings.embeddings import (
    embeddings_of,
    embeddings_satisfy_key_constraints,
)
from repro.embeddings.forall import (
    ForallEmbeddingComputer,
    forall_embedding_formula,
    forall_embeddings,
)
from repro.embeddings.mcs import maximal_consistent_subsets

__all__ = [
    "embeddings_of",
    "embeddings_satisfy_key_constraints",
    "ForallEmbeddingComputer",
    "forall_embeddings",
    "forall_embedding_formula",
    "maximal_consistent_subsets",
]
