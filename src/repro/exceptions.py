"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A relation signature or schema is malformed or inconsistent."""


class QueryError(ReproError):
    """A query is malformed (wrong arity, self-join where forbidden, ...)."""


class ParseError(QueryError):
    """Raised by the Datalog-like and SQL parsers on invalid input."""


class NotSelfJoinFreeError(QueryError):
    """The conjunctive query contains two atoms with the same relation name."""


class NotRewritableError(ReproError):
    """The query falls on the negative side of the separation theorem.

    Raised when a consistent rewriting (first-order or aggregate) is requested
    for a query whose attack graph is cyclic, or whose aggregate operator is
    not covered by the positive results of the paper.
    """


class UnsupportedAggregateError(ReproError):
    """The aggregate operator does not support the requested computation."""


class EvaluationError(ReproError):
    """A formula or query could not be evaluated on the given instance."""


class BackendError(ReproError):
    """The SQL backend failed to create, load or query the database."""
