"""Experiment harness: regenerate the paper's figures and systems-style tables."""

from repro.experiments.figures import (
    FigureResult,
    all_figure_results,
    reproduce_example44_superfrugal,
    reproduce_fig1_example,
    reproduce_fig2_attack_graph,
    reproduce_fig35_running_example,
    reproduce_groupby_example,
    reproduce_minmax_example,
    reproduce_theorem79_refutation,
)
from repro.experiments.harness import (
    ExperimentRow,
    format_table,
    run_decision_procedure_timing,
    run_scalability_experiment,
    run_solver_agreement_experiment,
)

__all__ = [
    "FigureResult",
    "all_figure_results",
    "reproduce_fig1_example",
    "reproduce_fig2_attack_graph",
    "reproduce_fig35_running_example",
    "reproduce_example44_superfrugal",
    "reproduce_groupby_example",
    "reproduce_minmax_example",
    "reproduce_theorem79_refutation",
    "ExperimentRow",
    "format_table",
    "run_scalability_experiment",
    "run_solver_agreement_experiment",
    "run_decision_procedure_timing",
]
