"""Reproduction of every figure / worked example in the paper.

The paper is a theory paper: its "evaluation" consists of worked examples
whose exact values are stated in the text.  Each function below recomputes one
of them with the library and reports the paper's value next to the measured
one; the benchmarks in ``benchmarks/`` time the same computations.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.attacks.attack_graph import AttackGraph
from repro.baselines.branch_and_bound import BranchAndBoundSolver
from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.baselines.fuxman import FuxmanIndependentBlockSolver, is_caggforest
from repro.core.evaluator import OperationalRangeEvaluator
from repro.core.minmax import MinMaxRangeEvaluator
from repro.core.range_answers import RangeConsistentAnswers
from repro.embeddings.forall import forall_embeddings
from repro.query.parser import parse_aggregation_query, parse_query
from repro.repairs.frugal import find_superfrugal_repairs
from repro.sql.backend import SqliteBackend
from repro.workloads.queries import (
    running_example_query,
    stock_groupby_query,
    stock_query,
    stock_sum_query,
)
from repro.workloads.scenarios import (
    fig1_stock_instance,
    fig1_stock_schema,
    fig3_running_example_instance,
    theorem79_gadget,
)


@dataclass
class FigureResult:
    """Outcome of one figure reproduction: expectations vs measurements."""

    experiment: str
    expected: Dict[str, object]
    measured: Dict[str, object]

    @property
    def matches(self) -> bool:
        return all(
            key in self.measured and self.measured[key] == value
            for key, value in self.expected.items()
        )

    def summary(self) -> str:
        lines = [f"[{self.experiment}] match={self.matches}"]
        for key, value in self.expected.items():
            lines.append(f"  {key}: paper={value} measured={self.measured.get(key)}")
        for key, value in self.measured.items():
            if key not in self.expected:
                lines.append(f"  {key}: measured={value}")
        return "\n".join(lines)


def reproduce_fig1_example() -> FigureResult:
    """E1: dbStock of Fig. 1 and query g0 of the introduction (glb = 70)."""
    instance = fig1_stock_instance()
    query = stock_sum_query()
    answers = RangeConsistentAnswers(query)
    glb = answers.glb(instance)
    lub = answers.lub(instance)
    exhaustive = ExhaustiveRangeSolver(query).range(instance)
    return FigureResult(
        "Fig. 1 / intro query g0",
        expected={"glb": Fraction(70)},
        measured={
            "glb": glb,
            "lub": lub,
            "exhaustive_glb": exhaustive[0],
            "exhaustive_lub": exhaustive[1],
            "repair_count": instance.repair_count(),
        },
    )


def reproduce_fig2_attack_graph() -> FigureResult:
    """E2: the attack graph of query q0 from Example 3.1 (Fig. 2)."""
    from repro.datamodel.signature import RelationSignature, Schema

    # Signatures reconstructed from the F^{+,q0} sets given in Example 3.1:
    # R(x, y), S(y, z, u), T(y, z, w), N(u, v, r), M(u, w).
    schema = Schema(
        [
            RelationSignature("R", 2, 1),
            RelationSignature("S", 3, 2),
            RelationSignature("T", 3, 2),
            RelationSignature("N", 3, 2),
            RelationSignature("M", 2, 2),
        ]
    )
    query = parse_query(schema, "R(x, y), S(y, z, u), T(y, z, w), N(u, v, r), M(u, w)")
    graph = AttackGraph(query)
    edges = {
        (source.relation, target.relation) for source, target in graph.edges()
    }
    r_attacks = {t for s, t in edges if s == "R"}
    return FigureResult(
        "Fig. 2 / Example 3.1 attack graph",
        expected={
            "acyclic": True,
            "R_attacks_M": True,
            "R_attacks_N": True,
        },
        measured={
            "acyclic": graph.is_acyclic(),
            "R_attacks_M": "M" in r_attacks,
            "R_attacks_N": "N" in r_attacks,
            "edges": sorted(edges),
        },
    )


def reproduce_fig35_running_example() -> FigureResult:
    """E3: the running example of Section 6.1 (Figs. 3-5): GLB-CQA(g0()) = 9."""
    instance = fig3_running_example_instance()
    query = running_example_query()
    forall = forall_embeddings(query.body, instance)
    operational = OperationalRangeEvaluator(query).glb(instance)
    sql_value = SqliteBackend().glb(query, instance)
    exhaustive = ExhaustiveRangeSolver(query).glb(instance)
    return FigureResult(
        "Fig. 3-5 / running example of Section 6.1",
        expected={
            "forall_embedding_count": 8,
            "glb_operational": Fraction(9),
            "glb_sql": Fraction(9),
            "glb_exhaustive": Fraction(9),
        },
        measured={
            "forall_embedding_count": len(forall),
            "glb_operational": operational,
            "glb_sql": sql_value,
            "glb_exhaustive": exhaustive,
        },
    )


def reproduce_example44_superfrugal() -> FigureResult:
    """E4: Examples 4.1/4.4 — the † repair of Fig. 1 is not superfrugal."""
    instance = fig1_stock_instance()
    schema = fig1_stock_schema()
    query = parse_query(schema, "Dealers('James', t), Stock(p, t, 35)")
    superfrugal = find_superfrugal_repairs(query, instance)
    from repro.datamodel.instance import DatabaseInstance
    from repro.repairs.frugal import is_superfrugal

    dagger_repair = DatabaseInstance.from_rows(
        schema,
        {
            "Dealers": [("Smith", "Boston"), ("James", "Boston")],
            "Stock": [
                ("Tesla X", "Boston", 35),
                ("Tesla Y", "Boston", 35),
                ("Tesla Y", "New York", 95),
            ],
        },
    )
    return FigureResult(
        "Examples 4.1 / 4.4 superfrugal repairs",
        expected={"dagger_repair_superfrugal": False},
        measured={
            "dagger_repair_superfrugal": is_superfrugal(dagger_repair, query, instance),
            "superfrugal_repair_count": len(superfrugal),
        },
    )


def reproduce_theorem79_refutation(edges: Optional[List[Tuple[str, str]]] = None) -> FigureResult:
    """E6: the Caggforest SUM query with -1 values (Theorem 7.9).

    The query is in Caggforest, yet the independent-block (ConQuer-style)
    evaluation differs from the true glb, illustrating why no correct
    rewriting can exist (the problem is NP-hard).
    """
    graph_edges = edges or [("v1", "v2"), ("v2", "v3"), ("v1", "v3")]
    schema, instance = theorem79_gadget(graph_edges)
    query = parse_aggregation_query(
        schema, "SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)"
    )
    exact = BranchAndBoundSolver(query, use_pruning=False).glb(instance)
    fuxman = FuxmanIndependentBlockSolver(query).glb(instance)
    return FigureResult(
        "Theorem 7.9 refutation gadget",
        expected={"in_caggforest": True, "fuxman_equals_exact": False},
        measured={
            "in_caggforest": is_caggforest(query),
            "fuxman_equals_exact": fuxman == exact,
            "exact_glb": exact,
            "fuxman_glb": fuxman,
        },
    )


def reproduce_minmax_example() -> FigureResult:
    """E10: MIN/MAX range answers on dbStock (Theorem 7.11)."""
    instance = fig1_stock_instance()
    max_query = stock_query("MAX")
    min_query = stock_query("MIN")
    max_eval = MinMaxRangeEvaluator(max_query)
    min_eval = MinMaxRangeEvaluator(min_query)
    exhaustive_max = ExhaustiveRangeSolver(max_query).range(instance)
    exhaustive_min = ExhaustiveRangeSolver(min_query).range(instance)
    return FigureResult(
        "MIN/MAX on dbStock (Theorems 7.10, 7.11)",
        expected={
            "max_glb": exhaustive_max[0],
            "max_lub": exhaustive_max[1],
            "min_glb": exhaustive_min[0],
            "min_lub": exhaustive_min[1],
        },
        measured={
            "max_glb": max_eval.glb(instance),
            "max_lub": max_eval.lub(instance),
            "min_glb": min_eval.glb(instance),
            "min_lub": min_eval.lub(instance),
        },
    )


def reproduce_groupby_example() -> FigureResult:
    """E11: the per-dealer GROUP BY query of Section 1 on dbStock."""
    instance = fig1_stock_instance()
    query = stock_groupby_query()
    answers = RangeConsistentAnswers(query).answers(instance)
    exhaustive = {
        candidate: ExhaustiveRangeSolver(query).range(
            instance, {query.free_variables[0].name: candidate[0]}
        )
        for candidate in answers
    }
    measured = {
        f"glb[{candidate[0]}]": answer.glb for candidate, answer in answers.items()
    }
    measured.update(
        {f"lub[{candidate[0]}]": answer.lub for candidate, answer in answers.items()}
    )
    expected = {
        f"glb[{candidate[0]}]": values[0] for candidate, values in exhaustive.items()
    }
    expected.update(
        {f"lub[{candidate[0]}]": values[1] for candidate, values in exhaustive.items()}
    )
    return FigureResult(
        "GROUP BY per-dealer totals (Section 6.2)", expected=expected, measured=measured
    )


def all_figure_results() -> List[FigureResult]:
    """Run every figure reproduction and return the results."""
    return [
        reproduce_fig1_example(),
        reproduce_fig2_attack_graph(),
        reproduce_fig35_running_example(),
        reproduce_example44_superfrugal(),
        reproduce_theorem79_refutation(),
        reproduce_minmax_example(),
        reproduce_groupby_example(),
    ]
