"""Experiment harness: scalability, solver agreement and decision timing.

These functions produce the rows behind the systems-style tables recorded in
EXPERIMENTS.md (E5, E8, E9) and are what the corresponding benchmarks time.
All execution paths go through :class:`~repro.engine.ConsistentAnswerEngine`,
so the plans that pass the paper's figures are the same ones that drive the
throughput numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.branch_and_bound import BranchAndBoundSolver
from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.core.rewriter import GlbRewriter
from repro.datamodel.signature import RelationSignature
from repro.engine import AnswerOptions, ConsistentAnswerEngine
from repro.query.aggregation import AggregationQuery
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import Variable
from repro.workloads.generators import generate_stock_workload
from repro.workloads.queries import stock_sum_query


@dataclass
class ExperimentRow:
    """One row of an experiment table."""

    label: str
    parameters: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)


def format_table(rows: Sequence[ExperimentRow]) -> str:
    """Render experiment rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    param_keys: List[str] = []
    metric_keys: List[str] = []
    for row in rows:
        for key in row.parameters:
            if key not in param_keys:
                param_keys.append(key)
        for key in row.metrics:
            if key not in metric_keys:
                metric_keys.append(key)
    headers = ["experiment"] + param_keys + metric_keys
    table_rows = []
    for row in rows:
        table_rows.append(
            [row.label]
            + [str(row.parameters.get(key, "")) for key in param_keys]
            + [str(row.metrics.get(key, "")) for key in metric_keys]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table_rows)) for i in range(len(headers))
    ]
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in table_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _timed(function: Callable[[], object]) -> Tuple[object, float]:
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def run_scalability_experiment(
    sizes: Sequence[int] = (50, 100, 200),
    inconsistency: float = 0.2,
    include_exhaustive_up_to: int = 0,
    include_branch_and_bound_up_to: int = 100,
    seed: int = 0,
) -> List[ExperimentRow]:
    """E8: rewriting vs branch-and-bound vs exhaustive on growing databases.

    Exhaustive enumeration is only attempted up to
    ``include_exhaustive_up_to`` Stock blocks (its cost is exponential), and
    branch-and-bound up to ``include_branch_and_bound_up_to``.
    """
    query = stock_sum_query("dealer0")
    instances = generate_stock_workload(sizes, inconsistency, seed)
    operational = ConsistentAnswerEngine(backend="operational")
    sql = ConsistentAnswerEngine(backend="sqlite")
    rows: List[ExperimentRow] = []
    for size, instance in instances.items():
        metrics: Dict[str, object] = {"facts": len(instance)}
        value, seconds = _timed(lambda: operational.glb(query, instance))
        metrics["rewriting_glb"] = value
        metrics["rewriting_seconds"] = round(seconds, 4)
        value, seconds = _timed(lambda: sql.glb(query, instance))
        metrics["sql_glb"] = value
        metrics["sql_seconds"] = round(seconds, 4)
        if size <= include_branch_and_bound_up_to:
            value, seconds = _timed(lambda: BranchAndBoundSolver(query).glb(instance))
            metrics["bnb_glb"] = value
            metrics["bnb_seconds"] = round(seconds, 4)
        if include_exhaustive_up_to and size <= include_exhaustive_up_to:
            value, seconds = _timed(lambda: ExhaustiveRangeSolver(query).glb(instance))
            metrics["exhaustive_glb"] = value
            metrics["exhaustive_seconds"] = round(seconds, 4)
        rows.append(
            ExperimentRow(
                "scalability",
                parameters={"stock_blocks": size, "inconsistency": inconsistency},
                metrics=metrics,
            )
        )
    return rows


def run_solver_agreement_experiment(
    sizes: Sequence[int] = (10, 20, 30),
    inconsistency: float = 0.3,
    seed: int = 1,
) -> List[ExperimentRow]:
    """E9: the three execution paths agree on every generated instance."""
    query = stock_sum_query("dealer0")
    instances = generate_stock_workload(sizes, inconsistency, seed)
    operational_engine = ConsistentAnswerEngine(backend="operational")
    sql_engine = ConsistentAnswerEngine(backend="sqlite")
    rows: List[ExperimentRow] = []
    for size, instance in instances.items():
        operational = operational_engine.glb(query, instance)
        sql_value = sql_engine.glb(query, instance)
        bnb = BranchAndBoundSolver(query).glb(instance)
        rows.append(
            ExperimentRow(
                "agreement",
                parameters={"stock_blocks": size},
                metrics={
                    "operational": operational,
                    "sql": sql_value,
                    "branch_and_bound": bnb,
                    "all_agree": operational == sql_value == bnb,
                },
            )
        )
    return rows


def _chain_query(length: int) -> AggregationQuery:
    """A chain query R1(x1,x2), R2(x2,x3), ... with an acyclic attack graph."""
    signatures = [
        RelationSignature(f"R{i}", 2, 1, numeric_positions=(2,) if i == length else ())
        for i in range(1, length + 1)
    ]
    atoms = []
    for i, signature in enumerate(signatures, start=1):
        numeric = i == length
        atoms.append(
            Atom(
                signature,
                (
                    Variable(f"x{i}"),
                    Variable(f"x{i + 1}", numeric=numeric),
                ),
            )
        )
    body = ConjunctiveQuery(atoms)
    return AggregationQuery("SUM", Variable(f"x{length + 1}", numeric=True), body)


def run_engine_throughput_experiment(
    batch_size: int = 24,
    blocks: int = 100,
    inconsistency: float = 0.2,
    seed: int = 3,
    max_workers: Optional[int] = None,
) -> List[ExperimentRow]:
    """E10: plan-cache amortization and batched throughput through the engine.

    One row for cold compilation (fresh engine), one for cached evaluation
    of the same query, and one per batch mode (serial vs process fan-out)
    over ``batch_size`` instances of the stock workload.
    """
    query = stock_sum_query("dealer0")
    probe = generate_stock_workload([blocks], inconsistency, seed)[blocks]
    workload = [
        generate_stock_workload([blocks], inconsistency, seed + i)[blocks]
        for i in range(batch_size)
    ]
    rows: List[ExperimentRow] = []

    engine = ConsistentAnswerEngine()
    _, cold_seconds = _timed(lambda: engine.glb(query, probe))
    _, warm_seconds = _timed(lambda: engine.glb(query, probe))
    stats = engine.cache_stats()
    rows.append(
        ExperimentRow(
            "engine_plan_cache",
            parameters={"stock_blocks": blocks},
            metrics={
                "cold_seconds": round(cold_seconds, 6),
                "cached_seconds": round(warm_seconds, 6),
                "speedup": round(cold_seconds / warm_seconds, 2)
                if warm_seconds
                else float("inf"),
                "cache_hits": stats.hits,
                "cache_misses": stats.misses,
            },
        )
    )

    from repro.engine.batch import default_worker_count

    for label, workers in (("serial", 1), ("parallel", max_workers)):
        batch_engine = ConsistentAnswerEngine()
        items = [(query, instance) for instance in workload]
        results, seconds = _timed(
            lambda: batch_engine.answer_many(items, AnswerOptions(max_workers=workers))
        )
        effective = min(
            default_worker_count() if workers is None else max(1, workers),
            len(items),
        )
        rows.append(
            ExperimentRow(
                "engine_batch",
                parameters={"mode": label, "batch_size": batch_size},
                metrics={
                    "workers": effective,
                    "total_seconds": round(seconds, 4),
                    "items_per_second": round(len(results) / seconds, 1)
                    if seconds
                    else float("inf"),
                    "plans_reused": sum(1 for r in results if r.plan_cached),
                },
            )
        )
    return rows


def run_decision_procedure_timing(
    atom_counts: Sequence[int] = (2, 4, 6, 8, 10),
) -> List[ExperimentRow]:
    """E5: time the Theorem 1.1 decision + construction on growing queries."""
    rows: List[ExperimentRow] = []
    for count in atom_counts:
        query = _chain_query(count)
        rewriter = GlbRewriter(query)
        decision, decision_seconds = _timed(rewriter.is_rewritable)
        _, construction_seconds = _timed(rewriter.rewrite)
        rows.append(
            ExperimentRow(
                "decision_procedure",
                parameters={"atoms": count},
                metrics={
                    "rewritable": decision,
                    "decision_seconds": round(decision_seconds, 6),
                    "construction_seconds": round(construction_seconds, 6),
                },
            )
        )
    return rows
