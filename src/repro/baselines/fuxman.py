"""Fuxman's Cforest / Caggforest classes and a ConQuer-style SUM baseline.

Fuxman's PhD thesis [21] and the ConQuer system [22, 23] compute range
consistent answers for the class Caggforest by SQL rewriting.  Section 7.3 of
the paper shows that the published SUM rewriting is flawed once negative
numbers are allowed (Theorem 7.9 proves NP-hardness for a Caggforest query
with a ``-1`` value, so *no* correct rewriting can exist).

This module provides:

* :func:`fuxman_graph`, :func:`is_cforest`, :func:`is_caggforest` — the
  syntactic definitions of Appendix N;
* :class:`FuxmanIndependentBlockSolver` — a reconstruction of the
  ConQuer-style evaluation strategy: each block independently keeps the fact
  that locally minimises (resp. maximises) its contribution, and the aggregate
  is taken over the embeddings of the resulting repair.  On Caggforest
  queries over non-negative values this strategy is exact; on the
  negative-value gadget of Theorem 7.9 it returns a value different from the
  true glb, which is the behaviour the benchmark ``bench_fuxman_flaw``
  reproduces.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.aggregates.operators import get_operator
from repro.attacks.attack_graph import AttackGraph
from repro.certainty.checker import brute_force_certain, is_certain
from repro.core.evaluator import BOTTOM
from repro.datamodel.facts import Constant, Fact, as_fraction
from repro.datamodel.instance import DatabaseInstance
from repro.embeddings.embeddings import embeddings_of
from repro.query.aggregation import AggregationQuery
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import is_variable


# ---------------------------------------------------------------------------
# Definition N.1: Fuxman graph, Cforest, Caggforest
# ---------------------------------------------------------------------------


def fuxman_graph(query: ConjunctiveQuery) -> List[Tuple[Atom, Atom]]:
    """Edges of the Fuxman graph of a self-join-free conjunctive query.

    There is an edge from ``R`` to ``S`` when ``R != S`` and ``notKey(R)``
    contains a bound variable that also occurs in ``S``.
    """
    query.require_self_join_free()
    free = set(query.free_variables)
    edges: List[Tuple[Atom, Atom]] = []
    for source in query.atoms:
        bound_nonkey = source.nonkey_variables - free
        for target in query.atoms:
            if target == source:
                continue
            if bound_nonkey & target.variables:
                edges.append((source, target))
    return edges


def is_cforest(query: ConjunctiveQuery) -> bool:
    """Membership test for Fuxman's class Cforest (Definition N.1)."""
    query.require_self_join_free()
    free = set(query.free_variables)
    edges = fuxman_graph(query)

    # The Fuxman graph must be a directed forest: no atom has two parents and
    # there is no directed cycle.
    indegree: Dict[Atom, int] = {atom: 0 for atom in query.atoms}
    for _source, target in edges:
        indegree[target] += 1
    if any(count > 1 for count in indegree.values()):
        return False
    adjacency: Dict[Atom, Set[Atom]] = {atom: set() for atom in query.atoms}
    for source, target in edges:
        adjacency[source].add(target)
    visited: Set[Atom] = set()

    def has_cycle(atom: Atom, stack: Set[Atom]) -> bool:
        visited.add(atom)
        stack.add(atom)
        for successor in adjacency[atom]:
            if successor in stack:
                return True
            if successor not in visited and has_cycle(successor, stack):
                return True
        stack.discard(atom)
        return False

    for atom in query.atoms:
        if atom not in visited and has_cycle(atom, set()):
            return False

    # Full-join condition: for every edge R -> S, Key(S) \ free ⊆ notKey(R).
    for source, target in edges:
        if not (target.key_variables - free) <= source.nonkey_variables:
            return False
    return True


def is_caggforest(query: AggregationQuery) -> bool:
    """Membership test for Caggforest (Definition N.1).

    The class contains ``(z̄, AGG(u)) <- q(z̄, u)`` with ``AGG`` in
    {MIN, MAX, SUM} and body in Cforest, plus ``(z̄, COUNT(*)) <- q(z̄)``
    (represented here as a COUNT query with a constant aggregated term).
    """
    aggregate = query.aggregate
    if aggregate in ("MIN", "MAX", "SUM"):
        return is_variable(query.aggregated_term) and is_cforest(query.body)
    if aggregate == "COUNT":
        return not is_variable(query.aggregated_term) and is_cforest(query.body)
    return False


# ---------------------------------------------------------------------------
# ConQuer-style evaluation (independent per-block choice)
# ---------------------------------------------------------------------------


class FuxmanIndependentBlockSolver:
    """ConQuer-style range computation by independent per-block choices.

    For every block of a relation mentioned in the query, the solver keeps the
    fact whose *local* contribution (the aggregate over the embeddings through
    that fact, evaluated against the full database) is smallest for the glb
    (largest for the lub), and evaluates the aggregate on the resulting
    repair.  This captures the independence assumption underlying the
    Caggforest rewriting; it is exact for Caggforest queries over non-negative
    values and diverges from the true answer on the Theorem 7.9 gadget.
    """

    def __init__(self, query: AggregationQuery) -> None:
        self._query = query
        self._operator = get_operator(query.aggregate)

    def glb(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        return self._solve(instance, dict(binding or {}), maximize=False)

    def lub(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        return self._solve(instance, dict(binding or {}), maximize=True)

    # -- internals ----------------------------------------------------------------------

    def _solve(self, instance: DatabaseInstance, binding: Dict[str, Constant], maximize: bool):
        if not self._body_is_certain(instance, binding):
            return BOTTOM
        relevant = set(self._query.body.relation_names)
        relevant_instance = instance.restricted_to(relevant)

        contributions = self._per_fact_contribution(relevant_instance, binding)
        chosen: List[Fact] = []
        for block in relevant_instance.blocks():
            facts = sorted(block, key=repr)
            if len(facts) == 1:
                chosen.append(facts[0])
                continue
            scored = [(contributions.get(fact, Fraction(0)), repr(fact), fact) for fact in facts]
            scored.sort()
            chosen.append(scored[-1][2] if maximize else scored[0][2])

        repair = DatabaseInstance(instance.schema, chosen)
        values = self._embedding_values(repair, binding)
        if not values:
            return BOTTOM
        return self._operator(values)

    def _per_fact_contribution(
        self, instance: DatabaseInstance, binding: Dict[str, Constant]
    ) -> Dict[Fact, Fraction]:
        """Aggregate contribution of each fact across all embeddings in ``db``."""
        contributions: Dict[Fact, Fraction] = {}
        term = self._query.aggregated_term
        for embedding in embeddings_of(self._query.body, instance, binding):
            value = (
                as_fraction(embedding[term.name])
                if is_variable(term)
                else as_fraction(term)
            )
            for atom in self._query.body.atoms:
                fact = atom.ground(embedding.as_dict())
                contributions[fact] = contributions.get(fact, Fraction(0)) + value
        return contributions

    def _embedding_values(
        self, repair: DatabaseInstance, binding: Dict[str, Constant]
    ) -> List:
        term = self._query.aggregated_term
        values = []
        for embedding in embeddings_of(self._query.body, repair, binding):
            values.append(embedding[term.name] if is_variable(term) else term)
        if self._operator.requires_numeric_argument:
            values = [as_fraction(v) for v in values]
        return values

    def _body_is_certain(
        self, instance: DatabaseInstance, binding: Dict[str, Constant]
    ) -> bool:
        body = self._query.body
        graph = AttackGraph(body)
        if graph.is_acyclic():
            return is_certain(body, instance, binding)
        return brute_force_certain(body, instance, binding)
