"""The class Cparsimony for counting queries (Khalfioui & Wijsen, ICDT 2023).

Cparsimony [29] extends Cforest and captures exactly the self-join-free
conjunctive queries for which Fuxman's technique applies to COUNT: range
consistent counts can be obtained by counting over one "parsimonious" choice
per block.  The paper cites it as related work; the library exposes a
sufficient syntactic test used by the benchmarks when deciding which baseline
applies to a COUNT workload.

The test implemented here is the conservative full-join criterion: every join
between a non-key variable of one atom and another atom must cover the entire
primary key of the joined atom, and the Fuxman graph must be a forest.  Every
query passing this test is in Cparsimony; queries with partial joins (the
ones the paper newly handles) are rejected.
"""

from __future__ import annotations

from repro.baselines.fuxman import is_cforest
from repro.query.aggregation import AggregationQuery
from repro.query.terms import is_variable


def is_cparsimony_counting_safe(query: AggregationQuery) -> bool:
    """Sufficient test for Fuxman-style COUNT evaluation (Cparsimony ⊇ Cforest).

    Returns True only for COUNT queries whose body passes the conservative
    full-join test; a False result means the rewriting-based approach of the
    paper (COUNT as SUM(1), Theorem 6.1) should be used instead.
    """
    if query.aggregate != "COUNT":
        return False
    if is_variable(query.aggregated_term):
        return False
    return is_cforest(query.body)
