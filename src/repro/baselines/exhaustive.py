"""Exhaustive repair enumeration: the ground-truth range-CQA solver.

The solver enumerates every repair of the instance, evaluates the aggregation
query on each, and returns the minimum / maximum value.  It works for *any*
aggregate operator and any body (cyclic attack graphs, self-joins), but its
cost is exponential in the number of inconsistent blocks — it exists to
validate the rewriting-based solvers on small instances.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.aggregates.operators import get_operator
from repro.core.evaluator import BOTTOM
from repro.datamodel.facts import Constant, as_fraction
from repro.datamodel.instance import DatabaseInstance
from repro.embeddings.embeddings import embeddings_of
from repro.query.aggregation import AggregationQuery
from repro.query.terms import is_variable


class ExhaustiveRangeSolver:
    """Ground-truth glb/lub computation by enumerating all repairs."""

    def __init__(self, query: AggregationQuery) -> None:
        self._query = query
        self._operator = get_operator(query.aggregate)

    # -- per-repair evaluation -------------------------------------------------------

    def value_on_repair(
        self,
        repair: DatabaseInstance,
        binding: Optional[Dict[str, Constant]] = None,
    ) -> Optional[Fraction]:
        """Value of the aggregation query on one (consistent) repair.

        Returns ``None`` when the body has no embedding in the repair, which
        is the situation that makes the range answer ⊥.
        """
        values: List = []
        term = self._query.aggregated_term
        for embedding in embeddings_of(self._query.body, repair, dict(binding or {})):
            if is_variable(term):
                values.append(embedding[term.name])
            else:
                values.append(term)
        if not values:
            return None
        if self._operator.requires_numeric_argument:
            values = [as_fraction(v) for v in values]
        return self._operator(values)

    # -- range answers -------------------------------------------------------------------

    def range(
        self,
        instance: DatabaseInstance,
        binding: Optional[Dict[str, Constant]] = None,
    ) -> Tuple[object, object]:
        """``(glb, lub)`` across all repairs; ``(BOTTOM, BOTTOM)`` when ⊥."""
        values: List[Fraction] = []
        for repair in instance.repairs():
            value = self.value_on_repair(repair, binding)
            if value is None:
                return (BOTTOM, BOTTOM)
            values.append(value)
        if not values:
            return (BOTTOM, BOTTOM)
        return (min(values), max(values))

    def glb(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        return self.range(instance, binding)[0]

    def lub(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        return self.range(instance, binding)[1]
