"""Baseline solvers for range CQA: ground truth and comparison systems."""

from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.baselines.branch_and_bound import BranchAndBoundSolver
from repro.baselines.fuxman import (
    FuxmanIndependentBlockSolver,
    fuxman_graph,
    is_caggforest,
    is_cforest,
)
from repro.baselines.parsimony import is_cparsimony_counting_safe

__all__ = [
    "ExhaustiveRangeSolver",
    "BranchAndBoundSolver",
    "FuxmanIndependentBlockSolver",
    "fuxman_graph",
    "is_cforest",
    "is_caggforest",
    "is_cparsimony_counting_safe",
]
