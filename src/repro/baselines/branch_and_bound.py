"""Exact branch-and-bound range-CQA solver (AggCAvSAT stand-in).

AggCAvSAT [17] computes range consistent answers with SAT/MaxSAT solvers and
therefore handles queries beyond the rewritable class.  Offline, we play the
same role with an exact branch-and-bound search over the blocks of the
relations mentioned in the query:

* blocks of relations not mentioned by the query are irrelevant and skipped;
* consistent (singleton) blocks are fixed up front;
* only the inconsistent blocks are branched on, one fact per block;
* for monotone aggregates the partial value over already-decided blocks is a
  valid lower bound (glb search) and the optimistic value over decided +
  undecided facts is a valid upper bound (lub search), enabling pruning.

The solver is exact for every aggregate operator; pruning is only applied
when it is sound (monotone operators).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.aggregates.operators import get_operator
from repro.attacks.attack_graph import AttackGraph
from repro.certainty.checker import brute_force_certain, is_certain
from repro.core.evaluator import BOTTOM
from repro.datamodel.facts import Constant, Fact, as_fraction
from repro.datamodel.instance import DatabaseInstance
from repro.embeddings.embeddings import embeddings_of
from repro.obs.cost import add_cost
from repro.query.aggregation import AggregationQuery
from repro.query.terms import is_variable


class BranchAndBoundSolver:
    """Exact glb/lub solver branching over inconsistent blocks."""

    def __init__(self, query: AggregationQuery, use_pruning: bool = True) -> None:
        self._query = query
        self._operator = get_operator(query.aggregate)
        self._use_pruning = use_pruning and self._operator.monotone

    # -- public API ------------------------------------------------------------------

    def glb(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        return self._solve(instance, dict(binding or {}), maximize=False)

    def lub(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        return self._solve(instance, dict(binding or {}), maximize=True)

    def range(
        self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None
    ) -> Tuple[object, object]:
        return (self.glb(instance, binding), self.lub(instance, binding))

    def extremum(
        self,
        instance: DatabaseInstance,
        binding: Optional[Dict[str, Constant]] = None,
        maximize: bool = False,
    ) -> Optional[Fraction]:
        """Extremum of the aggregate over repairs with at least one embedding.

        Unlike :meth:`glb` / :meth:`lub` this skips the certainty gate:
        repairs on which the body has no embedding are simply ignored rather
        than turning the whole answer into ⊥.  Returns ``None`` when no
        repair has an embedding at all.  The sharded executor uses this to
        summarise shards whose body is not locally certain (the empty-repair
        case is accounted for by the merge operators, not by ⊥).
        """
        value = self._solve(
            instance, dict(binding or {}), maximize=maximize, check_certainty=False
        )
        return None if value is BOTTOM else value

    def body_certain(
        self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None
    ) -> bool:
        """Whether every repair of ``instance`` embeds the (bound) body."""
        return self._body_is_certain(instance, dict(binding or {}))

    def repair_value_multisets(
        self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None
    ) -> Iterator[List]:
        """The aggregated-term value multiset of every repair, one list each.

        Repairs on which the body has no embedding are skipped (their
        contribution is "empty", which callers account for separately — the
        sharded merge does it through local certainty).  Choices among
        non-participating facts of a block are collapsed into one "absent"
        option exactly as in :meth:`glb`/:meth:`lub`, so equivalent repairs
        are enumerated once.  Values are raw constants; numeric conversion is
        the caller's concern (COUNT-style aggregates accept any constant).

        This is the exact, unpruned enumeration — the sharded executor uses
        it to build mergeable summaries of aggregates whose extremum is not
        a function of per-repair extrema (AVG, PRODUCT, the DISTINCT
        family), so its cost is exponential in the instance's *relevant
        inconsistent* blocks, exactly like the unpruned search.
        """
        binding = dict(binding or {})
        forced, open_blocks = self._decompose(instance, binding)
        schema = instance.schema
        expanded = 0
        try:
            for choice in itertools.product(*open_blocks):
                expanded += 1
                facts = list(forced) + [fact for fact in choice if fact is not None]
                values = self._repair_values(schema, facts, binding)
                if values:
                    yield values
        finally:
            add_cost("repairs_expanded", expanded)

    # -- search ------------------------------------------------------------------------

    def _decompose(
        self, instance: DatabaseInstance, binding: Dict[str, Constant]
    ) -> Tuple[List[Fact], List[List[Optional[Fact]]]]:
        """Forced facts and open blocks of the repair search.

        Only facts that participate in some embedding of the body (in the
        full database) can ever influence the aggregate; all other facts and
        blocks are skipped.  This mirrors the SAT encoding of AggCAvSAT,
        which only introduces variables for relevant tuples, and keeps the
        search exponential in the number of *relevant* inconsistent blocks
        rather than in all of them.
        """
        relevant = set(self._query.body.relation_names)
        relevant_instance = instance.restricted_to(relevant)

        participating: set = set()
        for embedding in embeddings_of(self._query.body, relevant_instance, binding):
            for atom in self._query.body.atoms:
                participating.add(atom.ground(embedding.as_dict()))

        forced: List[Fact] = []
        open_blocks: List[List[Optional[Fact]]] = []
        for block in relevant_instance.blocks():
            facts = sorted(block, key=repr)
            relevant_facts = [fact for fact in facts if fact in participating]
            if not relevant_facts:
                continue
            if len(facts) == 1:
                forced.append(facts[0])
            elif len(relevant_facts) == len(facts):
                open_blocks.append(list(facts))
            else:
                # Choosing any non-participating fact of the block is
                # equivalent: the block then contributes nothing.  Collapse
                # those choices into a single "absent" option (None).
                open_blocks.append(list(relevant_facts) + [None])
        return forced, open_blocks

    def _repair_values(
        self, schema, facts: Sequence[Fact], binding: Dict[str, Constant]
    ) -> List:
        """Raw aggregated-term values of one repair (possibly empty)."""
        sub_instance = DatabaseInstance(schema, facts)
        term = self._query.aggregated_term
        values = []
        for embedding in embeddings_of(self._query.body, sub_instance, binding):
            values.append(embedding[term.name] if is_variable(term) else term)
        return values

    def _solve(
        self,
        instance: DatabaseInstance,
        binding: Dict[str, Constant],
        maximize: bool,
        check_certainty: bool = True,
    ):
        if check_certainty and not self._body_is_certain(instance, binding):
            return BOTTOM

        forced, open_blocks = self._decompose(instance, binding)
        schema = instance.schema
        best: List[Optional[Fraction]] = [None]

        def aggregate_over(facts: Sequence[Fact]) -> Optional[Fraction]:
            values = self._repair_values(schema, facts, binding)
            if not values:
                return None
            if self._operator.requires_numeric_argument:
                values = [as_fraction(v) for v in values]
            return self._operator(values)

        def better(candidate: Fraction) -> bool:
            if best[0] is None:
                return True
            return candidate > best[0] if maximize else candidate < best[0]

        def bound_allows(chosen: List[Fact], undecided: List[List[Optional[Fact]]]) -> bool:
            if not self._use_pruning or best[0] is None:
                return True
            if maximize:
                optimistic_facts = list(chosen) + [
                    fact for block in undecided for fact in block if fact is not None
                ]
                optimistic = aggregate_over(optimistic_facts)
                return optimistic is None or optimistic > best[0]
            pessimistic = aggregate_over(chosen)
            return pessimistic is None or pessimistic < best[0]

        expanded = [0]  # repair-search nodes visited, for cost accounting

        def search(index: int, chosen: List[Fact]) -> None:
            expanded[0] += 1
            if index == len(open_blocks):
                value = aggregate_over(chosen)
                if value is not None and better(value):
                    best[0] = value
                return
            if not bound_allows(chosen, open_blocks[index:]):
                return
            for fact in open_blocks[index]:
                if fact is None:
                    search(index + 1, chosen)
                    continue
                chosen.append(fact)
                search(index + 1, chosen)
                chosen.pop()

        search(0, list(forced))
        add_cost("repairs_expanded", expanded[0])
        return BOTTOM if best[0] is None else best[0]

    def _body_is_certain(
        self, instance: DatabaseInstance, binding: Dict[str, Constant]
    ) -> bool:
        body = self._query.body
        graph = AttackGraph(body)
        if graph.is_acyclic():
            return is_certain(body, instance, binding)
        return brute_force_certain(body, instance, binding)
