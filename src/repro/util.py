"""Small shared utilities with no dependencies on the rest of the package."""

from __future__ import annotations

import hashlib


def stable_hash_64(text: str) -> int:
    """A process- and run-stable 64-bit hash of ``text``.

    The builtin ``hash`` is salted per process, so anything that must be
    reproducible across runs — derived workload seeds, hashed shard
    assignment — goes through this instead.
    """
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")
