"""Attack graphs and complexity classification for CQA."""

from repro.attacks.fds import FunctionalDependency, closure, implies_fd, key_fds
from repro.attacks.attack_graph import AttackGraph
from repro.attacks.classification import (
    SeparationVerdict,
    certainty_complexity,
    classify_aggregation_query,
)

__all__ = [
    "FunctionalDependency",
    "closure",
    "implies_fd",
    "key_fds",
    "AttackGraph",
    "SeparationVerdict",
    "certainty_complexity",
    "classify_aggregation_query",
]
