"""Attack graphs of self-join-free conjunctive queries (Section 3).

The attack graph is the key syntactic tool of Koutris and Wijsen [35] reused
by the paper: its acyclicity characterises first-order rewritability of
``CERTAINTY(q)`` (Theorem 3.2) and, for monotone + associative aggregates,
AGGR[FOL]-rewritability of ``GLB-CQA(g())`` (Theorem 1.1).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.attacks.fds import FunctionalDependency, closure, implies_fd
from repro.exceptions import QueryError
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import Variable


class AttackGraph:
    """The attack graph of a self-join-free conjunctive query.

    Free variables of the query are treated as constants (Section 6.2): they
    are excluded from all variable sets, which is equivalent to instantiating
    them with fresh constants.
    """

    def __init__(self, query: ConjunctiveQuery) -> None:
        query.require_self_join_free()
        self._query = query
        self._frozen: FrozenSet[Variable] = frozenset(query.free_variables)
        self._atoms: Tuple[Atom, ...] = query.atoms
        self._plus_sets: Dict[Atom, FrozenSet[Variable]] = {}
        self._attacked_variables: Dict[Atom, FrozenSet[Variable]] = {}
        self._edges: Dict[Atom, FrozenSet[Atom]] = {}
        self._compute()

    # -- construction ------------------------------------------------------------

    def _effective_vars(self, atom: Atom) -> FrozenSet[Variable]:
        return atom.variables - self._frozen

    def _effective_key(self, atom: Atom) -> FrozenSet[Variable]:
        return atom.key_variables - self._frozen

    def _effective_notkey(self, atom: Atom) -> FrozenSet[Variable]:
        return atom.nonkey_variables - self._frozen

    def _all_key_fds(self) -> List[FunctionalDependency]:
        return [
            FunctionalDependency(self._effective_key(a), self._effective_vars(a))
            for a in self._atoms
        ]

    def _fds_without(self, atom: Atom) -> List[FunctionalDependency]:
        return [
            FunctionalDependency(self._effective_key(a), self._effective_vars(a))
            for a in self._atoms
            if a != atom
        ]

    def _compute(self) -> None:
        query_vars: Set[Variable] = set()
        for atom in self._atoms:
            query_vars |= self._effective_vars(atom)

        # Co-occurrence adjacency: two variables are adjacent when they occur
        # together in some atom of the query.
        adjacency: Dict[Variable, Set[Variable]] = defaultdict(set)
        for atom in self._atoms:
            atom_vars = self._effective_vars(atom)
            for var in atom_vars:
                adjacency[var] |= atom_vars - {var}

        for atom in self._atoms:
            plus = closure(self._effective_key(atom), self._fds_without(atom))
            plus &= frozenset(query_vars)
            self._plus_sets[atom] = frozenset(plus)

            # Variables attacked by `atom`: reachable from notKey(atom) through
            # variables outside atom^{+,q}.
            start = self._effective_notkey(atom) - plus
            reachable: Set[Variable] = set()
            frontier = deque(start)
            reachable |= start
            while frontier:
                current = frontier.popleft()
                for neighbour in adjacency[current]:
                    if neighbour in plus or neighbour in reachable:
                        continue
                    reachable.add(neighbour)
                    frontier.append(neighbour)
            self._attacked_variables[atom] = frozenset(reachable)

        for atom in self._atoms:
            targets = set()
            for other in self._atoms:
                if other == atom:
                    continue
                if self._attacked_variables[atom] & self._effective_vars(other):
                    targets.add(other)
            self._edges[atom] = frozenset(targets)

    # -- accessors ---------------------------------------------------------------

    @property
    def query(self) -> ConjunctiveQuery:
        return self._query

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        return self._atoms

    def plus_set(self, atom: Atom) -> FrozenSet[Variable]:
        """``F^{+,q}``: variables determined by ``Key(F)`` using ``K(q \\ {F})``."""
        return self._plus_sets[atom]

    def attacked_variables(self, atom: Atom) -> FrozenSet[Variable]:
        """All variables ``x`` with ``F ⇝ x``."""
        return self._attacked_variables[atom]

    def attacks_variable(self, atom: Atom, variable: Variable) -> bool:
        return variable in self._attacked_variables[atom]

    def attacks_atom(self, source: Atom, target: Atom) -> bool:
        """``F ⇝ G``: the source attacks some variable of the target."""
        return target in self._edges[source]

    def edges(self) -> List[Tuple[Atom, Atom]]:
        """All attack edges ``(F, G)``."""
        return [
            (source, target)
            for source in self._atoms
            for target in sorted(self._edges[source], key=str)
        ]

    def successors(self, atom: Atom) -> FrozenSet[Atom]:
        return self._edges[atom]

    def unattacked_atoms(self) -> List[Atom]:
        """Atoms with no incoming attack edge."""
        attacked = {target for targets in self._edges.values() for target in targets}
        return [a for a in self._atoms if a not in attacked]

    def unattacked_variables(self) -> FrozenSet[Variable]:
        """Variables not attacked by any atom."""
        attacked: Set[Variable] = set()
        for atom in self._atoms:
            attacked |= self._attacked_variables[atom]
        all_vars: Set[Variable] = set()
        for atom in self._atoms:
            all_vars |= self._effective_vars(atom)
        return frozenset(all_vars - attacked)

    # -- cycles and sorts ------------------------------------------------------------

    def is_acyclic(self) -> bool:
        """True when the attack graph has no directed cycle."""
        return self._topological_sort_or_none() is not None

    def topological_sort(self) -> List[Atom]:
        """One topological sort of an acyclic attack graph (stable, by atom order)."""
        order = self._topological_sort_or_none()
        if order is None:
            raise QueryError("attack graph is cyclic; no topological sort exists")
        return order

    def _topological_sort_or_none(self) -> Optional[List[Atom]]:
        indegree: Dict[Atom, int] = {a: 0 for a in self._atoms}
        for source in self._atoms:
            for target in self._edges[source]:
                indegree[target] += 1
        # Deterministic tie-breaking: keep the original atom order.
        available = [a for a in self._atoms if indegree[a] == 0]
        order: List[Atom] = []
        while available:
            current = available.pop(0)
            order.append(current)
            for target in self._atoms:
                if target in self._edges[current]:
                    indegree[target] -= 1
                    if indegree[target] == 0:
                        available.append(target)
            available.sort(key=lambda a: self._atoms.index(a))
        if len(order) != len(self._atoms):
            return None
        return order

    def cycles(self) -> List[List[Atom]]:
        """All simple cycles of the attack graph (small graphs only)."""
        cycles: List[List[Atom]] = []
        atoms = list(self._atoms)

        def dfs(start: Atom, current: Atom, path: List[Atom], visited: Set[Atom]) -> None:
            for nxt in self._edges[current]:
                if nxt == start and len(path) >= 1:
                    cycles.append(list(path))
                elif nxt not in visited and atoms.index(nxt) > atoms.index(start):
                    visited.add(nxt)
                    path.append(nxt)
                    dfs(start, nxt, path, visited)
                    path.pop()
                    visited.remove(nxt)

        for atom in atoms:
            dfs(atom, atom, [atom], {atom})
        return cycles

    # -- weak / strong attacks (Koutris & Wijsen [35]) ---------------------------------

    def is_weak_attack(self, source: Atom, target: Atom) -> bool:
        """An attack ``F ⇝ G`` is weak when ``K(q) |= Key(F) -> Key(G)``."""
        if not self.attacks_atom(source, target):
            raise QueryError(f"{source} does not attack {target}")
        return implies_fd(
            self._all_key_fds(),
            self._effective_key(source),
            self._effective_key(target),
        )

    def has_strong_cycle(self) -> bool:
        """True when some cycle of the attack graph contains a strong attack.

        Following [35], ``CERTAINTY(q)`` is coNP-complete exactly when the
        attack graph contains a strong cycle, and is in polynomial time (indeed
        L-complete in the general cyclic case) otherwise.
        """
        for cycle in self.cycles():
            edges = list(zip(cycle, cycle[1:] + cycle[:1]))
            if any(not self.is_weak_attack(s, t) for s, t in edges):
                return True
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"AttackGraph of {self._query}"]
        for source, target in self.edges():
            lines.append(f"  {source} ⇝ {target}")
        return "\n".join(lines)
