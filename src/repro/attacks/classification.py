"""Complexity classification: CERTAINTY trichotomy and the separation theorem.

Two classifications are provided:

* :func:`certainty_complexity` — the trichotomy of Koutris and Wijsen [35]
  for ``CERTAINTY(q)`` on self-join-free conjunctive queries (Theorem 3.2 and
  its refinement into FO / L-complete / coNP-complete).
* :func:`classify_aggregation_query` — the paper's separation results: given
  a query ``g()`` in AGGR[sjfBCQ] and a direction (glb or lub), decide whether
  the range-consistent answer is expressible in AGGR[FOL] (Theorems 1.1, 5.5,
  6.1, 7.8, 7.9, 7.10, 7.11, Corollary 7.5, and the COUNT-DISTINCT result of
  Arenas et al. [3]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aggregates.chains import descending_chain_witness
from repro.aggregates.duals import dual_of
from repro.aggregates.operators import AggregateOperator, get_operator
from repro.aggregates.properties import is_covered_by_separation_theorem
from repro.attacks.attack_graph import AttackGraph
from repro.query.aggregation import AggregationQuery
from repro.query.conjunctive import ConjunctiveQuery


def certainty_complexity(query: ConjunctiveQuery) -> str:
    """Complexity of ``CERTAINTY(q)`` for a self-join-free conjunctive query.

    Returns one of ``"FO"``, ``"L-complete"``, ``"coNP-complete"``, following
    the trichotomy of [35]: FO when the attack graph is acyclic, coNP-complete
    when it has a strong cycle, L-complete otherwise.
    """
    graph = AttackGraph(query)
    if graph.is_acyclic():
        return "FO"
    if graph.has_strong_cycle():
        return "coNP-complete"
    return "L-complete"


@dataclass(frozen=True)
class SeparationVerdict:
    """Outcome of the separation-theorem classification for one query/direction.

    ``expressible`` is ``True`` / ``False`` when the paper settles the case,
    and ``None`` when the case is left open by the paper (condition (iii) of
    the open question in Section 8).
    """

    query: AggregationQuery
    direction: str
    attack_graph_acyclic: bool
    expressible: Optional[bool]
    reason: str
    certainty_class: str

    @property
    def rewritable(self) -> bool:
        """True only when a rewriting in AGGR[FOL] is known to exist."""
        return self.expressible is True


def _glb_verdict(
    query: AggregationQuery,
    operator: AggregateOperator,
    graph_acyclic: bool,
    certainty_class: str,
) -> SeparationVerdict:
    if not graph_acyclic:
        return SeparationVerdict(
            query,
            "glb",
            False,
            False,
            "attack graph is cyclic, hence GLB-CQA is not expressible in "
            "AGGR[FOL] (Theorem 5.5)",
            certainty_class,
        )
    if operator.name in ("MIN", "MAX"):
        return SeparationVerdict(
            query,
            "glb",
            True,
            True,
            "acyclic attack graph with MIN/MAX aggregate (Theorems 7.10 and 7.11)",
            certainty_class,
        )
    if is_covered_by_separation_theorem(operator):
        return SeparationVerdict(
            query,
            "glb",
            True,
            True,
            "acyclic attack graph and monotone + associative aggregate "
            "(Theorem 6.1; COUNT handled as SUM(1))",
            certainty_class,
        )
    if operator.name == "COUNT_DISTINCT":
        return SeparationVerdict(
            query,
            "glb",
            True,
            False,
            "COUNT-DISTINCT is NP-hard already for one binary relation "
            "(Arenas et al. [3], Theorem 9)",
            certainty_class,
        )
    chain = descending_chain_witness(operator)
    if chain is not None:
        return SeparationVerdict(
            query,
            "glb",
            True,
            False,
            f"{operator.name} has a descending chain, hence GLB-CQA is not "
            "expressible in AGGR[FOL] for queries of the Lemma 7.2/7.3 shape "
            "(Corollary 7.5); the paper leaves other bodies open",
            certainty_class,
        )
    return SeparationVerdict(
        query,
        "glb",
        True,
        None,
        f"{operator.name} lacks monotonicity or associativity and has no known "
        "descending chain; the case is open (Section 8)",
        certainty_class,
    )


def _lub_verdict(
    query: AggregationQuery,
    operator: AggregateOperator,
    graph_acyclic: bool,
    certainty_class: str,
) -> SeparationVerdict:
    if not graph_acyclic:
        return SeparationVerdict(
            query,
            "lub",
            False,
            False,
            "attack graph is cyclic, hence LUB-CQA is not expressible in "
            "AGGR[FOL] (Theorem 5.5 applies to lub as well)",
            certainty_class,
        )
    if operator.name in ("MIN", "MAX"):
        return SeparationVerdict(
            query,
            "lub",
            True,
            True,
            "acyclic attack graph with MIN/MAX aggregate (Theorem 7.11)",
            certainty_class,
        )
    dual = dual_of(operator)
    chain = descending_chain_witness(dual)
    if chain is not None:
        return SeparationVerdict(
            query,
            "lub",
            True,
            False,
            f"the dual of {operator.name} has a descending chain, hence LUB-CQA "
            "is not expressible in AGGR[FOL] for queries of the Lemma 7.2 shape "
            "(Theorem 7.8); the paper leaves other bodies open",
            certainty_class,
        )
    return SeparationVerdict(
        query,
        "lub",
        True,
        None,
        f"no positive or negative result is known for LUB-CQA with "
        f"{operator.name} on this body (Section 8)",
        certainty_class,
    )


def classify_aggregation_query(
    query: AggregationQuery, direction: str = "glb"
) -> SeparationVerdict:
    """Apply the separation theorem to ``query`` for the given direction.

    ``direction`` is ``"glb"`` or ``"lub"``.  The query's free variables are
    treated as constants (Section 6.2), which is what :class:`AttackGraph`
    does natively.
    """
    if direction not in ("glb", "lub"):
        raise ValueError("direction must be 'glb' or 'lub'")
    query.body.require_self_join_free()
    operator = get_operator(query.aggregate)
    graph = AttackGraph(query.body)
    acyclic = graph.is_acyclic()
    certainty_class = certainty_complexity(query.body)
    if direction == "glb":
        return _glb_verdict(query, operator, acyclic, certainty_class)
    return _lub_verdict(query, operator, acyclic, certainty_class)
