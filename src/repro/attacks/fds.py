"""Functional dependencies over query variables, and their closure.

The attack graph machinery only needs the set ``K(q)`` containing
``Key(F) -> vars(F)`` for every atom ``F`` of a query ``q``, together with the
standard notion of logical implication of functional dependencies, computed
via attribute-set closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set

from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import Variable


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``lhs -> rhs`` over query variables."""

    lhs: FrozenSet[Variable]
    rhs: FrozenSet[Variable]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))

    def __str__(self) -> str:
        left = ", ".join(sorted(v.name for v in self.lhs)) or "∅"
        right = ", ".join(sorted(v.name for v in self.rhs)) or "∅"
        return f"{left} -> {right}"


def key_fds(query: ConjunctiveQuery) -> List[FunctionalDependency]:
    """``K(q)``: the dependency ``Key(F) -> vars(F)`` for every atom ``F``."""
    return [
        FunctionalDependency(atom.key_variables, atom.variables)
        for atom in query.atoms
    ]


def closure(
    attributes: Iterable[Variable], dependencies: Sequence[FunctionalDependency]
) -> FrozenSet[Variable]:
    """Attribute-set closure of ``attributes`` under ``dependencies``."""
    result: Set[Variable] = set(attributes)
    changed = True
    while changed:
        changed = False
        for dependency in dependencies:
            if dependency.lhs <= result and not dependency.rhs <= result:
                result |= dependency.rhs
                changed = True
    return frozenset(result)


def implies_fd(
    dependencies: Sequence[FunctionalDependency],
    lhs: Iterable[Variable],
    rhs: Iterable[Variable],
) -> bool:
    """True when ``dependencies |= lhs -> rhs`` (standard FD implication)."""
    return frozenset(rhs) <= closure(lhs, dependencies)
