"""Consistent first-order rewriting for acyclic self-join-free queries.

Implements the classical rewriting of Koutris and Wijsen [35] used by the
paper in Lemma 4.3 and Appendix C: for a self-join-free conjunctive query
whose attack graph is acyclic, a first-order formula ``ω`` such that
``db |= ω(c̄)`` iff ``c̄`` is a consistent (certain) answer.

The construction processes atoms in a topological sort of the attack graph.
For the first atom ``F = R(s̄, t̄)`` (key terms ``s̄``, non-key terms ``t̄``)
with a set of already-bound variables treated as constants, the rewriting is::

    ∃ x̄_new ( ∃ ȳ_new R(s̄, t̄)
              ∧ ∀ w̄ ( R(s̄, w̄) →  ⋀_j cond_j  ∧  rewrite(rest)[t_j ↦ w_j] ) )

where ``w̄`` are fresh variables for the non-key positions, ``cond_j`` forces
``w_j`` to equal a constant / bound-variable / repeated term at position
``j``, and the rest of the query is rewritten with the ``w_j`` bound.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Set

from repro.attacks.attack_graph import AttackGraph
from repro.exceptions import NotRewritableError
from repro.fol.builders import conjunction, exists, forall, implies
from repro.fol.syntax import Comparison, Formula, RelationAtom, TrueFormula
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import Term, Variable, is_variable


class _FreshVariableFactory:
    """Generates fresh variable names that cannot clash with query variables."""

    def __init__(self, reserved: Set[str]) -> None:
        self._reserved = set(reserved)
        self._counter = itertools.count()

    def fresh(self, base: str, numeric: bool) -> Variable:
        while True:
            name = f"{base}_{next(self._counter)}"
            if name not in self._reserved:
                self._reserved.add(name)
                return Variable(name, numeric=numeric)


class ConsistentRewriter:
    """Builds consistent first-order rewritings of (suffixes of) a query."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        query.require_self_join_free()
        self._query = query
        self._graph = AttackGraph(query)
        if not self._graph.is_acyclic():
            raise NotRewritableError(
                "the attack graph is cyclic; CERTAINTY(q) is not in FO "
                "(Theorem 3.2)"
            )
        self._topological_sort = self._graph.topological_sort()
        self._fresh = _FreshVariableFactory({v.name for v in query.variables})

    # -- public API -------------------------------------------------------------

    @property
    def topological_sort(self) -> List[Atom]:
        return list(self._topological_sort)

    def rewriting(self) -> Formula:
        """Consistent rewriting of the full query.

        Free variables of the query stay free in the formula; all other
        variables are quantified away.
        """
        bound = {v.name for v in self._query.free_variables}
        return self.suffix_rewriting(self._topological_sort, bound)

    def suffix_rewriting(
        self, atoms: Sequence[Atom], bound_variables: Set[str]
    ) -> Formula:
        """Rewriting of the conjunction of ``atoms`` with some variables bound.

        ``bound_variables`` (a set of variable names) are treated as constants,
        exactly as in the paper's construction of ``ω_{j+1}(ū_j, x̄_{j+1})``.
        The atoms must appear in an order compatible with the attack graph of
        the suffix, which holds for suffixes of a topological sort.
        """
        return self._rewrite(list(atoms), set(bound_variables))

    # -- recursive construction -----------------------------------------------------

    def _rewrite(self, atoms: List[Atom], bound: Set[str]) -> Formula:
        if not atoms:
            return TrueFormula()
        first, rest = atoms[0], atoms[1:]

        key_terms = first.key_terms
        nonkey_terms = first.nonkey_terms

        new_key_vars = [
            t for t in _unique_variables(key_terms) if t.name not in bound
        ]
        bound_with_key = bound | {v.name for v in new_key_vars}
        new_nonkey_vars = [
            t
            for t in _unique_variables(nonkey_terms)
            if t.name not in bound_with_key
        ]

        # Fresh variables for every non-key position, used in the universally
        # quantified part.
        signature = first.signature
        fresh_vars: List[Variable] = []
        for offset, term in enumerate(nonkey_terms):
            position = signature.key_size + offset + 1
            fresh_vars.append(
                self._fresh.fresh("w", numeric=signature.is_numeric(position))
            )

        universal_atom = Atom(signature, tuple(key_terms) + tuple(fresh_vars))

        # Conditions and substitution for the universally quantified copy.
        conditions: List[Formula] = []
        substitution: Dict[str, Variable] = {}
        for term, fresh_var in zip(nonkey_terms, fresh_vars):
            if is_variable(term) and term.name not in bound_with_key:
                if term.name in substitution:
                    conditions.append(
                        Comparison(substitution[term.name], "=", fresh_var)
                    )
                else:
                    substitution[term.name] = fresh_var
            else:
                # Constant, bound variable, or key variable of the same atom.
                conditions.append(Comparison(fresh_var, "=", term))

        rest_bound = bound_with_key | {v.name for v in fresh_vars}
        rest_atoms = [_rename_atom(a, substitution) for a in rest]
        rest_formula = self._rewrite(rest_atoms, rest_bound)

        consequent = conjunction(conditions + [rest_formula])
        universal_part = forall(
            tuple(fresh_vars), implies(RelationAtom(universal_atom), consequent)
        )
        # The witness atom and the universal condition are combined under a
        # single block of existential quantifiers (∃x̄∃ȳ (F ∧ ∀w̄ (...))),
        # which is equivalent to the ∃x̄(∃ȳ F ∧ ∀w̄(...)) form of Appendix C
        # because the universal part does not mention ȳ.  The guarded shape
        # is what the SQL compiler expects.
        body = conjunction([RelationAtom(first), universal_part])
        return exists(tuple(new_key_vars) + tuple(new_nonkey_vars), body)


def _unique_variables(terms: Sequence[Term]) -> List[Variable]:
    seen: List[Variable] = []
    for term in terms:
        if is_variable(term) and term not in seen:
            seen.append(term)
    return seen


def _rename_atom(atom: Atom, substitution: Dict[str, Variable]) -> Atom:
    new_terms = []
    for term in atom.terms:
        if is_variable(term) and term.name in substitution:
            new_terms.append(substitution[term.name])
        else:
            new_terms.append(term)
    return Atom(atom.signature, tuple(new_terms))


def consistent_rewriting(query: ConjunctiveQuery) -> Formula:
    """Consistent first-order rewriting of ``query`` (acyclic attack graph).

    Raises :class:`~repro.exceptions.NotRewritableError` when the attack graph
    of the query is cyclic.
    """
    return ConsistentRewriter(query).rewriting()
