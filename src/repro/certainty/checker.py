"""Operational CERTAINTY checkers.

Two checkers are provided:

* :func:`is_certain` — a direct, polynomial-time implementation of the
  consistent first-order rewriting for self-join-free queries with acyclic
  attack graphs.  It follows the same recursion as
  :class:`~repro.certainty.rewriting.ConsistentRewriter` but evaluates it
  directly against the database instead of materialising a formula.
* :func:`brute_force_certain` — enumerates every repair (exponential); used
  as ground truth in tests and for queries whose attack graph is cyclic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.attacks.attack_graph import AttackGraph
from repro.datamodel.facts import Constant, Fact
from repro.datamodel.instance import DatabaseInstance
from repro.exceptions import NotRewritableError
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import is_variable

Binding = Dict[str, Constant]


def _blocks_by_relation(instance: DatabaseInstance, relation: str):
    """Group the facts of one relation into blocks keyed by primary-key value."""
    signature = instance.schema.relation(relation)
    blocks: Dict[Tuple[Constant, ...], List[Fact]] = {}
    for fact in instance.relation(relation):
        blocks.setdefault(fact.key(signature.key_size), []).append(fact)
    return blocks


def _key_matches(atom: Atom, key_values: Tuple[Constant, ...], binding: Binding) -> Optional[Binding]:
    """Unify the atom's key terms with block key values under ``binding``.

    Returns the extended binding on success, ``None`` on mismatch.
    """
    extended = dict(binding)
    for term, value in zip(atom.key_terms, key_values):
        if is_variable(term):
            bound = extended.get(term.name)
            if bound is None:
                extended[term.name] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


def _fact_matches_nonkey(
    atom: Atom, fact: Fact, binding: Binding
) -> Optional[Binding]:
    """Check the non-key positions of ``fact`` against the atom under ``binding``."""
    signature = atom.signature
    extended = dict(binding)
    for offset, term in enumerate(atom.nonkey_terms):
        value = fact.values[signature.key_size + offset]
        if is_variable(term):
            bound = extended.get(term.name)
            if bound is None:
                extended[term.name] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


def certain_suffix_holds(
    atoms: Sequence[Atom], instance: DatabaseInstance, binding: Binding
) -> bool:
    """Does every repair satisfy the conjunction of ``atoms`` under ``binding``?

    ``atoms`` must be listed in an order compatible with a topological sort of
    the attack graph (bound variables treated as constants).
    """
    if not atoms:
        return True
    first, rest = atoms[0], list(atoms[1:])
    for key_values, block in _blocks_by_relation(instance, first.relation).items():
        with_key = _key_matches(first, key_values, binding)
        if with_key is None:
            continue
        all_facts_good = True
        for fact in block:
            with_fact = _fact_matches_nonkey(first, fact, with_key)
            if with_fact is None or not certain_suffix_holds(rest, instance, with_fact):
                all_facts_good = False
                break
        if all_facts_good:
            return True
    return False


def is_certain(
    query: ConjunctiveQuery,
    instance: DatabaseInstance,
    binding: Optional[Binding] = None,
) -> bool:
    """Polynomial-time CERTAINTY check for acyclic self-join-free queries.

    ``binding`` may pre-assign constants to (free) variables.  Raises
    :class:`~repro.exceptions.NotRewritableError` when the attack graph is
    cyclic; use :func:`brute_force_certain` in that case.
    """
    graph = AttackGraph(query)
    if not graph.is_acyclic():
        raise NotRewritableError(
            "attack graph is cyclic; use brute_force_certain for ground truth"
        )
    order = graph.topological_sort()
    return certain_suffix_holds(order, instance, dict(binding or {}))


def _has_embedding(
    query: ConjunctiveQuery, instance: DatabaseInstance, binding: Binding
) -> bool:
    """Does the (consistent) instance satisfy the query under ``binding``?"""

    def backtrack(index: int, current: Binding) -> bool:
        if index == len(query.atoms):
            return True
        atom = query.atoms[index]
        for fact in instance.relation(atom.relation):
            grounded = atom.apply_valuation(current)
            match = grounded.match(fact)
            if match is None:
                continue
            extended = dict(current)
            extended.update(match)
            if backtrack(index + 1, extended):
                return True
        return False

    return backtrack(0, dict(binding))


def brute_force_certain(
    query: ConjunctiveQuery,
    instance: DatabaseInstance,
    binding: Optional[Binding] = None,
) -> bool:
    """Ground-truth CERTAINTY check by enumerating every repair."""
    fixed = dict(binding or {})
    return all(_has_embedding(query, repair, fixed) for repair in instance.repairs())


def certain_answers(
    query: ConjunctiveQuery,
    instance: DatabaseInstance,
    use_rewriting: bool = True,
) -> List[Tuple[Constant, ...]]:
    """Consistent answers of a query with free variables.

    Candidate answers are taken from one arbitrary repair (certain answers are
    answers in *every* repair, hence in that one); each candidate is then
    checked with the polynomial-time checker (or brute force when the attack
    graph is cyclic or ``use_rewriting`` is False).
    """
    free = query.free_variables
    if not free:
        raise ValueError("certain_answers expects a query with free variables")
    candidate_repair = instance.arbitrary_repair()
    candidates: Set[Tuple[Constant, ...]] = set()
    _collect_answers(query, candidate_repair, candidates)

    graph = AttackGraph(query)
    results = []
    for candidate in sorted(candidates, key=repr):
        binding = {v.name: value for v, value in zip(free, candidate)}
        if use_rewriting and graph.is_acyclic():
            holds = is_certain(query, instance, binding)
        else:
            holds = brute_force_certain(query, instance, binding)
        if holds:
            results.append(candidate)
    return results


def _collect_answers(
    query: ConjunctiveQuery,
    instance: DatabaseInstance,
    out: Set[Tuple[Constant, ...]],
) -> None:
    free = query.free_variables

    def backtrack(index: int, current: Binding) -> None:
        if index == len(query.atoms):
            out.add(tuple(current[v.name] for v in free))
            return
        atom = query.atoms[index]
        for fact in instance.relation(atom.relation):
            grounded = atom.apply_valuation(current)
            match = grounded.match(fact)
            if match is None:
                continue
            extended = dict(current)
            extended.update(match)
            backtrack(index + 1, extended)

    backtrack(0, {})
