"""Certain answers (CERTAINTY) for self-join-free conjunctive queries."""

from repro.certainty.checker import (
    brute_force_certain,
    certain_answers,
    is_certain,
)
from repro.certainty.rewriting import ConsistentRewriter, consistent_rewriting

__all__ = [
    "ConsistentRewriter",
    "consistent_rewriting",
    "is_certain",
    "certain_answers",
    "brute_force_certain",
]
