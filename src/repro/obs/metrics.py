"""Process-wide counters, gauges, and histograms for Prometheus exposition.

:class:`ServerMetrics` (in :mod:`repro.serve.metrics`) owns the per-endpoint
request accounting; this registry holds everything *below* the HTTP layer —
spool hits in worker processes, store fsync latency, shard fallback reasons
— where importing the serving layer would be a cycle.  ``repro.obs`` imports
nothing from ``serve``/``engine``/``store``, so any layer can record here.

The registry is deliberately tiny: three instrument kinds, label support as
a sorted ``(key, value)`` tuple, one lock per instrument.  Rendering to the
Prometheus text format lives in :mod:`repro.obs.prometheus`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

#: Default histogram bounds in seconds (the final bucket is +Inf).  Tighter
#: at the low end than the serving buckets: fsyncs are sub-millisecond on a
#: healthy disk and the interesting signal is the tail above that.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter, optionally broken down by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._values: Dict[LabelSet, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _labels_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, total: float, **labels: object) -> None:
        """Overwrite the cumulative total for a label set, monotonically.

        For mirroring a counter whose source of truth lives elsewhere (a
        cache's own hit/eviction tally) into the exposition registry: the
        value only moves forward, so a stale mirror cannot make the series
        non-monotonic.
        """
        key = _labels_key(labels)
        with self._lock:
            self._values[key] = max(self._values.get(key, 0.0), float(total))

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_labels_key(labels), 0.0)

    def samples(self) -> List[Tuple[str, LabelSet, float]]:
        with self._lock:
            return [(self.name, key, value) for key, value in sorted(self._values.items())]


class Gauge:
    """Point-in-time value, optionally broken down by labels."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._values: Dict[LabelSet, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_labels_key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_labels_key(labels), 0.0)

    def samples(self) -> List[Tuple[str, LabelSet, float]]:
        with self._lock:
            return [(self.name, key, value) for key, value in sorted(self._values.items())]


class Histogram:
    """Fixed-bucket histogram (seconds), Prometheus-shaped.

    ``samples()`` emits cumulative ``_bucket{le=...}`` series plus ``_sum``
    and ``_count``, ready for text exposition.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help_text
        self.bounds = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, seconds: float) -> None:
        index = bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            buckets = {
                str(bound): count for bound, count in zip(self.bounds, self._counts)
            }
            buckets["+Inf"] = self._counts[-1]
            return {"count": self._count, "sum_seconds": self._sum, "buckets": buckets}

    def samples(self) -> List[Tuple[str, LabelSet, float]]:
        with self._lock:
            out: List[Tuple[str, LabelSet, float]] = []
            cumulative = 0
            for bound, count in zip(self.bounds, self._counts):
                cumulative += count
                out.append(
                    (f"{self.name}_bucket", (("le", repr(bound)),), float(cumulative))
                )
            cumulative += self._counts[-1]
            out.append((f"{self.name}_bucket", (("le", "+Inf"),), float(cumulative)))
            out.append((f"{self.name}_sum", (), self._sum))
            out.append((f"{self.name}_count", (), float(self._count)))
            return out


class MetricsRegistry:
    """Create-or-get registry for the process's obs instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {type(existing).__name__}"
                    )
                return existing
            instrument = cls(name, help_text, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        kwargs = {"buckets": buckets} if buckets is not None else {}
        return self._get_or_create(Histogram, name, help_text, **kwargs)

    def instruments(self) -> Iterable[object]:
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly dump (used by the worker stats plumbing and tests)."""
        out: Dict[str, object] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                out[instrument.name] = instrument.snapshot()
            else:
                out[instrument.name] = {
                    ",".join(f"{k}={v}" for k, v in key) or "_": value
                    for _, key, value in instrument.samples()
                }
        return out


#: The process-global registry every layer records into.
REGISTRY = MetricsRegistry()
