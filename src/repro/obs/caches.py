"""Unified cache telemetry: one registry, one report schema, five caches.

The stack grew five distinct caches — the engine plan cache, the
process-wide SQL memo, the sharded summary cache, the worker-pool spool
residency, and the cost table — each with its own ad-hoc stats dict.
This module gives them one reporting surface:

* :class:`CacheStatsRegistry` — caches register a zero-argument *provider*
  under a stable name; :meth:`CacheStatsRegistry.snapshot` calls every
  provider (each inside its own ``cache.stats`` span, so scrapes are
  traceable per cache) and returns a list of reports in the common schema.
  ``GET /debug/caches`` serves the snapshot; :meth:`publish` mirrors it
  into the ``repro_cache_*`` Prometheus families.
* :func:`cache_report` — the schema constructor: size, capacity,
  hit/miss/eviction counters, hit rate, per-``instance`` attribution,
  an eviction-age histogram, and approximate resident bytes.
* :class:`EvictionAges` — a fixed-bound, monotone-bucketed histogram of
  entry ages at eviction (how long entries live before the LRU pushes
  them out — the signal for "this cache is sized wrong").
* :func:`approx_sizeof` — recursive ``sys.getsizeof`` over a *sample* of
  entries, extrapolated to the population; exact sizing of thousands of
  plan objects on every scrape would cost more than the caches save.

Per-instance attribution is keyed by whatever the cache naturally keys on
(a registry name, a lineage token).  Lineage tokens are opaque, so the
serving layer calls :func:`label_instance` when it registers an instance
and the registry translates tokens back to names at report time —
``repro.obs`` stays import-clean of ``engine``/``serve``.
"""

from __future__ import annotations

import itertools
import sys
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import span as obs_span

#: Eviction-age bucket upper bounds, in seconds (strictly increasing; the
#: implicit final bucket is +Inf).  Spans sub-second churn through
#: "lived half an hour" — outside that range the age itself stops being
#: actionable.
DEFAULT_AGE_BOUNDS: Tuple[float, ...] = (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0)

#: A provider returns a report dict (see :func:`cache_report`) or ``None``
#: to be skipped (cache gone, pool closed, weakref dead).
Provider = Callable[[], Optional[Dict[str, Any]]]


class EvictionAges:
    """Monotone-bucketed histogram of entry ages at eviction (seconds)."""

    def __init__(self, bounds: Sequence[float] = DEFAULT_AGE_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("EvictionAges bounds must be strictly increasing")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, age_seconds: float) -> None:
        age_seconds = max(0.0, float(age_seconds))
        index = 0
        for index, bound in enumerate(self.bounds):  # noqa: B007
            if age_seconds <= bound:
                break
        else:
            index = len(self.bounds)
        with self._lock:
            self._counts[index] += 1
            self._sum += age_seconds
            self._count += 1

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum_seconds": round(self._sum, 6),
            }


def _deep_sizeof(obj: Any, seen: set, depth: int) -> int:
    """Recursive ``sys.getsizeof`` with cycle protection and a depth bound."""
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    try:
        total = sys.getsizeof(obj)
    except TypeError:  # pragma: no cover - exotic C objects
        return 0
    if depth <= 0:
        return total
    if isinstance(obj, dict):
        for key, value in obj.items():
            total += _deep_sizeof(key, seen, depth - 1)
            total += _deep_sizeof(value, seen, depth - 1)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            total += _deep_sizeof(item, seen, depth - 1)
    elif hasattr(obj, "__dict__"):
        total += _deep_sizeof(vars(obj), seen, depth - 1)
    elif hasattr(obj, "__slots__"):
        for slot in obj.__slots__:
            value = getattr(obj, slot, None)
            if value is not None:
                total += _deep_sizeof(value, seen, depth - 1)
    return total


def approx_sizeof(
    values: Iterable[Any],
    *,
    total: Optional[int] = None,
    sample: int = 16,
    max_depth: int = 6,
) -> Optional[int]:
    """Approximate resident bytes of a cache from a sample of its values.

    Measures up to ``sample`` values with a recursive ``sys.getsizeof``
    (shared objects counted once per call via a seen-set) and extrapolates
    the mean to ``total`` entries.  Returns ``None`` for an empty cache —
    "unknown" and "zero" are different answers.
    """
    sampled = list(itertools.islice(values, max(1, sample)))
    if not sampled:
        return None
    seen: set = set()
    measured = sum(_deep_sizeof(value, seen, max_depth) for value in sampled)
    population = len(sampled) if total is None else max(total, len(sampled))
    return int(measured * (population / len(sampled)))


def cache_report(
    name: str,
    *,
    size: int,
    capacity: Optional[int] = None,
    hits: int = 0,
    misses: int = 0,
    evictions: int = 0,
    by_instance: Optional[Dict[str, Dict[str, int]]] = None,
    eviction_ages: Optional[Dict[str, Any]] = None,
    approx_bytes: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build one cache report in the common schema.

    ``by_instance`` maps an instance label to partial counters
    (``{"hits": ..., "misses": ..., "evictions": ...}``); caches that
    cannot attribute a counter simply omit it.
    """
    lookups = hits + misses
    report: Dict[str, Any] = {
        "name": name,
        "size": int(size),
        "capacity": capacity if capacity is None else int(capacity),
        "hits": int(hits),
        "misses": int(misses),
        "evictions": int(evictions),
        "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        "by_instance": {
            label: {k: int(v) for k, v in counters.items()}
            for label, counters in sorted((by_instance or {}).items())
        },
        "eviction_ages": eviction_ages
        or {"bounds": list(DEFAULT_AGE_BOUNDS), "counts": [], "count": 0},
    }
    if approx_bytes is not None:
        report["approx_bytes"] = int(approx_bytes)
    if extra:
        report["extra"] = dict(extra)
    return report


class CacheStatsRegistry:
    """Registry of cache stat providers with a common report schema.

    Registration is last-wins per name: when a server replaces its engine
    (or a test boots a fresh pool), the newest provider owns the name.  A
    provider that raises is reported as an ``"error"`` entry rather than
    taking the whole scrape down; one returning ``None`` is skipped.
    """

    #: Cap on remembered instance labels — lineage tokens are per-instance
    #: and long-running multi-tenant processes must not grow unboundedly.
    MAX_LABELS = 4096

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._providers: "Dict[str, Provider]" = {}
        self._labels: "Dict[str, str]" = {}

    def register(self, name: str, provider: Provider) -> None:
        with self._lock:
            self._providers[name] = provider

    def unregister(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._providers)

    # -- instance-label translation (lineage token -> registry name) ------

    def label_instance(self, key: str, name: str) -> None:
        with self._lock:
            if key not in self._labels and len(self._labels) >= self.MAX_LABELS:
                self._labels.pop(next(iter(self._labels)))
            self._labels[key] = name

    def instance_label(self, key: str) -> str:
        with self._lock:
            return self._labels.get(key, key)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        """Call every provider (inside a per-cache span) and collect reports."""
        with self._lock:
            providers = sorted(self._providers.items())
        reports: List[Dict[str, Any]] = []
        for name, provider in providers:
            with obs_span("cache.stats", cache=name):
                try:
                    report = provider()
                except Exception as exc:  # noqa: BLE001 - isolate bad providers
                    reports.append({"name": name, "error": f"{type(exc).__name__}: {exc}"})
                    continue
            if report is not None:
                report.setdefault("name", name)
                reports.append(report)
        return reports

    def publish(self, registry: MetricsRegistry = REGISTRY) -> List[Dict[str, Any]]:
        """Mirror a snapshot into the ``repro_cache_*`` Prometheus families."""
        reports = self.snapshot()
        size = registry.gauge("repro_cache_size", "Entries resident per cache.")
        capacity = registry.gauge("repro_cache_capacity", "Configured capacity per cache.")
        approx = registry.gauge(
            "repro_cache_approx_bytes",
            "Approximate resident bytes per cache (sampled recursive sizeof).",
        )
        hits = registry.counter("repro_cache_hits_total", "Cache hits per cache.")
        misses = registry.counter("repro_cache_misses_total", "Cache misses per cache.")
        evictions = registry.counter(
            "repro_cache_evictions_total", "Cache evictions per cache."
        )
        inst_hits = registry.counter(
            "repro_cache_instance_hits_total", "Cache hits attributed per instance."
        )
        inst_evictions = registry.counter(
            "repro_cache_instance_evictions_total",
            "Cache evictions attributed per instance.",
        )
        age_sum = registry.gauge(
            "repro_cache_eviction_age_seconds_sum",
            "Summed entry age at eviction per cache.",
        )
        age_count = registry.gauge(
            "repro_cache_eviction_age_seconds_count",
            "Evictions contributing to the age histogram per cache.",
        )
        for report in reports:
            name = report.get("name", "?")
            if "error" in report:
                continue
            size.set(report["size"], cache=name)
            if report.get("capacity") is not None:
                capacity.set(report["capacity"], cache=name)
            if report.get("approx_bytes") is not None:
                approx.set(report["approx_bytes"], cache=name)
            hits.set_total(report["hits"], cache=name)
            misses.set_total(report["misses"], cache=name)
            evictions.set_total(report["evictions"], cache=name)
            for label, counters in report.get("by_instance", {}).items():
                if "hits" in counters:
                    inst_hits.set_total(counters["hits"], cache=name, instance=label)
                if "evictions" in counters:
                    inst_evictions.set_total(
                        counters["evictions"], cache=name, instance=label
                    )
            ages = report.get("eviction_ages") or {}
            age_sum.set(float(ages.get("sum_seconds", 0.0)), cache=name)
            age_count.set(float(ages.get("count", 0)), cache=name)
        return reports


#: The process-global registry the five caches register with.
CACHE_REGISTRY = CacheStatsRegistry()


def register_cache(name: str, provider: Provider) -> None:
    """Register a provider with the process-global registry (last wins)."""
    CACHE_REGISTRY.register(name, provider)


def label_instance(key: str, name: str) -> None:
    """Teach the global registry that attribution key ``key`` is ``name``."""
    CACHE_REGISTRY.label_instance(key, name)
