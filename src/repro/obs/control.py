"""Closed-loop trace sampling: pick 1/N from the observed request rate.

A static ``--trace-sample N`` is wrong twice a day: at night it throws
away traces nobody needed to drop, and during a burst it ships far more
than the telemetry budget.  :class:`AdaptiveSamplingController` closes
the loop — the operator states a *budget* (``--trace-target-rps``, traced
requests per second) and the controller picks N so the traced rate lands
inside a hysteresis band around it:

* every request calls :meth:`observe_arrival` (a counter bump on the hot
  path; rate math runs at most once per ``interval_s``);
* on an interval boundary the arrival rate folds into an EWMA and the
  *traced* rate ``ewma / N`` is compared against the band
  ``[target / (1 + h), target * (1 + h)]``;
* only when the traced rate leaves the band does the controller move N to
  ``ceil(ewma / target)``, clamped to ``[min_rate, max_rate]`` — the
  hysteresis keeps N from flapping between adjacent values on noisy
  arrivals;
* every adjustment is logged (structured, with before/after), counted in
  ``repro_sample_rate_adjustments_total{direction}``, and reflected in
  the ``repro_sample_rate`` / ``repro_sample_observed_rps`` gauges.

The controller owns no thread: it piggybacks on request arrivals, so an
idle server's rate simply stops moving (and the first burst after idle is
traced at the last-known N until one interval elapses — bounded staleness
by construction).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional

from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.sample import TraceSampler

_LOG = get_logger("obs.control")

#: Hard clamp on the head-sampling rate N.
MIN_RATE = 1
MAX_RATE = 4096


class AdaptiveSamplingController:
    """Adjusts a :class:`TraceSampler`'s 1/N rate toward a traced-rps budget."""

    def __init__(
        self,
        sampler: TraceSampler,
        target_rps: float,
        *,
        interval_s: float = 1.0,
        alpha: float = 0.4,
        hysteresis: float = 0.25,
        min_rate: int = MIN_RATE,
        max_rate: int = MAX_RATE,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if target_rps <= 0:
            raise ValueError("target_rps must be > 0")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if hysteresis < 0:
            raise ValueError("hysteresis must be >= 0")
        self.target_rps = float(target_rps)
        self.interval_s = float(interval_s)
        self.alpha = float(alpha)
        self.hysteresis = float(hysteresis)
        self.min_rate = max(MIN_RATE, int(min_rate))
        self.max_rate = min(MAX_RATE, max(self.min_rate, int(max_rate)))
        self._sampler = sampler
        self._clock = clock
        self._lock = threading.Lock()
        self._arrivals = 0
        self._window_started = clock()
        self._ewma_rps: Optional[float] = None
        self._adjustments = 0
        sampler.set_rate(min(max(sampler.rate, self.min_rate), self.max_rate))
        REGISTRY.gauge(
            "repro_sample_rate", "Current head-sampling rate N (1-in-N kept)."
        ).set(sampler.rate)

    def observe_arrival(self) -> None:
        """Count one request arrival; recompute at interval boundaries."""
        now = self._clock()
        with self._lock:
            self._arrivals += 1
            elapsed = now - self._window_started
            if elapsed < self.interval_s:
                return
            arrivals = self._arrivals
            self._arrivals = 0
            self._window_started = now
            rate = arrivals / elapsed
            if self._ewma_rps is None:
                self._ewma_rps = rate
            else:
                self._ewma_rps += self.alpha * (rate - self._ewma_rps)
            ewma = self._ewma_rps
        self._adjust(ewma)

    def _adjust(self, ewma_rps: float) -> None:
        current = self._sampler.rate
        traced_rps = ewma_rps / current
        low = self.target_rps / (1.0 + self.hysteresis)
        high = self.target_rps * (1.0 + self.hysteresis)
        REGISTRY.gauge(
            "repro_sample_observed_rps", "EWMA of observed request arrivals per second."
        ).set(round(ewma_rps, 3))
        if low <= traced_rps <= high:
            return
        desired = max(
            self.min_rate, min(self.max_rate, math.ceil(ewma_rps / self.target_rps))
        )
        if desired == current:
            return
        # Re-check the band at the desired rate: when the clamp pins N, the
        # traced rate may stay out of band and that is the best we can do.
        self._sampler.set_rate(desired)
        with self._lock:
            self._adjustments += 1
        direction = "up" if desired > current else "down"
        REGISTRY.counter(
            "repro_sample_rate_adjustments_total",
            "Adaptive sampling rate changes, by direction (up = sample less).",
        ).inc(direction=direction)
        REGISTRY.gauge(
            "repro_sample_rate", "Current head-sampling rate N (1-in-N kept)."
        ).set(desired)
        _LOG.info(
            "sample_rate_adjusted",
            previous_rate=current,
            rate=desired,
            observed_rps=round(ewma_rps, 3),
            traced_rps=round(ewma_rps / desired, 3),
            target_rps=self.target_rps,
        )

    def stats(self) -> Dict[str, object]:
        with self._lock:
            ewma = self._ewma_rps
            adjustments = self._adjustments
        return {
            "mode": "adaptive",
            "target_rps": self.target_rps,
            "rate": self._sampler.rate,
            "observed_rps": None if ewma is None else round(ewma, 3),
            "hysteresis": self.hysteresis,
            "interval_s": self.interval_s,
            "min_rate": self.min_rate,
            "max_rate": self.max_rate,
            "adjustments": adjustments,
        }
