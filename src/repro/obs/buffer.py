"""A bounded in-memory ring of recently completed traces.

The serving layer records every finished root span here (as an already
serialized dict — recording happens after the request completes, so the
tree is immutable by then).  ``GET /traces/{id}`` and the ``explain``
machinery read from it.  Capacity is fixed; the oldest trace is evicted
when a new one arrives, so memory is bounded regardless of traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional


class TraceBuffer:
    """Keep the last ``capacity`` trace trees, addressable by trace id."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("TraceBuffer capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Dict[str, object]]" = OrderedDict()

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, trace: Dict[str, object]) -> None:
        trace_id = trace.get("trace_id")
        if not isinstance(trace_id, str):
            return
        with self._lock:
            # A retried request may re-record the same id; latest wins.
            self._traces.pop(trace_id, None)
            self._traces[trace_id] = trace
            while len(self._traces) > self._capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            return self._traces.get(trace_id)

    def trace_ids(self) -> List[str]:
        """Retained ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
