"""OTLP/JSON span export: bounded queue, background flush, two sinks.

Retained traces (see :mod:`repro.obs.sample`) are worth shipping somewhere
durable; this module turns finished trace trees into OTLP-shaped JSON
(``ExportTraceServiceRequest``: ``resourceSpans`` → ``scopeSpans`` →
``spans``) and delivers them off the request path:

* :meth:`SpanExporter.submit` is non-blocking — a full queue *drops* the
  trace and counts the drop rather than stalling a request;
* a daemon flush thread drains the queue in batches and delivers with
  retry-and-backoff; delivery failures after the retry budget are counted
  and the batch is discarded (telemetry must never wedge the server);
* the target selects the sink: an ``http://``/``https://`` URL POSTs each
  batch as one JSON request body, anything else appends one JSON object
  per batch to an NDJSON file.

The span encoding keeps the OTLP field shapes (hex ids, nanosecond
timestamps as strings, typed ``attributes``) so the output loads into any
OTLP-tolerant backend or ad-hoc tooling without a translation step.
"""

from __future__ import annotations

import gzip
import json
import queue
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.obs.metrics import REGISTRY

_EXPORT_HELP = "Traces offered to the OTLP exporter, by result."
_RETRY_HELP = "OTLP delivery attempts that failed and were retried."

#: OTLP enum values (trace.proto): SPAN_KIND_INTERNAL, STATUS_CODE_ERROR.
_SPAN_KIND_INTERNAL = 1
_STATUS_OK = 1
_STATUS_ERROR = 2


def _attribute_value(value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attributes(span_dict: Dict[str, Any]) -> List[Dict[str, Any]]:
    out = []
    for key, value in (span_dict.get("tags") or {}).items():
        out.append({"key": str(key), "value": _attribute_value(value)})
    for key, value in (span_dict.get("metrics") or {}).items():
        out.append({"key": f"repro.{key}", "value": _attribute_value(value)})
    cpu_ms = span_dict.get("cpu_ms")
    if cpu_ms is not None:
        out.append({"key": "repro.cpu_ms", "value": _attribute_value(cpu_ms)})
    return out


def _otlp_span(span_dict: Dict[str, Any]) -> Dict[str, Any]:
    started = float(span_dict.get("started_at") or 0.0)
    duration_ms = span_dict.get("duration_ms") or 0.0
    start_nanos = int(started * 1e9)
    end_nanos = int((started + duration_ms / 1000.0) * 1e9)
    status = (span_dict.get("tags") or {}).get("status")
    code = _STATUS_OK
    if isinstance(status, int) and status >= 500:
        code = _STATUS_ERROR
    return {
        "traceId": span_dict.get("trace_id", ""),
        "spanId": span_dict.get("span_id", ""),
        "parentSpanId": span_dict.get("parent_id") or "",
        "name": span_dict.get("name", ""),
        "kind": _SPAN_KIND_INTERNAL,
        "startTimeUnixNano": str(start_nanos),
        "endTimeUnixNano": str(end_nanos),
        "attributes": _attributes(span_dict),
        "status": {"code": code},
    }


def _flatten(span_dict: Dict[str, Any], out: List[Dict[str, Any]]) -> None:
    out.append(_otlp_span(span_dict))
    for child in span_dict.get("children", ()):
        _flatten(child, out)


def encode_traces(
    traces: List[Dict[str, Any]], service_name: str = "repro-serve"
) -> Dict[str, Any]:
    """Encode finished trace trees as one OTLP ``ExportTraceServiceRequest``."""
    spans: List[Dict[str, Any]] = []
    for trace in traces:
        _flatten(trace, spans)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": service_name},
                        }
                    ]
                },
                "scopeSpans": [
                    {"scope": {"name": "repro.obs"}, "spans": spans}
                ],
            }
        ]
    }


class SpanExporter:
    """Ships finished trace trees to an NDJSON file or an HTTP endpoint."""

    def __init__(
        self,
        target: str,
        *,
        queue_size: int = 2048,
        batch_size: int = 64,
        flush_interval_s: float = 0.5,
        retries: int = 3,
        backoff_s: float = 0.2,
        service_name: str = "repro-serve",
        compression: Optional[str] = None,
    ) -> None:
        if not target:
            raise ValueError("SpanExporter requires a file path or URL target")
        if compression not in (None, "gzip"):
            raise ValueError(
                f"SpanExporter compression must be None or 'gzip', "
                f"got {compression!r}"
            )
        self.target = target
        self._is_http = target.startswith(("http://", "https://"))
        self._compression = compression
        self._queue: "queue.Queue[Dict[str, Any]]" = queue.Queue(maxsize=queue_size)
        self._batch_size = max(1, batch_size)
        self._flush_interval_s = max(0.01, flush_interval_s)
        self._retries = max(0, retries)
        self._backoff_s = max(0.0, backoff_s)
        self._service_name = service_name
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._pending = 0  # submitted but not yet delivered/dropped
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> "SpanExporter":
        if self._thread is None or not self._thread.is_alive():
            self._stopping.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-otlp-export", daemon=True
            )
            self._thread.start()
        return self

    @property
    def is_running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def close(self, timeout_s: float = 5.0) -> None:
        """Flush what is queued and stop the flush thread."""
        self._stopping.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout_s)
        self._thread = None

    # -- submission --------------------------------------------------------------------

    def submit(self, trace: Dict[str, Any]) -> bool:
        """Queue one finished trace tree; never blocks the request path."""
        if self._stopping.is_set():
            return False
        try:
            self._queue.put_nowait(trace)
        except queue.Full:
            REGISTRY.counter("repro_otlp_export_total", _EXPORT_HELP).inc(
                result="dropped_queue_full"
            )
            return False
        with self._lock:
            self._pending += 1
        return True

    def flush(self, timeout_s: float = 5.0) -> bool:
        """Wait until every submitted trace was delivered or dropped."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if self._pending == 0:
                    return True
            time.sleep(0.01)
        with self._lock:
            return self._pending == 0

    def stats(self) -> Dict[str, object]:
        counter = REGISTRY.counter("repro_otlp_export_total", _EXPORT_HELP)
        with self._lock:
            pending = self._pending
        return {
            "target": self.target,
            "sink": "http" if self._is_http else "file",
            "compression": self._compression,
            "running": self.is_running,
            "pending": pending,
            "exported": counter.value(result="exported"),
            "dropped_queue_full": counter.value(result="dropped_queue_full"),
            "dropped_delivery": counter.value(result="dropped_delivery"),
            "retries": REGISTRY.counter(
                "repro_otlp_export_retries_total", _RETRY_HELP
            ).value(),
        }

    # -- flush thread ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._drain_batch()
            if batch:
                self._export_batch(batch)
            elif self._stopping.is_set():
                return

    def _drain_batch(self) -> List[Dict[str, Any]]:
        try:
            first = self._queue.get(timeout=self._flush_interval_s)
        except queue.Empty:
            return []
        batch = [first]
        while len(batch) < self._batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return batch

    def _export_batch(self, batch: List[Dict[str, Any]]) -> None:
        counter = REGISTRY.counter("repro_otlp_export_total", _EXPORT_HELP)
        payload = json.dumps(
            encode_traces(batch, self._service_name), separators=(",", ":")
        )
        try:
            self._deliver_with_retry(payload)
        except Exception:  # noqa: BLE001 — telemetry must never propagate
            counter.inc(len(batch), result="dropped_delivery")
        else:
            counter.inc(len(batch), result="exported")
        finally:
            with self._lock:
                self._pending = max(0, self._pending - len(batch))

    def _deliver_with_retry(self, payload: str) -> None:
        for attempt in range(self._retries + 1):
            try:
                self._deliver(payload)
                return
            except Exception:  # noqa: BLE001 — retried below
                if attempt == self._retries:
                    raise
                REGISTRY.counter(
                    "repro_otlp_export_retries_total", _RETRY_HELP
                ).inc()
                time.sleep(self._backoff_s * (2**attempt))

    def _deliver(self, payload: str) -> None:
        """Deliver one encoded batch (overridable for tests).

        With ``compression="gzip"`` the HTTP sink posts a gzip body with
        ``Content-Encoding: gzip`` (the OTLP/HTTP spec's optional payload
        compression — collectors advertise support universally); the file
        sink stays plain NDJSON so the file remains greppable.
        """
        if self._is_http:
            body = payload.encode("utf-8")
            headers = {"Content-Type": "application/json"}
            if self._compression == "gzip":
                body = gzip.compress(body)
                headers["Content-Encoding"] = "gzip"
            request = urllib.request.Request(
                self.target, data=body, headers=headers, method="POST"
            )
            with urllib.request.urlopen(request, timeout=5.0):
                pass
        else:
            with open(self.target, "a", encoding="utf-8") as handle:
                handle.write(payload + "\n")
