"""Structured JSON logging, one object per line, trace-id stamped.

Every component logs through :func:`get_logger`; each event becomes a
single JSON line on stderr::

    {"ts": 1754650000.123, "level": "info", "component": "serve",
     "event": "listening", "trace_id": null, "host": "127.0.0.1", ...}

The ``trace_id`` field is filled from the active span automatically, so a
log line emitted three layers below HTTP ingress still correlates with the
request that caused it.  Events ride Python's stdlib ``logging`` (logger
name ``repro.obs``), so tests and embedders can attach handlers or raise
the level; the default handler writes to stderr and does not propagate,
keeping lines un-duplicated when an application configures the root logger.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any, Dict

from repro.obs.trace import current_trace_id

_LOGGER_NAME = "repro.obs"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def _base_logger() -> logging.Logger:
    logger = logging.getLogger(_LOGGER_NAME)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()  # stderr
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    return logger


class StructuredLogger:
    """A component-scoped emitter of one-line JSON events."""

    def __init__(self, component: str) -> None:
        self._component = component
        self._logger = _base_logger()

    def log(self, level: str, event: str, **fields: Any) -> None:
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self._component,
            "event": event,
            "trace_id": current_trace_id(),
        }
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        self._logger.log(_LEVELS.get(level, logging.INFO), line)

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def get_logger(component: str) -> StructuredLogger:
    return StructuredLogger(component)
