"""Structured JSON logging, one object per line, trace-id stamped.

Every component logs through :func:`get_logger`; each event becomes a
single JSON line on stderr::

    {"ts": 1754650000.123, "level": "info", "component": "serve",
     "event": "listening", "trace_id": null, "host": "127.0.0.1", ...}

The ``trace_id`` field is filled from the active span automatically, so a
log line emitted three layers below HTTP ingress still correlates with the
request that caused it.  Events ride Python's stdlib ``logging`` (logger
name ``repro.obs``), so tests and embedders can attach handlers or raise
the level; the default handler writes to stderr and does not propagate,
keeping lines un-duplicated when an application configures the root logger.
"""

from __future__ import annotations

import json
import logging
import os
import time
import warnings
from typing import Any, Dict, Optional, Set

from repro.obs.trace import current_trace_id

_LOGGER_NAME = "repro.obs"

ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_WARNED_ENV_NAMES: Set[str] = set()


def _reset_env_warnings() -> None:
    """Test hook mirroring :func:`repro.engine.batch._reset_env_warnings`."""
    _WARNED_ENV_NAMES.clear()


def parse_log_level(raw: Optional[str], env_name: str = ENV_LOG_LEVEL) -> Optional[int]:
    """Map ``debug|info|warning|error`` (any case) to a logging level.

    Returns ``None`` for unset/empty input; malformed values warn once per
    process and also return ``None`` (keep the ``info`` default).
    """
    if raw is None or not raw.strip():
        return None
    level = _LEVELS.get(raw.strip().lower())
    if level is None and env_name not in _WARNED_ENV_NAMES:
        _WARNED_ENV_NAMES.add(env_name)
        warnings.warn(
            f"ignoring malformed {env_name}={raw!r} "
            f"(expected one of {', '.join(sorted(_LEVELS))}); keeping 'info'",
            RuntimeWarning,
            stacklevel=4,
        )
    return level


def set_log_level(level: str) -> None:
    """Set the shared ``repro.obs`` logger's threshold (``debug``..``error``)."""
    parsed = parse_log_level(level)
    if parsed is not None:
        _base_logger().setLevel(parsed)


def _base_logger() -> logging.Logger:
    logger = logging.getLogger(_LOGGER_NAME)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()  # stderr
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        env_level = parse_log_level(os.environ.get(ENV_LOG_LEVEL))
        logger.setLevel(logging.INFO if env_level is None else env_level)
        logger.propagate = False
    return logger


class StructuredLogger:
    """A component-scoped emitter of one-line JSON events."""

    def __init__(self, component: str) -> None:
        self._component = component
        self._logger = _base_logger()

    def log(self, level: str, event: str, **fields: Any) -> None:
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self._component,
            "event": event,
            "trace_id": current_trace_id(),
        }
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        self._logger.log(_LEVELS.get(level, logging.INFO), line)

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def get_logger(component: str) -> StructuredLogger:
    return StructuredLogger(component)
