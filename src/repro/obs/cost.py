"""Per-query cost accounting: who is burning the CPU right now?

Spans already time every phase of a request; this module adds *cost*:

* :func:`add_cost` accumulates domain counters (``facts_scanned``,
  ``blocks_touched``, ``repairs_expanded``, ``shard_fallbacks``,
  ``store_fsyncs``, ``summary_states``, ``summary_cache_hits``,
  ``summary_cache_misses``) on the active span — one dict
  update at sites that already open spans, no new wiring;
* :func:`rollup` folds a finished trace tree into one cost record:
  counters sum across all spans, CPU sums *without double counting* — a
  span's thread-CPU clock already includes its same-thread descendants, so
  only spans that start a new thread of execution (the root, executor-pool
  spans, worker-process spans — recognized by a ``tid`` differing from the
  parent's) contribute;
* :class:`CostTable` aggregates rollups per ``(instance, plan)`` key into
  a bounded, LRU-evicting table with EWMA latency/CPU and a recent-window
  p95, which the server serves at ``GET /debug/top?sort=cpu|p95|count``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.caches import EvictionAges, approx_sizeof, cache_report
from repro.obs.trace import current_span

#: The domain counters fed by the engine/sharding/worker/store span sites.
DOMAIN_COUNTERS = (
    "facts_scanned",
    "blocks_touched",
    "repairs_expanded",
    "shard_fallbacks",
    "store_fsyncs",
    "summary_states",
    "summary_cache_hits",
    "summary_cache_misses",
)


def add_cost(key: str, amount: float = 1) -> None:
    """Accumulate a domain counter on the active span (no-op untraced)."""
    span = current_span()
    if span is not None:
        span.add_metric(key, amount)


def rollup(tree: Dict[str, Any]) -> Dict[str, Any]:
    """Fold one serialized trace tree into ``{"cpu_ms", "counters"}``."""
    counters: Dict[str, float] = {}
    cpu_ms = 0.0

    def walk(node: Dict[str, Any], parent_tid: Optional[str]) -> None:
        nonlocal cpu_ms
        tid = node.get("tid")
        node_cpu = node.get("cpu_ms")
        if node_cpu is not None and (parent_tid is None or tid != parent_tid):
            cpu_ms += float(node_cpu)
        for key, value in (node.get("metrics") or {}).items():
            counters[key] = counters.get(key, 0) + value
        for child in node.get("children", ()):
            walk(child, tid)

    walk(tree, None)
    return {"cpu_ms": round(cpu_ms, 3), "counters": counters}


class _CostEntry:
    __slots__ = (
        "count",
        "ewma_latency_ms",
        "ewma_cpu_ms",
        "total_cpu_ms",
        "counters",
        "recent_ms",
        "last_trace_id",
        "created_at",
    )

    def __init__(self, window: int) -> None:
        self.count = 0
        self.ewma_latency_ms = 0.0
        self.ewma_cpu_ms = 0.0
        self.total_cpu_ms = 0.0
        self.counters: Dict[str, float] = {}
        self.recent_ms: "deque[float]" = deque(maxlen=window)
        self.last_trace_id: Optional[str] = None
        self.created_at = time.monotonic()

    def p95_ms(self) -> Optional[float]:
        if not self.recent_ms:
            return None
        ordered = sorted(self.recent_ms)
        index = min(len(ordered) - 1, round(0.95 * (len(ordered) - 1)))
        return round(ordered[index], 3)


class CostTable:
    """Bounded concurrent rollup of per-(instance, plan) execution cost.

    EWMA smoothing (``alpha``) makes the latency/CPU columns reflect *now*
    rather than the process's whole lifetime; the recent window backs the
    p95 column.  When the table is full, the least-recently-updated key is
    evicted — a key that stopped receiving traffic stops being interesting.
    """

    def __init__(
        self, capacity: int = 512, alpha: float = 0.2, window: int = 64
    ) -> None:
        if capacity < 1:
            raise ValueError("CostTable capacity must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("CostTable alpha must be in (0, 1]")
        self._capacity = capacity
        self._alpha = alpha
        self._window = max(1, window)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], _CostEntry]" = OrderedDict()
        self._evictions = 0
        self._observations = 0
        self._hits = 0  # observations that updated an existing key
        self._misses = 0  # observations that created a key
        self._by_instance: Dict[str, Dict[str, int]] = {}
        self._ages = EvictionAges()

    @property
    def capacity(self) -> int:
        return self._capacity

    def observe(
        self,
        instance: str,
        plan: str,
        duration_ms: float,
        cpu_ms: float,
        counters: Optional[Dict[str, float]] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        key = (instance, plan)
        with self._lock:
            entry = self._entries.get(key)
            per_instance = self._by_instance.setdefault(
                instance, {"hits": 0, "misses": 0, "evictions": 0}
            )
            if entry is None:
                self._misses += 1
                per_instance["misses"] += 1
                entry = self._entries[key] = _CostEntry(self._window)
                now = time.monotonic()
                while len(self._entries) > self._capacity:
                    (evicted_instance, _), evicted = self._entries.popitem(last=False)
                    self._evictions += 1
                    self._ages.observe(now - evicted.created_at)
                    victim = self._by_instance.setdefault(
                        evicted_instance, {"hits": 0, "misses": 0, "evictions": 0}
                    )
                    victim["evictions"] += 1
            else:
                self._hits += 1
                per_instance["hits"] += 1
                self._entries.move_to_end(key)
            alpha = self._alpha
            if entry.count == 0:
                entry.ewma_latency_ms = duration_ms
                entry.ewma_cpu_ms = cpu_ms
            else:
                entry.ewma_latency_ms += alpha * (duration_ms - entry.ewma_latency_ms)
                entry.ewma_cpu_ms += alpha * (cpu_ms - entry.ewma_cpu_ms)
            entry.count += 1
            entry.total_cpu_ms += cpu_ms
            entry.recent_ms.append(duration_ms)
            if trace_id:
                entry.last_trace_id = trace_id
            for name, value in (counters or {}).items():
                entry.counters[name] = entry.counters.get(name, 0) + value
            self._observations += 1

    def lookup(self, instance: str, plan: str) -> Optional[Dict[str, float]]:
        """A read-only peek at one key's EWMA columns, or ``None`` when cold.

        Unlike :meth:`observe` this neither touches LRU order nor counts as
        a hit/miss: admission-control predictions must not keep a key warm
        that traffic alone would have evicted.
        """
        with self._lock:
            entry = self._entries.get((instance, plan))
            if entry is None:
                return None
            return {
                "count": entry.count,
                "ewma_latency_ms": round(entry.ewma_latency_ms, 3),
                "ewma_cpu_ms": round(entry.ewma_cpu_ms, 3),
                "p95_ms": entry.p95_ms(),
            }

    def report(self, name: str = "cost_table") -> Dict[str, object]:
        """This table in the :mod:`repro.obs.caches` common report schema.

        "Hit" means an observation landed on an existing (instance, plan)
        key; per-instance attribution uses the instance half of the key.
        """
        with self._lock:
            size = len(self._entries)
            hits, misses, evictions = self._hits, self._misses, self._evictions
            by_instance = {k: dict(v) for k, v in self._by_instance.items()}
            sample = list(self._entries.values())[:16]
        return cache_report(
            name,
            size=size,
            capacity=self._capacity,
            hits=hits,
            misses=misses,
            evictions=evictions,
            by_instance=by_instance,
            eviction_ages=self._ages.snapshot(),
            approx_bytes=approx_sizeof(sample, total=size),
        )

    def top(self, sort: str = "cpu", limit: int = 20) -> List[Dict[str, object]]:
        """The ``limit`` most expensive keys by ``cpu``, ``p95`` or ``count``."""
        if sort not in ("cpu", "p95", "count"):
            raise ValueError(f"unknown sort {sort!r}; use cpu, p95 or count")
        with self._lock:
            rows = [
                {
                    "instance": instance,
                    "plan": plan,
                    "count": entry.count,
                    "ewma_latency_ms": round(entry.ewma_latency_ms, 3),
                    "ewma_cpu_ms": round(entry.ewma_cpu_ms, 3),
                    "total_cpu_ms": round(entry.total_cpu_ms, 3),
                    "p95_ms": entry.p95_ms(),
                    "counters": dict(entry.counters),
                    "last_trace_id": entry.last_trace_id,
                }
                for (instance, plan), entry in self._entries.items()
            ]
        sort_key = {
            "cpu": lambda row: row["ewma_cpu_ms"],
            "p95": lambda row: row["p95_ms"] or 0.0,
            "count": lambda row: row["count"],
        }[sort]
        rows.sort(key=sort_key, reverse=True)
        return rows[: max(1, limit)]

    def summary(self) -> Dict[str, object]:
        """The ``/metrics`` digest: table shape plus aggregate totals."""
        with self._lock:
            total_cpu = sum(e.total_cpu_ms for e in self._entries.values())
            counters: Dict[str, float] = {}
            for entry in self._entries.values():
                for name, value in entry.counters.items():
                    counters[name] = counters.get(name, 0) + value
            return {
                "entries": len(self._entries),
                "capacity": self._capacity,
                "evictions": self._evictions,
                "observations": self._observations,
                "total_cpu_ms": round(total_cpu, 3),
                "counters": counters,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
