"""Hand-rolled Prometheus text exposition (format version 0.0.4).

Two sources feed the page:

* the :class:`~repro.serve.metrics.ServerMetrics` JSON snapshot — its
  per-endpoint latency histograms are already Prometheus-shaped fixed
  buckets, so exposition is a mechanical reshape (per-bucket counts become
  cumulative ``le`` series), and
* the process-global :class:`~repro.obs.metrics.MetricsRegistry`, whose
  instruments (worker queue depth, spool hits, fsync latency, shard
  fallback reasons) render generically.

No client library is involved: the format is four line shapes (``# HELP``,
``# TYPE``, samples, blank) and is produced with plain string formatting.
Latency bucket lines additionally carry OpenMetrics exemplars
(``... # {trace_id="..."} value ts``) when the snapshot has one for the
bucket, linking a percentile spike straight to ``GET /traces/{id}``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

LabelSet = Tuple[Tuple[str, str], ...]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _sample(name: str, labels: LabelSet, value: float) -> str:
    return f"{name}{_format_labels(labels)} {_format_value(value)}"


def _header(lines: List[str], name: str, kind: str, help_text: str) -> None:
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def _histogram_from_snapshot(
    lines: List[str],
    name: str,
    per_key: Dict[str, Dict[str, object]],
    label_name: str,
    help_text: str,
) -> None:
    """Render ``{key: LatencyHistogram.snapshot()}`` as one histogram family."""
    _header(lines, name, "histogram", help_text)
    for key, snap in per_key.items():
        buckets = snap.get("buckets", {})
        exemplars = snap.get("exemplars", {})
        cumulative = 0
        for bound, count in buckets.items():  # insertion order: sorted bounds, +Inf
            cumulative += int(count)
            line = _sample(
                f"{name}_bucket",
                ((label_name, key), ("le", bound)),
                float(cumulative),
            )
            exemplar = exemplars.get(bound) if isinstance(exemplars, dict) else None
            if exemplar:
                line += (
                    f' # {{trace_id="{_escape_label_value(str(exemplar["trace_id"]))}"}}'
                    f' {_format_value(float(exemplar["value_seconds"]))}'
                    f' {float(exemplar["ts"]):.3f}'
                )
            lines.append(line)
        lines.append(
            _sample(f"{name}_sum", ((label_name, key),), float(snap.get("sum_seconds", 0.0)))
        )
        lines.append(
            _sample(f"{name}_count", ((label_name, key),), float(snap.get("count", 0)))
        )


def render(
    server_snapshot: Dict[str, object],
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Render the metrics page; ``server_snapshot`` is ``ServerMetrics.snapshot()``."""
    lines: List[str] = []

    _header(lines, "repro_uptime_seconds", "gauge", "Seconds since server start.")
    lines.append(
        _sample("repro_uptime_seconds", (), float(server_snapshot.get("uptime_seconds", 0.0)))
    )
    _header(lines, "repro_requests_in_flight", "gauge", "Requests currently executing.")
    lines.append(
        _sample("repro_requests_in_flight", (), float(server_snapshot.get("in_flight", 0)))
    )
    _header(
        lines,
        "repro_requests_rejected_total",
        "counter",
        "Requests rejected by admission control (503).",
    )
    lines.append(
        _sample(
            "repro_requests_rejected_total",
            (),
            float(server_snapshot.get("rejected_total", 0)),
        )
    )
    _header(
        lines, "repro_request_timeouts_total", "counter", "Requests timed out (504)."
    )
    lines.append(
        _sample(
            "repro_request_timeouts_total",
            (),
            float(server_snapshot.get("timeout_total", 0)),
        )
    )

    requests_total = server_snapshot.get("requests_total", {})
    if isinstance(requests_total, dict):
        _header(
            lines,
            "repro_requests_total",
            "counter",
            "Requests served, by endpoint and HTTP status.",
        )
        for endpoint, by_status in requests_total.items():
            for status, count in sorted(by_status.items()):
                lines.append(
                    _sample(
                        "repro_requests_total",
                        (("endpoint", endpoint), ("status", status)),
                        float(count),
                    )
                )

    latency = server_snapshot.get("latency", {})
    if isinstance(latency, dict) and latency:
        _histogram_from_snapshot(
            lines,
            "repro_request_latency_seconds",
            latency,
            "endpoint",
            "End-to-end request latency by endpoint.",
        )

    if registry is not None:
        for instrument in registry.instruments():
            if isinstance(instrument, Histogram):
                _header(lines, instrument.name, "histogram", instrument.help)
                for sample_name, labels, value in instrument.samples():
                    lines.append(_sample(sample_name, labels, value))
            elif isinstance(instrument, (Counter, Gauge)):
                _header(lines, instrument.name, instrument.kind, instrument.help)
                samples = instrument.samples()
                if not samples:
                    lines.append(_sample(instrument.name, (), 0.0))
                for sample_name, labels, value in samples:
                    lines.append(_sample(sample_name, labels, value))

    return "\n".join(lines) + "\n"
