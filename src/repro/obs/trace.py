"""Request-scoped tracing: a ``contextvars``-based span tree.

A *trace* is one request's tree of timed spans.  The root span is opened at
HTTP ingress (see :mod:`repro.serve.app`), child spans instrument each phase
the request passes through — plan compile, backend execution, per-shard
summarisation, worker dispatch, store writes — and the finished tree is
retained in a bounded :class:`~repro.obs.buffer.TraceBuffer`, returned
inline for ``"explain": true`` requests, and emitted whole by the
slow-query log.

Design constraints, in order:

1. **Near-zero cost when idle.**  :func:`span` is a no-op context manager
   both when tracing is globally disabled and when no trace is active on
   the current context (library code called outside a request).  The fast
   path is one ``ContextVar.get`` and one boolean.
2. **Explicit propagation across pools.**  ``contextvars`` do *not* flow
   into ``ThreadPoolExecutor`` threads or worker processes by themselves.
   Thread hops use :func:`contextvars.copy_context`; process hops ship a
   compact ``(trace_id, span_id)`` pair — :func:`propagation_context` — in
   the job payload, and the worker's spans come back as plain dicts that
   :func:`reparent` grafts under the dispatching span.
3. **No global collection.**  A span tree is reachable only from its root;
   when the request is done the tree is serialized (or dropped) and the
   context variable is reset.  Nothing here can leak across requests.
"""

from __future__ import annotations

import contextvars
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Header carrying the trace id into and out of the HTTP layer.
TRACE_HEADER = "X-Repro-Trace-Id"

#: A compact cross-process trace context: ``(trace_id, parent_span_id)``.
TraceContext = Tuple[str, str]


def _env_default() -> bool:
    raw = os.environ.get("REPRO_TRACING", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


_tracing_enabled: bool = _env_default()


def set_tracing(enabled: bool) -> None:
    """Globally enable/disable tracing (per-process switch)."""
    global _tracing_enabled
    _tracing_enabled = bool(enabled)


def tracing_enabled() -> bool:
    return _tracing_enabled


# Ids come from a process-local PRNG, not ``uuid4``: uuid4 reads
# ``os.urandom`` per call, and that syscall is a GIL release point — at
# ~7 ids per traced request it measurably inflates tail latency under
# concurrency.  Seeded from OS entropy once per process; forked worker
# processes reseed so they cannot emit colliding span ids.
_rng = random.Random()

#: Cached per-process id, part of every span's ``tid`` (thread identity).
#: Refreshed after fork so worker-side spans are attributed to the worker.
_PID = os.getpid()


def _reseed_rng() -> None:
    global _PID
    _rng.seed(os.urandom(16))
    _PID = os.getpid()


_reseed_rng()
if hasattr(os, "register_at_fork"):  # not on Windows
    os.register_at_fork(after_in_child=_reseed_rng)


def new_trace_id() -> str:
    return f"{_rng.getrandbits(128):032x}"


def new_span_id() -> str:
    return f"{_rng.getrandbits(64):016x}"


class Span:
    """One timed node in a trace tree.

    Wall-clock anchor is ``time.time`` (for log correlation); duration is
    measured with ``time.perf_counter``; ``cpu_ms`` is the opening thread's
    CPU time between open and close (``time.thread_time``).  Children
    created in-process are :class:`Span` objects; children received from a
    worker process arrive as already-serialized dicts and live in
    ``remote_children``.

    ``sampled`` is the trace's head-sampling decision, inherited root to
    leaf: spans of a head-dropped trace are still recorded locally (the
    tail-keep rule may retain the trace at close), but
    :func:`propagation_context` withholds the cross-process context so a
    worker never records spans for such a trace.

    ``metrics`` holds additive domain counters (facts scanned, blocks
    touched, ...) fed by :func:`repro.obs.cost.add_cost` at span sites.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "tags",
        "children",
        "remote_children",
        "started_at",
        "_started_pc",
        "_started_cpu",
        "duration_ms",
        "cpu_ms",
        "sampled",
        "thread_id",
        "metrics",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        tags: Optional[Dict[str, Any]] = None,
        sampled: bool = True,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.children: List["Span"] = []
        self.remote_children: List[Dict[str, Any]] = []
        self.started_at = time.time()
        self._started_pc = time.perf_counter()
        self._started_cpu = time.thread_time()
        self.duration_ms: Optional[float] = None  # None while open
        self.cpu_ms: Optional[float] = None
        self.sampled = sampled
        self.thread_id = threading.get_ident()
        self.metrics: Dict[str, float] = {}

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def add_metric(self, key: str, amount: float = 1) -> None:
        """Accumulate a domain counter on this span (additive)."""
        self.metrics[key] = self.metrics.get(key, 0) + amount

    def finish(self) -> None:
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self._started_pc) * 1000.0
            self.cpu_ms = (time.thread_time() - self._started_cpu) * 1000.0

    @property
    def finished(self) -> bool:
        return self.duration_ms is not None

    def add_remote_children(self, span_dicts: List[Dict[str, Any]]) -> None:
        """Graft spans serialized by a worker process under this span.

        Each dict is re-parented in place: its ``trace_id`` is rewritten
        recursively (a worker that raced a retry may carry a stale one)
        and the top-level ``parent_id`` becomes this span's id.
        """
        for span_dict in span_dicts:
            reparent(span_dict, self.trace_id, self.span_id)
            self.remote_children.append(span_dict)

    def to_dict(self) -> Dict[str, Any]:
        children = [child.to_dict() for child in self.children]
        children.extend(self.remote_children)
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_ms": (
                None if self.duration_ms is None else round(self.duration_ms, 3)
            ),
            "cpu_ms": (None if self.cpu_ms is None else round(self.cpu_ms, 3)),
            # Thread identity is pid-qualified: a worker-process span must
            # never alias a parent-process thread when CPU is rolled up.
            "tid": f"{_PID}:{self.thread_id}",
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        if children:
            out["children"] = children
        return out


def reparent(span_dict: Dict[str, Any], trace_id: str, parent_id: str) -> None:
    """Rewrite a serialized span tree onto ``trace_id`` under ``parent_id``."""
    span_dict["trace_id"] = trace_id
    span_dict["parent_id"] = parent_id
    for child in span_dict.get("children", ()):
        reparent(child, trace_id, span_dict.get("span_id", parent_id))


_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional[Span]:
    return _current_span.get()


def current_trace_id() -> Optional[str]:
    active = _current_span.get()
    return active.trace_id if active is not None else None


@contextmanager
def start_trace(
    name: str,
    trace_id: Optional[str] = None,
    sampled: bool = True,
    **tags: Any,
) -> Iterator[Optional[Span]]:
    """Open a trace's root span on the current context.

    Yields ``None`` (and does nothing) when tracing is disabled, so call
    sites can be unconditional.  ``sampled=False`` records the head
    sampler's drop decision: spans are still built (the tail-keep rule may
    retain the trace at close) but the decision is inherited by every child
    and withheld from :func:`propagation_context`.
    """
    if not _tracing_enabled:
        yield None
        return
    root = Span(name, trace_id or new_trace_id(), None, tags, sampled=sampled)
    token = _current_span.set(root)
    try:
        yield root
    finally:
        root.finish()
        _current_span.reset(token)


@contextmanager
def span(name: str, **tags: Any) -> Iterator[Optional[Span]]:
    """Open a child of the current span; no-op outside an active trace."""
    parent = _current_span.get()
    if parent is None or not _tracing_enabled:
        yield None
        return
    child = Span(name, parent.trace_id, parent.span_id, tags, sampled=parent.sampled)
    parent.children.append(child)
    token = _current_span.set(child)
    try:
        yield child
    finally:
        child.finish()
        _current_span.reset(token)


@contextmanager
def remote_root(
    name: str, context: Optional[TraceContext], **tags: Any
) -> Iterator[Optional[Span]]:
    """Worker-process side of cross-process propagation.

    ``context`` is the ``(trace_id, parent_span_id)`` pair shipped in the
    job payload (or ``None`` for untraced jobs).  The span opened here is a
    *local* root — it is serialized with the job result and grafted under
    the dispatching span by :meth:`Span.add_remote_children`.
    """
    if context is None or not _tracing_enabled:
        yield None
        return
    trace_id, parent_span_id = context
    root = Span(name, trace_id, parent_span_id, tags)
    token = _current_span.set(root)
    try:
        yield root
    finally:
        root.finish()
        _current_span.reset(token)


def propagation_context() -> Optional[TraceContext]:
    """The ``(trace_id, span_id)`` pair to ship across a process boundary.

    Head-dropped traces (``sampled=False``) ship no context: worker spans
    for a trace the sampler already decided against would cross the result
    pipe only to be discarded.
    """
    active = _current_span.get()
    if active is None or not _tracing_enabled or not active.sampled:
        return None
    return (active.trace_id, active.span_id)
