"""Cost-predictive admission: shed by what a request will cost, not queue depth.

Depth-only admission (N slots, 503 when full) treats a 0.5 ms point
lookup and a 400 ms branch-and-bound flood identically: the expensive
plan fills every slot and the cheap traffic starves behind it.  The cost
table already knows, per ``(instance, plan)``, what a request of each
shape costs — this module closes that loop:

* :class:`CostPredictor` peeks at the :class:`~repro.obs.cost.CostTable`
  EWMA (read-only — predictions must not keep keys LRU-warm) and predicts
  the *engine CPU* a request will burn.  CPU, not wall latency, on
  purpose: under an expensive-plan flood the cheap plans' wall latency
  balloons from queueing, and predicting on it would shed exactly the
  traffic the gate is trying to protect.
* the serving layer turns a prediction plus the gate's queued-cost
  ledger into an :class:`AdmissionDecision`: shed with
  ``reason="predicted_cost"`` when admitting would push the queued CPU
  over the budget, admit cold keys on depth alone (``reason="cold_key"``),
  never shed an empty gate — one expensive request on an idle server
  must run, or the budget livelocks the plan forever — and never
  cost-shed a request predicted under a small fraction of the budget
  (shedding it would free negligible drain time; see
  ``AdmissionGate.COST_EXEMPT_FRACTION``).

Every decision lands in ``repro_admission_total{decision,reason}``; shed
responses carry ``Retry-After`` derived from the queued cost (how long
the backlog takes to drain at one core).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.cost import CostTable
from repro.obs.metrics import REGISTRY

#: Decisions / reasons for ``repro_admission_total``.
DECISION_ADMITTED = "admitted"
DECISION_SHED = "shed"
REASON_DEPTH = "depth"  # depth check decided (admitted or at capacity)
REASON_COLD_KEY = "cold_key"  # no prediction available, depth-only fallback
REASON_PREDICTED_COST = "predicted_cost"  # budget check decided
REASON_COST_OK = "cost_ok"  # prediction available and under budget

_ADMISSION_HELP = "Admission decisions, by decision and reason."


@dataclass(frozen=True)
class AdmissionDecision:
    """One gate verdict, with everything the 503 envelope needs."""

    admitted: bool
    reason: str
    predicted_cost_ms: Optional[float] = None
    queued_cost_ms: float = 0.0
    retry_after_s: Optional[int] = None

    def to_payload(self) -> Dict[str, object]:
        """The ``"admission"`` fragment inlined into explain payloads."""
        return {
            "admitted": self.admitted,
            "reason": self.reason,
            "predicted_cost_ms": self.predicted_cost_ms,
            "queued_cost_ms": round(self.queued_cost_ms, 3),
        }


def record_decision(decision: AdmissionDecision) -> None:
    REGISTRY.counter("repro_admission_total", _ADMISSION_HELP).inc(
        decision=DECISION_ADMITTED if decision.admitted else DECISION_SHED,
        reason=decision.reason,
    )


def retry_after_s(queued_cost_ms: float) -> int:
    """Seconds for the queued CPU backlog to drain at one core, in [1, 30]."""
    return max(1, min(30, math.ceil(queued_cost_ms / 1000.0)))


class CostPredictor:
    """Predicts a request's engine CPU from the cost table's EWMA columns."""

    def __init__(self, table: CostTable, min_observations: int = 2) -> None:
        self._table = table
        self._min_observations = max(1, min_observations)

    def predict_ms(
        self, instance: Optional[str], plan: Optional[str]
    ) -> Optional[float]:
        """EWMA CPU for ``(instance, plan)``, or ``None`` when the key is cold.

        A key observed fewer than ``min_observations`` times stays "cold":
        a single outlier measurement must not start shedding a plan.
        """
        if not instance or not plan:
            return None
        entry = self._table.lookup(instance, plan)
        if entry is None or entry["count"] < self._min_observations:
            return None
        return max(0.0, float(entry["ewma_cpu_ms"]))
