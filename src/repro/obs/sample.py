"""Trace sampling: head-based 1-in-N with a tail-based keep rule.

Under sustained load, tracing every request fills the trace buffer with
healthy traffic and ships megabytes of spans nobody reads.  The sampler
splits the decision in two:

* **Head** (:meth:`TraceSampler.sample`, at request ingress): a
  deterministic 1-in-N rotation decides whether the trace is *provisionally
  kept*.  The decision propagates: a head-dropped trace still records its
  local spans (cheaply, in memory) but ships no cross-process context, so
  workers never serialize spans that are overwhelmingly likely to be
  discarded.
* **Tail** (:meth:`TraceSampler.decide`, at trace close): the *retention*
  decision.  Head-kept traces are retained; head-dropped traces are
  rescued when they turn out slow (over the server's ``slow_query_ms``) or
  erroneous (5xx) — exactly the traces worth keeping at 100%.

The rate comes from ``--trace-sample N`` or the ``REPRO_TRACE_SAMPLE``
environment variable (``N`` or ``1/N``; malformed values warn once and fall
back to 1, the trace-everything default — the same contract as the
``REPRO_BATCH_*`` knobs).

:class:`DroppedTraceLog` remembers recently sampled-out trace ids so
``GET /traces/{id}`` can tell "sampled out" apart from "evicted".
"""

from __future__ import annotations

import os
import threading
import warnings
from collections import deque
from typing import Optional, Set

from repro.obs.metrics import REGISTRY

ENV_SAMPLE_RATE = "REPRO_TRACE_SAMPLE"

#: Retention decisions, in precedence order.
DECISION_HEAD = "head"
DECISION_SLOW = "slow"
DECISION_ERROR = "error"
DECISION_DROP = "sampled_out"

_RETENTION_HELP = "Trace retention decisions at trace close, by decision."

_WARNED_ENV_NAMES: Set[str] = set()


def _reset_env_warnings() -> None:
    """Test hook mirroring :func:`repro.engine.batch._reset_env_warnings`."""
    _WARNED_ENV_NAMES.clear()


def _warn_once(name: str, raw: str) -> None:
    if name not in _WARNED_ENV_NAMES:
        _WARNED_ENV_NAMES.add(name)
        warnings.warn(
            f"ignoring malformed {name}={raw!r} (expected a positive integer "
            f"N or '1/N'); tracing every request",
            RuntimeWarning,
            stacklevel=4,
        )


def parse_sample_rate(raw: Optional[str], env_name: str = ENV_SAMPLE_RATE) -> int:
    """Parse a sample rate spec: ``"10"`` and ``"1/10"`` both mean 1-in-10.

    Returns 1 (trace everything) for ``None``/empty/malformed input;
    malformed input additionally warns once per process.
    """
    if raw is None or not raw.strip():
        return 1
    text = raw.strip()
    if "/" in text:
        numerator, _, denominator = text.partition("/")
        if numerator.strip() != "1":
            _warn_once(env_name, raw)
            return 1
        text = denominator.strip()
    try:
        rate = int(text)
    except ValueError:
        _warn_once(env_name, raw)
        return 1
    if rate < 1:
        _warn_once(env_name, raw)
        return 1
    return rate


def env_sample_rate() -> int:
    """The process-wide default rate from ``REPRO_TRACE_SAMPLE`` (1 if unset)."""
    return parse_sample_rate(os.environ.get(ENV_SAMPLE_RATE))


class TraceSampler:
    """Head-samples 1-in-``rate`` traces and applies the tail-keep rule.

    The head decision is a deterministic rotation (the first request and
    every ``rate``-th after it are kept) rather than a coin flip: tests and
    capacity planning both want "≤ ceil(n/rate) of n traces kept" to be a
    guarantee, not an expectation.
    """

    def __init__(self, rate: Optional[int] = None) -> None:
        self._rate = env_sample_rate() if rate is None else max(1, int(rate))
        self._lock = threading.Lock()
        self._counter = 0

    @property
    def rate(self) -> int:
        with self._lock:
            return self._rate

    def set_rate(self, rate: int) -> None:
        """Retarget the rotation to 1-in-``rate`` (adaptive control hook).

        Takes effect from the next head decision; in-flight traces keep the
        decision they were admitted under.
        """
        with self._lock:
            self._rate = max(1, int(rate))

    def sample(self) -> bool:
        """The head decision for the next trace (True = provisionally keep)."""
        with self._lock:
            rate = self._rate
            if rate <= 1:
                return True
            index = self._counter
            self._counter += 1
        return index % rate == 0

    def decide(
        self,
        *,
        sampled: bool,
        status: int,
        duration_ms: float,
        slow_ms: Optional[float],
    ) -> str:
        """The retention decision at trace close.

        Head-kept traces stay; head-dropped traces are rescued when slow
        (``duration_ms >= slow_ms``) or erroneous (5xx).  Every decision is
        counted in the registry for the ``/metrics`` sampling summary.
        """
        if sampled:
            decision = DECISION_HEAD
        elif status >= 500:
            decision = DECISION_ERROR
        elif slow_ms is not None and duration_ms >= slow_ms:
            decision = DECISION_SLOW
        else:
            decision = DECISION_DROP
        REGISTRY.counter("repro_trace_retention_total", _RETENTION_HELP).inc(
            decision=decision
        )
        return decision

    def stats(self) -> dict:
        with self._lock:
            seen = self._counter if self._rate > 1 else None
        counter = REGISTRY.counter("repro_trace_retention_total", _RETENTION_HELP)
        return {
            "rate": self._rate,
            "decisions": {
                decision: counter.value(decision=decision)
                for decision in (
                    DECISION_HEAD,
                    DECISION_SLOW,
                    DECISION_ERROR,
                    DECISION_DROP,
                )
            },
            **({"head_decisions": seen} if seen is not None else {}),
        }


class DroppedTraceLog:
    """A bounded ring of trace ids that were sampled out (not retained).

    Lets ``GET /traces/{id}`` answer its 404 with *why* the trace is gone:
    membership here means the sampler dropped it; absence means it was
    either evicted from the trace buffer or never existed.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("DroppedTraceLog capacity must be >= 1")
        self._lock = threading.Lock()
        self._ring: "deque[str]" = deque(maxlen=capacity)
        self._members: Set[str] = set()

    def record(self, trace_id: str) -> None:
        with self._lock:
            if trace_id in self._members:
                return
            if len(self._ring) == self._ring.maxlen:
                self._members.discard(self._ring[0])
            self._ring.append(trace_id)
            self._members.add(trace_id)

    def __contains__(self, trace_id: str) -> bool:
        with self._lock:
            return trace_id in self._members

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
