"""Runtime health probes for the serving event loop.

The serving process multiplexes every request through one asyncio event
loop; anything that blocks it (an accidental synchronous call, a GIL-heavy
burst in a pool thread) inflates *every* in-flight request.  The probe
measures that directly: sleep for a fixed interval, compare the scheduled
wake-up with the actual one — the overshoot is time the loop spent unable
to run ready callbacks.  The lag lands in the ``repro_event_loop_lag_seconds``
gauge so a scrape (or ``/metrics``) can correlate latency spikes with loop
stalls rather than engine cost.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional

from repro.obs.metrics import REGISTRY

_LAG_HELP = "Observed event-loop scheduling lag (sleep overshoot), seconds."


class EventLoopLagProbe:
    """Periodically measures how late the event loop runs a timed callback."""

    def __init__(self, interval_s: float = 0.25) -> None:
        if interval_s <= 0:
            raise ValueError("EventLoopLagProbe interval must be > 0")
        self.interval_s = interval_s
        self._last_lag_s: Optional[float] = None
        self._peak_lag_s = 0.0
        self._samples = 0

    async def run(self) -> None:
        """Sample forever; meant to run as a background task, cancel to stop."""
        gauge = REGISTRY.gauge("repro_event_loop_lag_seconds", _LAG_HELP)
        try:
            while True:
                before = time.monotonic()
                await asyncio.sleep(self.interval_s)
                lag = max(0.0, time.monotonic() - before - self.interval_s)
                self._last_lag_s = lag
                self._peak_lag_s = max(self._peak_lag_s, lag)
                self._samples += 1
                gauge.set(lag)
        except asyncio.CancelledError:
            raise

    def stats(self) -> Dict[str, object]:
        return {
            "interval_s": self.interval_s,
            "samples": self._samples,
            "last_lag_ms": (
                None if self._last_lag_s is None else round(self._last_lag_s * 1000, 3)
            ),
            "peak_lag_ms": round(self._peak_lag_s * 1000, 3),
        }
