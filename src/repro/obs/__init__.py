"""Observability: request tracing, structured logging, Prometheus metrics.

This package is the stack's cross-cutting layer.  It imports nothing from
``repro.serve`` / ``repro.engine`` / ``repro.store``, so every layer can
depend on it without cycles:

* :mod:`repro.obs.trace` — ``contextvars``-based span trees opened at HTTP
  ingress and threaded through engine, shards, worker processes, and store.
* :mod:`repro.obs.buffer` — bounded retention of recent traces for
  ``GET /traces/{id}`` and explain mode.
* :mod:`repro.obs.log` — one-line structured-JSON logging that stamps the
  active trace id.
* :mod:`repro.obs.metrics` — process-global counters/gauges/histograms for
  signals below the HTTP layer (spool hits, fsync latency, ...).
* :mod:`repro.obs.prometheus` — hand-rolled text exposition over both the
  server snapshot and the registry.
* :mod:`repro.obs.sample` — head 1-in-N sampling with a tail-based keep
  rule (slow/error traces are always retained).
* :mod:`repro.obs.export` — OTLP/JSON span export with a bounded queue and
  a background flush thread (NDJSON file or HTTP POST sinks).
* :mod:`repro.obs.cost` — per-span CPU/domain-counter rollup into a
  bounded per-(instance, plan) cost table behind ``GET /debug/top``.
* :mod:`repro.obs.runtime` — event-loop lag probe gauge.
"""

from repro.obs.admission import (
    AdmissionDecision,
    CostPredictor,
    record_decision,
    retry_after_s,
)
from repro.obs.buffer import TraceBuffer
from repro.obs.caches import (
    CACHE_REGISTRY,
    CacheStatsRegistry,
    EvictionAges,
    approx_sizeof,
    cache_report,
    label_instance,
    register_cache,
)
from repro.obs.control import AdaptiveSamplingController
from repro.obs.cost import CostTable, add_cost, rollup
from repro.obs.export import SpanExporter, encode_traces
from repro.obs.log import StructuredLogger, get_logger, set_log_level
from repro.obs.runtime import EventLoopLagProbe
from repro.obs.sample import (
    DroppedTraceLog,
    TraceSampler,
    env_sample_rate,
    parse_sample_rate,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.prometheus import render as render_prometheus
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    current_span,
    current_trace_id,
    new_trace_id,
    propagation_context,
    remote_root,
    reparent,
    set_tracing,
    span,
    start_trace,
    tracing_enabled,
)

__all__ = [
    "TRACE_HEADER",
    "CACHE_REGISTRY",
    "REGISTRY",
    "AdaptiveSamplingController",
    "AdmissionDecision",
    "CacheStatsRegistry",
    "CostPredictor",
    "CostTable",
    "Counter",
    "DroppedTraceLog",
    "EventLoopLagProbe",
    "EvictionAges",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanExporter",
    "StructuredLogger",
    "TraceBuffer",
    "TraceSampler",
    "add_cost",
    "approx_sizeof",
    "cache_report",
    "label_instance",
    "record_decision",
    "register_cache",
    "retry_after_s",
    "current_span",
    "current_trace_id",
    "encode_traces",
    "env_sample_rate",
    "get_logger",
    "new_trace_id",
    "parse_sample_rate",
    "propagation_context",
    "remote_root",
    "render_prometheus",
    "reparent",
    "rollup",
    "set_log_level",
    "set_tracing",
    "span",
    "start_trace",
    "tracing_enabled",
]
