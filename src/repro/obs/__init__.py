"""Observability: request tracing, structured logging, Prometheus metrics.

This package is the stack's cross-cutting layer.  It imports nothing from
``repro.serve`` / ``repro.engine`` / ``repro.store``, so every layer can
depend on it without cycles:

* :mod:`repro.obs.trace` — ``contextvars``-based span trees opened at HTTP
  ingress and threaded through engine, shards, worker processes, and store.
* :mod:`repro.obs.buffer` — bounded retention of recent traces for
  ``GET /traces/{id}`` and explain mode.
* :mod:`repro.obs.log` — one-line structured-JSON logging that stamps the
  active trace id.
* :mod:`repro.obs.metrics` — process-global counters/gauges/histograms for
  signals below the HTTP layer (spool hits, fsync latency, ...).
* :mod:`repro.obs.prometheus` — hand-rolled text exposition over both the
  server snapshot and the registry.
"""

from repro.obs.buffer import TraceBuffer
from repro.obs.log import StructuredLogger, get_logger
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.prometheus import render as render_prometheus
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    current_span,
    current_trace_id,
    new_trace_id,
    propagation_context,
    remote_root,
    reparent,
    set_tracing,
    span,
    start_trace,
    tracing_enabled,
)

__all__ = [
    "TRACE_HEADER",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "TraceBuffer",
    "current_span",
    "current_trace_id",
    "get_logger",
    "new_trace_id",
    "propagation_context",
    "remote_root",
    "render_prometheus",
    "reparent",
    "set_tracing",
    "span",
    "start_trace",
    "tracing_enabled",
]
