"""The aggregate logic AGGR[FOL]: first-order logic with aggregate terms."""

from repro.fol.syntax import (
    AggregateTerm,
    And,
    Comparison,
    Exists,
    FalseFormula,
    ForAll,
    Formula,
    Implies,
    Not,
    NumericalConstant,
    NumericalVariable,
    Or,
    RelationAtom,
    TrueFormula,
)
from repro.fol.evaluation import FormulaEvaluator, evaluate_formula, evaluate_term
from repro.fol.builders import (
    conjunction,
    disjunction,
    exists,
    forall,
    implies,
    relation_atom,
)

__all__ = [
    "Formula",
    "RelationAtom",
    "Comparison",
    "Not",
    "And",
    "Or",
    "Implies",
    "Exists",
    "ForAll",
    "TrueFormula",
    "FalseFormula",
    "AggregateTerm",
    "NumericalConstant",
    "NumericalVariable",
    "FormulaEvaluator",
    "evaluate_formula",
    "evaluate_term",
    "conjunction",
    "disjunction",
    "exists",
    "forall",
    "implies",
    "relation_atom",
]
