"""Small helpers for building AGGR[FOL] formulas without boilerplate."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.fol.syntax import (
    And,
    Exists,
    FalseFormula,
    ForAll,
    Formula,
    Implies,
    Or,
    RelationAtom,
    TrueFormula,
)
from repro.query.atom import Atom
from repro.query.terms import Variable


def relation_atom(atom: Atom) -> RelationAtom:
    """Wrap a query atom as an atomic formula."""
    return RelationAtom(atom)


def conjunction(operands: Iterable[Formula]) -> Formula:
    """Flattened conjunction; returns ``true`` when empty, unwraps singletons."""
    flat = []
    for operand in operands:
        if isinstance(operand, TrueFormula):
            continue
        if isinstance(operand, And):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return TrueFormula()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(operands: Iterable[Formula]) -> Formula:
    """Flattened disjunction; returns ``false`` when empty, unwraps singletons."""
    flat = []
    for operand in operands:
        if isinstance(operand, FalseFormula):
            continue
        if isinstance(operand, Or):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return FalseFormula()
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def exists(variables: Sequence[Variable], operand: Formula) -> Formula:
    """``∃variables operand``; skips the quantifier when ``variables`` is empty."""
    variables = tuple(variables)
    if not variables:
        return operand
    return Exists(variables, operand)


def forall(variables: Sequence[Variable], operand: Formula) -> Formula:
    """``∀variables operand``; skips the quantifier when ``variables`` is empty."""
    variables = tuple(variables)
    if not variables:
        return operand
    return ForAll(variables, operand)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """``antecedent → consequent`` with trivial simplifications."""
    if isinstance(antecedent, TrueFormula):
        return consequent
    if isinstance(antecedent, FalseFormula):
        return TrueFormula()
    return Implies(antecedent, consequent)
