"""Abstract syntax for AGGR[FOL] (Section 5.2 of the paper).

The logic extends first-order predicate calculus over relational atoms and
(in)equalities with *aggregate terms* ``Aggr_F ȳ [r, φ(x̄, ȳ)]``, following
Hella et al. [27].  Formulas and numerical terms are plain immutable dataclass
trees; evaluation lives in :mod:`repro.fol.evaluation` and SQL compilation in
:mod:`repro.sql.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, Tuple, Union

from repro.query.atom import Atom
from repro.query.terms import Variable, is_variable, term_str

# ---------------------------------------------------------------------------
# Numerical terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NumericalConstant:
    """A rational constant used inside comparisons or aggregate terms."""

    value: Fraction

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class NumericalVariable:
    """A (numeric) variable used as a numerical term."""

    variable: Variable

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset({self.variable})

    def __str__(self) -> str:
        return self.variable.name


@dataclass(frozen=True)
class AggregateTerm:
    """``Aggr_F ȳ [r, φ(x̄, ȳ)]``: aggregate over all bindings of ``ȳ``.

    ``aggregate`` is the aggregate symbol, resolved through
    :func:`repro.aggregates.get_operator` at evaluation time.  ``bound_variables``
    are the ``ȳ`` made bound by the term; the remaining free variables of the
    inner formula are the term's free variables ``x̄``.
    """

    aggregate: str
    bound_variables: Tuple[Variable, ...]
    value_term: "NumericalTermLike"
    formula: "Formula"

    def free_variables(self) -> FrozenSet[Variable]:
        inner = self.formula.free_variables() | _term_free_variables(self.value_term)
        return inner - frozenset(self.bound_variables)

    def __str__(self) -> str:
        bound = ", ".join(v.name for v in self.bound_variables)
        return (
            f"Aggr[{self.aggregate}]({bound})[{_term_to_str(self.value_term)}, "
            f"{self.formula}]"
        )


NumericalTermLike = Union[NumericalConstant, NumericalVariable, AggregateTerm]
ComparableTerm = Union[NumericalTermLike, Variable, str, int, float, Fraction]


def _term_free_variables(term: ComparableTerm) -> FrozenSet[Variable]:
    if isinstance(term, (NumericalConstant, NumericalVariable, AggregateTerm)):
        return term.free_variables()
    if is_variable(term):
        return frozenset({term})
    return frozenset()


def _term_to_str(term: ComparableTerm) -> str:
    if isinstance(term, (NumericalConstant, NumericalVariable, AggregateTerm)):
        return str(term)
    return term_str(term)


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class for AGGR[FOL] formulas."""

    def free_variables(self) -> FrozenSet[Variable]:  # pragma: no cover - abstract
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------

    def and_(self, other: "Formula") -> "Formula":
        return And((self, other))

    def or_(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def negated(self) -> "Formula":
        return Not(self)

    def implies_(self, other: "Formula") -> "Formula":
        return Implies(self, other)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The formula ``true``."""

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The formula ``false``."""

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class RelationAtom(Formula):
    """A relational atom ``R(u1, ..., un)`` used as an atomic formula."""

    atom: Atom

    def free_variables(self) -> FrozenSet[Variable]:
        return self.atom.variables

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class Comparison(Formula):
    """A comparison ``left op right`` with ``op`` in ``= != <= < >= >``.

    Operands may be variables, constants or numerical terms (including
    aggregate terms), which is how the paper expresses conditions such as
    ``t(x, y) <= t(x, y')`` in Fig. 5.
    """

    left: ComparableTerm
    operator: str
    right: ComparableTerm

    _OPERATORS = ("=", "!=", "<=", "<", ">=", ">")

    def __post_init__(self) -> None:
        if self.operator not in self._OPERATORS:
            raise ValueError(f"unsupported comparison operator {self.operator!r}")

    def free_variables(self) -> FrozenSet[Variable]:
        return _term_free_variables(self.left) | _term_free_variables(self.right)

    def __str__(self) -> str:
        return f"{_term_to_str(self.left)} {self.operator} {_term_to_str(self.right)}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation ``¬φ``."""

    operand: Formula

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables()

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of zero or more formulas (empty conjunction is ``true``)."""

    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def free_variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for operand in self.operands:
            result |= operand.free_variables()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return " ∧ ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of zero or more formulas (empty disjunction is ``false``)."""

    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def free_variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for operand in self.operands:
            result |= operand.free_variables()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return " ∨ ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``φ → ψ``."""

    antecedent: Formula
    consequent: Formula

    def free_variables(self) -> FrozenSet[Variable]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def __str__(self) -> str:
        return f"({self.antecedent}) → ({self.consequent})"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification ``∃ȳ φ``."""

    variables: Tuple[Variable, ...]
    operand: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables() - frozenset(self.variables)

    def __str__(self) -> str:
        bound = ", ".join(v.name for v in self.variables)
        return f"∃{bound} ({self.operand})"


@dataclass(frozen=True)
class ForAll(Formula):
    """Universal quantification ``∀ȳ φ``."""

    variables: Tuple[Variable, ...]
    operand: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables() - frozenset(self.variables)

    def __str__(self) -> str:
        bound = ", ".join(v.name for v in self.variables)
        return f"∀{bound} ({self.operand})"


def formula_size(formula: Formula) -> int:
    """Number of AST nodes; used to check the quadratic-size claims."""
    if isinstance(formula, (TrueFormula, FalseFormula, RelationAtom, Comparison)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.operand)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(op) for op in formula.operands)
    if isinstance(formula, Implies):
        return 1 + formula_size(formula.antecedent) + formula_size(formula.consequent)
    if isinstance(formula, (Exists, ForAll)):
        return 1 + formula_size(formula.operand)
    raise TypeError(f"not a formula: {formula!r}")
