"""Evaluation of AGGR[FOL] formulas and numerical terms on database instances.

The evaluator implements the semantics of Section 5.2 with two pragmatic
conventions that are standard for aggregate logics over databases:

* quantifiers range over the *active domain* (constants occurring in the
  database instance or in the formula);
* when enumerating the satisfying assignments of a quantified or aggregated
  formula, a variable that is forced by an equality ``v = t`` (where ``t`` is
  a numerical term whose free variables are already bound) is assigned the
  value of ``t`` directly, even when that value does not occur in the active
  domain.  This is required to evaluate rewritings such as Fig. 5's ``ψ2``,
  where the aggregated value ``v = t(x, y)`` is generally not a database
  constant.

The evaluator is intended for correctness (tests, ground truth on small
instances); the scalable execution paths are the operational evaluator in
:mod:`repro.core.evaluator` and the SQL backend in :mod:`repro.sql`.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.aggregates.operators import get_operator
from repro.datamodel.facts import Constant, is_numeric_constant
from repro.datamodel.instance import DatabaseInstance
from repro.exceptions import EvaluationError
from repro.fol.syntax import (
    AggregateTerm,
    And,
    Comparison,
    Exists,
    FalseFormula,
    ForAll,
    Formula,
    Implies,
    Not,
    NumericalConstant,
    NumericalVariable,
    Or,
    RelationAtom,
    TrueFormula,
)
from repro.query.terms import Variable, is_variable

Environment = Dict[str, Constant]


class FormulaEvaluator:
    """Evaluates AGGR[FOL] formulas over one database instance."""

    def __init__(self, instance: DatabaseInstance) -> None:
        self._instance = instance
        self._domain: List[Constant] = sorted(
            {value for fact in instance for value in fact.values}, key=repr
        )

    # -- public API ----------------------------------------------------------------

    def evaluate(self, formula: Formula, environment: Optional[Environment] = None) -> bool:
        """Truth value of ``formula`` under ``environment`` on the instance."""
        env = dict(environment or {})
        domain = self._domain_with_formula_constants(formula)
        return self._eval(formula, env, domain)

    def evaluate_term(
        self, term, environment: Optional[Environment] = None
    ) -> Optional[Fraction]:
        """Value of a numerical term (``None`` encodes an undefined ``f0``)."""
        env = dict(environment or {})
        domain = (
            self._domain_with_formula_constants(term.formula)
            if isinstance(term, AggregateTerm)
            else list(self._domain)
        )
        return self._eval_term(term, env, domain)

    def satisfying_assignments(
        self,
        variables: Sequence[Variable],
        formula: Formula,
        environment: Optional[Environment] = None,
    ) -> List[Environment]:
        """All distinct assignments of ``variables`` making ``formula`` true."""
        env = dict(environment or {})
        domain = self._domain_with_formula_constants(formula)
        results = []
        for assignment in self._assignments(variables, formula, env, domain):
            candidate = dict(env)
            candidate.update(assignment)
            if self._eval(formula, candidate, domain):
                results.append(assignment)
        return results

    # -- domain handling -------------------------------------------------------------

    def _domain_with_formula_constants(self, formula: Formula) -> List[Constant]:
        constants: Set[Constant] = set(self._domain)
        constants |= _formula_constants(formula)
        return sorted(constants, key=repr)

    def _candidates(self, variable: Variable, domain: Sequence[Constant]) -> List[Constant]:
        if variable.numeric:
            return [c for c in domain if is_numeric_constant(c)]
        return list(domain)

    # -- assignment enumeration --------------------------------------------------------

    def _assignments(
        self,
        variables: Sequence[Variable],
        formula: Formula,
        env: Environment,
        domain: Sequence[Constant],
    ) -> Iterator[Environment]:
        """Candidate assignments for ``variables`` (complete for active domain
        plus equality-forced values, see module docstring)."""
        variables = list(variables)
        if not variables:
            yield {}
            return
        forced: Dict[str, object] = {}
        remaining = list(variables)
        progress = True
        while progress:
            progress = False
            for var in list(remaining):
                term = self._forcing_term(var, formula, env, forced)
                if term is not None:
                    forced[var.name] = term
                    remaining.remove(var)
                    progress = True
        # Resolve forced terms in dependency order (they may depend on each other
        # only through already-bound variables, so a single pass suffices).
        forced_values: Dict[str, Constant] = {}
        scope = dict(env)
        for name, term in forced.items():
            value = self._eval_term_or_constant(term, scope, domain)
            if value is None:
                return
            forced_values[name] = value
            scope[name] = value

        candidate_lists = [self._candidates(var, domain) for var in remaining]
        for combination in itertools.product(*candidate_lists):
            assignment = dict(forced_values)
            assignment.update(
                {var.name: value for var, value in zip(remaining, combination)}
            )
            yield assignment

    def _forcing_term(
        self,
        variable: Variable,
        formula: Formula,
        env: Environment,
        already_forced: Dict[str, object],
    ):
        """Find a term ``t`` such that the formula entails ``variable = t`` and
        all free variables of ``t`` are bound in ``env`` or already forced."""
        bound_names = set(env) | set(already_forced)
        for comparison in _top_level_comparisons(formula):
            if comparison.operator != "=":
                continue
            for var_side, term_side in (
                (comparison.left, comparison.right),
                (comparison.right, comparison.left),
            ):
                if is_variable(var_side) and var_side == variable:
                    free = {
                        v.name
                        for v in _comparable_free_variables(term_side)
                    }
                    if variable.name not in free and free <= bound_names:
                        return term_side
                if (
                    isinstance(var_side, NumericalVariable)
                    and var_side.variable == variable
                ):
                    free = {v.name for v in _comparable_free_variables(term_side)}
                    if variable.name not in free and free <= bound_names:
                        return term_side
        return None

    # -- formula evaluation --------------------------------------------------------------

    def _eval(self, formula: Formula, env: Environment, domain: Sequence[Constant]) -> bool:
        if isinstance(formula, TrueFormula):
            return True
        if isinstance(formula, FalseFormula):
            return False
        if isinstance(formula, RelationAtom):
            return self._eval_atom(formula, env)
        if isinstance(formula, Comparison):
            return self._eval_comparison(formula, env, domain)
        if isinstance(formula, Not):
            return not self._eval(formula.operand, env, domain)
        if isinstance(formula, And):
            return all(self._eval(op, env, domain) for op in formula.operands)
        if isinstance(formula, Or):
            return any(self._eval(op, env, domain) for op in formula.operands)
        if isinstance(formula, Implies):
            if not self._eval(formula.antecedent, env, domain):
                return True
            return self._eval(formula.consequent, env, domain)
        if isinstance(formula, Exists):
            for assignment in self._assignments(
                formula.variables, formula.operand, env, domain
            ):
                extended = dict(env)
                extended.update(assignment)
                if self._eval(formula.operand, extended, domain):
                    return True
            return False
        if isinstance(formula, ForAll):
            candidate_lists = [self._candidates(v, domain) for v in formula.variables]
            for combination in itertools.product(*candidate_lists):
                extended = dict(env)
                extended.update(
                    {v.name: value for v, value in zip(formula.variables, combination)}
                )
                if not self._eval(formula.operand, extended, domain):
                    return False
            return True
        raise EvaluationError(f"cannot evaluate formula node {formula!r}")

    def _eval_atom(self, formula: RelationAtom, env: Environment) -> bool:
        atom = formula.atom
        grounded_terms = []
        for term in atom.terms:
            if is_variable(term):
                if term.name not in env:
                    raise EvaluationError(
                        f"unbound variable {term.name!r} in atom {atom}"
                    )
                grounded_terms.append(env[term.name])
            else:
                grounded_terms.append(term)
        return any(
            fact.values == tuple(grounded_terms)
            for fact in self._instance.relation(atom.relation)
        )

    def _eval_comparison(
        self, formula: Comparison, env: Environment, domain: Sequence[Constant]
    ) -> bool:
        left = self._eval_term_or_constant(formula.left, env, domain)
        right = self._eval_term_or_constant(formula.right, env, domain)
        operator = formula.operator
        if left is None or right is None:
            # Undefined aggregate values make every comparison false except the
            # trivial equality of two undefined values.
            if operator == "=":
                return left is None and right is None
            if operator == "!=":
                return (left is None) != (right is None)
            return False
        if operator == "=":
            return left == right
        if operator == "!=":
            return left != right
        if not (is_numeric_constant(left) and is_numeric_constant(right)):
            # Fall back to a deterministic total order on reprs for the
            # lexicographic tie-breaking used by φ2-style formulas.
            left, right = repr(left), repr(right)
        if operator == "<=":
            return left <= right
        if operator == "<":
            return left < right
        if operator == ">=":
            return left >= right
        if operator == ">":
            return left > right
        raise EvaluationError(f"unsupported operator {operator!r}")

    # -- numerical term evaluation ----------------------------------------------------------

    def _eval_term_or_constant(
        self, term, env: Environment, domain: Sequence[Constant]
    ):
        if isinstance(term, (NumericalConstant, NumericalVariable, AggregateTerm)):
            return self._eval_term(term, env, domain)
        if is_variable(term):
            if term.name not in env:
                raise EvaluationError(f"unbound variable {term.name!r} in comparison")
            return env[term.name]
        return term

    def _eval_term(
        self, term, env: Environment, domain: Sequence[Constant]
    ) -> Optional[Constant]:
        if isinstance(term, NumericalConstant):
            return term.value
        if isinstance(term, NumericalVariable):
            if term.variable.name not in env:
                raise EvaluationError(
                    f"unbound numerical variable {term.variable.name!r}"
                )
            return env[term.variable.name]
        if isinstance(term, AggregateTerm):
            return self._eval_aggregate_term(term, env, domain)
        raise EvaluationError(f"cannot evaluate numerical term {term!r}")

    def _eval_aggregate_term(
        self, term: AggregateTerm, env: Environment, domain: Sequence[Constant]
    ) -> Optional[Constant]:
        operator = get_operator(term.aggregate)
        inner_domain = self._domain_with_formula_constants(term.formula)
        values = []
        seen_assignments = set()
        for assignment in self._assignments(
            term.bound_variables, term.formula, env, inner_domain
        ):
            key = tuple(sorted(assignment.items(), key=lambda kv: kv[0]))
            if key in seen_assignments:
                continue
            seen_assignments.add(key)
            extended = dict(env)
            extended.update(assignment)
            if not self._eval(term.formula, extended, inner_domain):
                continue
            values.append(
                self._eval_term_or_constant(term.value_term, extended, inner_domain)
            )
        if not values:
            return operator.empty_value
        return operator(values)


# -- helpers -----------------------------------------------------------------------


def _comparable_free_variables(term) -> Set[Variable]:
    if isinstance(term, (NumericalConstant, NumericalVariable, AggregateTerm)):
        return set(term.free_variables())
    if is_variable(term):
        return {term}
    return set()


def _top_level_comparisons(formula: Formula) -> Iterator[Comparison]:
    """Comparisons reachable through conjunctions only (no negation crossed)."""
    if isinstance(formula, Comparison):
        yield formula
    elif isinstance(formula, And):
        for operand in formula.operands:
            yield from _top_level_comparisons(operand)


def _formula_constants(formula: Formula) -> Set[Constant]:
    constants: Set[Constant] = set()
    if isinstance(formula, RelationAtom):
        constants |= {t for t in formula.atom.terms if not is_variable(t)}
    elif isinstance(formula, Comparison):
        for side in (formula.left, formula.right):
            if isinstance(side, NumericalConstant):
                constants.add(side.value)
            elif isinstance(side, AggregateTerm):
                constants |= _formula_constants(side.formula)
            elif not is_variable(side) and not isinstance(side, NumericalVariable):
                constants.add(side)
    elif isinstance(formula, Not):
        constants |= _formula_constants(formula.operand)
    elif isinstance(formula, (And, Or)):
        for operand in formula.operands:
            constants |= _formula_constants(operand)
    elif isinstance(formula, Implies):
        constants |= _formula_constants(formula.antecedent)
        constants |= _formula_constants(formula.consequent)
    elif isinstance(formula, (Exists, ForAll)):
        constants |= _formula_constants(formula.operand)
    return constants


def evaluate_formula(
    instance: DatabaseInstance,
    formula: Formula,
    environment: Optional[Environment] = None,
) -> bool:
    """Convenience wrapper: evaluate ``formula`` on ``instance``."""
    return FormulaEvaluator(instance).evaluate(formula, environment)


def evaluate_term(
    instance: DatabaseInstance,
    term,
    environment: Optional[Environment] = None,
) -> Optional[Fraction]:
    """Convenience wrapper: evaluate a numerical term on ``instance``."""
    return FormulaEvaluator(instance).evaluate_term(term, environment)
