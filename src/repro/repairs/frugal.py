"""Superfrugal repairs (Section 4).

A repair ``r`` of ``db`` is *superfrugal* relative to a query ``q`` when every
embedding of ``q`` in ``r`` is a ∀embedding of ``q`` in ``db``.  By Lemma 6.3,
the embedding sets of superfrugal repairs are exactly the maximal consistent
subsets of the set of all ∀embeddings, which is what makes them the bridge
between repairs and the rewriting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.valuation import Valuation
from repro.embeddings.embeddings import embeddings_of
from repro.embeddings.forall import forall_embeddings
from repro.query.conjunctive import ConjunctiveQuery


def is_superfrugal(
    repair: DatabaseInstance,
    query: ConjunctiveQuery,
    instance: DatabaseInstance,
    forall_set: Optional[Sequence[Valuation]] = None,
) -> bool:
    """True when ``repair`` is superfrugal relative to ``query`` in ``instance``.

    ``forall_set`` may be passed to avoid recomputing the ∀embeddings when the
    function is called for many repairs of the same instance.
    """
    if forall_set is None:
        forall_set = forall_embeddings(query, instance)
    forall = set(forall_set)
    return all(embedding in forall for embedding in embeddings_of(query, repair))


def find_superfrugal_repairs(
    query: ConjunctiveQuery, instance: DatabaseInstance
) -> List[DatabaseInstance]:
    """All superfrugal repairs of the instance (exponential enumeration).

    By Lemma 4.5 at least one superfrugal repair exists whenever the query is
    certain; the returned list is empty only when the query fails in some
    repair and no repair happens to be superfrugal.
    """
    forall_set = forall_embeddings(query, instance)
    return [
        repair
        for repair in instance.repairs()
        if is_superfrugal(repair, query, instance, forall_set)
    ]
