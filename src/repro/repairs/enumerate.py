"""Repair enumeration, counting and sampling helpers."""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.datamodel.instance import DatabaseInstance


def enumerate_repairs(instance: DatabaseInstance) -> Iterator[DatabaseInstance]:
    """Yield every repair of the instance (exponential; for small instances)."""
    return instance.repairs()


def count_repairs(instance: DatabaseInstance) -> int:
    """Number of repairs of the instance (product of block sizes)."""
    return instance.repair_count()


def sample_repairs(
    instance: DatabaseInstance, count: int, seed: Optional[int] = None
) -> List[DatabaseInstance]:
    """Sample ``count`` repairs uniformly at random (with replacement).

    Each repair is obtained by picking one fact uniformly from every block,
    which yields the uniform distribution over repairs.
    """
    rng = random.Random(seed)
    samples: List[DatabaseInstance] = []
    blocks = [sorted(b, key=repr) for b in instance.blocks()]
    for _ in range(count):
        picks = [rng.choice(block) for block in blocks]
        samples.append(DatabaseInstance(instance.schema, picks))
    return samples
