"""Repair-level tooling: enumeration helpers and superfrugal repairs."""

from repro.repairs.enumerate import count_repairs, enumerate_repairs, sample_repairs
from repro.repairs.frugal import (
    find_superfrugal_repairs,
    is_superfrugal,
)

__all__ = [
    "enumerate_repairs",
    "count_repairs",
    "sample_repairs",
    "is_superfrugal",
    "find_superfrugal_repairs",
]
