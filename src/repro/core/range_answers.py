"""Public API for range consistent answers (glb, lub, ⊥, GROUP BY).

:class:`RangeConsistentAnswers` is the façade a library user interacts with:
it classifies the query with the separation theorem, picks the best available
solver for each direction (rewriting-based evaluation when the paper provides
one, exact branch-and-bound otherwise), and handles queries with free
variables by instantiating them with every possible answer (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.aggregates.operators import get_operator
from repro.aggregates.properties import is_covered_by_separation_theorem
from repro.attacks.attack_graph import AttackGraph
from repro.attacks.classification import SeparationVerdict, classify_aggregation_query
from repro.baselines.branch_and_bound import BranchAndBoundSolver
from repro.baselines.exhaustive import ExhaustiveRangeSolver
from repro.core.evaluator import BOTTOM, OperationalRangeEvaluator
from repro.core.minmax import MinMaxRangeEvaluator
from repro.datamodel.facts import Constant
from repro.datamodel.instance import DatabaseInstance
from repro.embeddings.embeddings import embeddings_of
from repro.query.aggregation import AggregationQuery

Value = Union[Fraction, object]  # a Fraction or the BOTTOM sentinel


@dataclass(frozen=True)
class RangeAnswer:
    """The pair ``[glb, lub]`` of range consistent answers (⊥ when undefined)."""

    glb: Value
    lub: Value

    @property
    def is_bottom(self) -> bool:
        """True when the underlying query is not certain (answer is ⊥)."""
        return self.glb is BOTTOM or self.lub is BOTTOM

    def as_tuple(self) -> Tuple[Value, Value]:
        return (self.glb, self.lub)

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        return f"[{self.glb}, {self.lub}]"


class RangeConsistentAnswers:
    """Computes GLB-CQA and LUB-CQA for a query in AGGR[sjfBCQ].

    Parameters
    ----------
    query:
        The aggregation query (closed or with free/GROUP BY variables).
    method:
        ``"auto"`` (default) picks the rewriting-based evaluator whenever the
        separation theorem provides one and falls back to exact
        branch-and-bound otherwise.  ``"rewriting"`` forces the rewriting path
        (raising when none exists), ``"branch_and_bound"`` and ``"exhaustive"``
        force the respective baselines.
    """

    _METHODS = ("auto", "rewriting", "branch_and_bound", "exhaustive")

    def __init__(self, query: AggregationQuery, method: str = "auto") -> None:
        if method not in self._METHODS:
            raise ValueError(f"method must be one of {self._METHODS}")
        query.body.require_self_join_free()
        self._query = query
        self._method = method
        self._operator = get_operator(query.aggregate)
        self._graph = AttackGraph(query.body)

    # -- classification ------------------------------------------------------------

    def verdict(self, direction: str = "glb") -> SeparationVerdict:
        """The separation-theorem verdict for this query and direction."""
        return classify_aggregation_query(self._query, direction)

    def uses_rewriting(self, direction: str = "glb") -> bool:
        """Whether the selected method evaluates via the paper's rewriting."""
        if self._method == "rewriting":
            return True
        if self._method in ("branch_and_bound", "exhaustive"):
            return False
        return self._rewriting_available(direction)

    def _rewriting_available(self, direction: str) -> bool:
        if not self._graph.is_acyclic():
            return False
        if self._operator.name in ("MIN", "MAX"):
            return True
        if direction == "glb":
            return is_covered_by_separation_theorem(self._operator)
        return False

    # -- closed queries -----------------------------------------------------------------

    def glb(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        """``GLB-CQA`` for a closed query (or one instantiation of the free vars)."""
        return self._solve(instance, dict(binding or {}), "glb")

    def lub(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        """``LUB-CQA`` for a closed query (or one instantiation of the free vars)."""
        return self._solve(instance, dict(binding or {}), "lub")

    def range(
        self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None
    ) -> RangeAnswer:
        """Both bounds at once."""
        return RangeAnswer(self.glb(instance, binding), self.lub(instance, binding))

    # -- GROUP BY queries ------------------------------------------------------------------

    def answers(self, instance: DatabaseInstance) -> Dict[Tuple[Constant, ...], RangeAnswer]:
        """Range consistent answers for a query with free variables.

        The result maps every *possible* answer tuple (a tuple returned on at
        least one repair) to its :class:`RangeAnswer`; tuples that are not
        consistent answers map to ⊥ on both bounds, as in Section 5.3.
        """
        free = self._query.free_variables
        if not free:
            raise ValueError("answers() requires a query with free variables")
        candidates = self._possible_answers(instance)
        results: Dict[Tuple[Constant, ...], RangeAnswer] = {}
        for candidate in candidates:
            binding = {v.name: value for v, value in zip(free, candidate)}
            results[candidate] = RangeAnswer(
                self.glb(instance, binding), self.lub(instance, binding)
            )
        return results

    def consistent_answers(
        self, instance: DatabaseInstance
    ) -> Dict[Tuple[Constant, ...], RangeAnswer]:
        """Like :meth:`answers` but keeping only tuples whose answer is not ⊥."""
        return {
            candidate: answer
            for candidate, answer in self.answers(instance).items()
            if not answer.is_bottom
        }

    def _possible_answers(self, instance: DatabaseInstance) -> List[Tuple[Constant, ...]]:
        free = self._query.free_variables
        seen = set()
        ordered: List[Tuple[Constant, ...]] = []
        for embedding in embeddings_of(self._query.body, instance):
            candidate = tuple(embedding[v.name] for v in free)
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
        return sorted(ordered, key=repr)

    # -- solver selection -----------------------------------------------------------------------

    def _solve(self, instance: DatabaseInstance, binding: Dict[str, Constant], direction: str):
        method = self._method
        if method == "exhaustive":
            solver = ExhaustiveRangeSolver(self._query)
            return solver.glb(instance, binding) if direction == "glb" else solver.lub(
                instance, binding
            )
        if method == "branch_and_bound":
            solver = BranchAndBoundSolver(self._query)
            return solver.glb(instance, binding) if direction == "glb" else solver.lub(
                instance, binding
            )
        if method == "rewriting" or self._rewriting_available(direction):
            return self._solve_by_rewriting(instance, binding, direction)
        solver = BranchAndBoundSolver(self._query)
        return (
            solver.glb(instance, binding)
            if direction == "glb"
            else solver.lub(instance, binding)
        )

    def _solve_by_rewriting(
        self, instance: DatabaseInstance, binding: Dict[str, Constant], direction: str
    ):
        if self._operator.name in ("MIN", "MAX"):
            evaluator = MinMaxRangeEvaluator(self._query)
            return (
                evaluator.glb(instance, binding)
                if direction == "glb"
                else evaluator.lub(instance, binding)
            )
        if direction == "glb":
            evaluator = OperationalRangeEvaluator(self._query)
            return evaluator.glb_for_binding(instance, binding)
        raise NotImplementedError(
            f"no rewriting-based lub evaluation exists for {self._operator.name} "
            "(Theorem 7.8); use method='branch_and_bound'"
        )


def compute_range_answer(
    query: AggregationQuery, instance: DatabaseInstance, method: str = "auto"
) -> RangeAnswer:
    """One-shot helper for closed queries: return ``RangeAnswer(glb, lub)``."""
    return RangeConsistentAnswers(query, method).range(instance)


def compute_range_answers(
    query: AggregationQuery, instance: DatabaseInstance, method: str = "auto"
) -> Dict[Tuple[Constant, ...], RangeAnswer]:
    """One-shot helper for GROUP BY queries: answers per group."""
    return RangeConsistentAnswers(query, method).answers(instance)
