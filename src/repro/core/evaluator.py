"""Operational evaluation of GLB-CQA for monotone + associative aggregates.

This module implements the polynomial-time computation that the AGGR[FOL]
rewriting of Theorem 6.1 expresses declaratively.  It follows the recursive
decomposition of Appendix H directly:

* compute the set ``M`` of all ∀embeddings (Lemma 4.3);
* process them along a topological sort of the attack graph; at level ``ℓ``
  the embeddings extending a common ℓ-∀embedding are grouped by the key of
  atom ``F_{ℓ+1}`` (the (ℓ+1)-∀key-embeddings); the value of a key group is
  the *minimum* over its (ℓ+1)-∀embeddings (Theorem 6.1's use of ``F_MIN``),
  and the value of the ℓ-∀embedding is the aggregate ``F`` applied to the
  multiset of its key-group values (the Decomposition Lemma H.5);
* the value at level 0 is ``GLB-CQA(g())`` (Corollary 6.4), or ⊥ when the
  query body is not certain.

The same engine computes least upper bounds for MIN/MAX queries through the
order-reversal symmetry of Appendix M (see :mod:`repro.core.minmax`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.aggregates.operators import AggregateOperator, get_operator
from repro.attacks.attack_graph import AttackGraph
from repro.datamodel.facts import Constant, as_fraction
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.valuation import Valuation
from repro.embeddings.forall import ForallEmbeddingComputer
from repro.exceptions import NotRewritableError, UnsupportedAggregateError
from repro.query.aggregation import AggregationQuery
from repro.query.atom import Atom
from repro.query.terms import is_variable


class _Bottom:
    """Singleton for the distinguished answer ⊥ (query not certain)."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        # Keep ⊥ a singleton across pickling (the batch executor ships
        # answers between processes and relies on ``answer is BOTTOM``).
        return (_get_bottom, ())


def _get_bottom() -> "_Bottom":
    return BOTTOM


BOTTOM = _Bottom()


class OperationalRangeEvaluator:
    """Computes ``GLB-CQA(g())`` for closed queries with a rewritable aggregate.

    The evaluator accepts aggregates that are monotone and associative (SUM,
    MAX), plus COUNT which is translated to ``SUM(1)`` as in Section 6.  MIN
    and MAX least upper bounds are provided by
    :class:`~repro.core.minmax.MinMaxRangeEvaluator`, which reuses this engine
    through the ``choice`` / ``combine`` hooks.

    Parameters
    ----------
    query:
        A closed query in AGGR[sjfBCQ] (use
        :class:`~repro.core.range_answers.RangeConsistentAnswers` for queries
        with free variables).
    choice:
        How competing (ℓ+1)-∀embeddings over the same key are resolved;
        ``min`` for glb (the default), ``max`` for the lub of MIN-queries.
    combine:
        The aggregate operator applied across key groups; defaults to the
        query's own operator (after the COUNT → SUM(1) translation).
    """

    def __init__(
        self,
        query: AggregationQuery,
        choice: Callable[[Sequence[Fraction]], Fraction] = min,
        combine: Optional[AggregateOperator] = None,
    ) -> None:
        query.body.require_self_join_free()
        self._original_query = query
        self._query, self._operator = _normalise_query(query)
        if combine is not None:
            self._operator = combine
        elif not self._operator.is_monotone_and_associative:
            raise UnsupportedAggregateError(
                f"aggregate {self._operator.name} is not monotone and associative; "
                "Theorem 6.1 does not apply (use the fallback solvers)"
            )
        self._choice = choice
        self._graph = AttackGraph(self._query.body)
        if not self._graph.is_acyclic():
            raise NotRewritableError(
                "the attack graph of the query body is cyclic; GLB-CQA is not "
                "expressible in AGGR[FOL] (Theorem 5.5)"
            )
        self._order: List[Atom] = self._graph.topological_sort()

    # -- public API -----------------------------------------------------------------

    @property
    def order(self) -> List[Atom]:
        """The topological sort of the attack graph used by the evaluation."""
        return list(self._order)

    def glb(self, instance: DatabaseInstance):
        """``GLB-CQA(g())`` on the instance: a Fraction, or ``BOTTOM``."""
        binding = {}
        computer = ForallEmbeddingComputer(self._query.body, instance, self._order)
        if not computer.query_is_certain(binding):
            return BOTTOM
        forall = computer.forall_embeddings(binding)
        return self._aggregate_forall_embeddings(forall)

    def glb_for_binding(self, instance: DatabaseInstance, binding: Dict[str, Constant]):
        """GLB for one instantiation of the free variables (Section 6.2)."""
        computer = ForallEmbeddingComputer(self._query.body, instance, self._order)
        if not computer.query_is_certain(dict(binding)):
            return BOTTOM
        forall = computer.forall_embeddings(dict(binding))
        return self._aggregate_forall_embeddings(forall)

    # -- the dynamic program ------------------------------------------------------------

    def _aggregate_forall_embeddings(self, forall: Sequence[Valuation]):
        if not forall:
            # The body is certain, yet no ∀embedding exists: impossible by
            # Lemma 4.5, kept as a defensive guard.
            return BOTTOM
        return self._value_at_level(0, list(forall))

    def _value_at_level(self, level: int, embeddings: List[Valuation]) -> Fraction:
        if level == len(self._order):
            return self._operator([self._value_of(embeddings[0])])
        atom = self._order[level]
        key_groups = _group_by(embeddings, _names(atom.key_variables))
        group_values: List[Fraction] = []
        for key_group in key_groups:
            sub_groups = _group_by(key_group, _names(atom.variables))
            candidate_values = [
                self._value_at_level(level + 1, sub_group) for sub_group in sub_groups
            ]
            group_values.append(self._choice(candidate_values))
        return self._operator(group_values)

    def _value_of(self, embedding: Valuation) -> Fraction:
        term = self._query.aggregated_term
        if is_variable(term):
            return as_fraction(embedding[term.name])
        return as_fraction(term)


def _normalise_query(query: AggregationQuery) -> Tuple[AggregationQuery, AggregateOperator]:
    """Apply the COUNT → SUM(1) translation of Section 6."""
    operator = get_operator(query.aggregate)
    if operator.name == "COUNT":
        translated = AggregationQuery("SUM", 1, query.body)
        return translated, get_operator("SUM")
    return query, operator


def _names(variables) -> List[str]:
    return sorted(v.name for v in variables)


def _group_by(
    embeddings: Sequence[Valuation], variable_names: Sequence[str]
) -> List[List[Valuation]]:
    """Partition embeddings by their values on the given variables."""
    groups: Dict[Tuple, List[Valuation]] = {}
    for embedding in embeddings:
        key = tuple(embedding[name] for name in variable_names)
        groups.setdefault(key, []).append(embedding)
    return [groups[key] for key in sorted(groups, key=repr)]
