"""Construction of the AGGR[FOL] glb rewriting (Theorems 1.1 and 6.1).

The rewriter mirrors the example of Fig. 5 in general form.  Given a query
``g() := AGG(r) <- q(ū)`` with a monotone + associative aggregate and an
acyclic attack graph, and a topological sort ``(F_1, ..., F_n)``:

* ``ψ(ū)`` — the ∀embedding formula of Lemma 4.3;
* ``t_n := r`` — the value of a (full) ∀embedding;
* for each level ``ℓ`` from ``n−1`` down to ``0``::

      m_{ℓ+1}(ū_ℓ, Key(F_{ℓ+1})) := Aggr_MIN  ȳ_new  [ t_{ℓ+1},  ∃rest ψ ]
      t_ℓ(ū_ℓ)                   := Aggr_AGG  x̄_new  [ m_{ℓ+1}, ∃ȳ_new ∃rest ψ ]

  where ``x̄_new`` / ``ȳ_new`` are the key / remaining variables of
  ``F_{ℓ+1}`` not bound earlier and ``rest`` are the variables of later atoms;
* ``t_0`` is the glb value, guarded by the consistent rewriting of the body
  for the ⊥ case.

The resulting object carries genuine AGGR[FOL] formulas/terms that can be
pretty-printed, measured, evaluated with :mod:`repro.fol.evaluation` (small
instances) or compiled to SQL (:mod:`repro.sql`).  The scalable evaluation of
the same computation is :class:`~repro.core.evaluator.OperationalRangeEvaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.aggregates.properties import is_covered_by_separation_theorem
from repro.attacks.attack_graph import AttackGraph
from repro.attacks.classification import SeparationVerdict, classify_aggregation_query
from repro.certainty.rewriting import ConsistentRewriter
from repro.core.evaluator import BOTTOM, _normalise_query
from repro.datamodel.facts import Constant, as_fraction
from repro.datamodel.instance import DatabaseInstance
from repro.embeddings.forall import forall_embedding_formula
from repro.exceptions import NotRewritableError, UnsupportedAggregateError
from repro.fol.builders import exists
from repro.fol.evaluation import FormulaEvaluator
from repro.fol.syntax import (
    AggregateTerm,
    Formula,
    NumericalConstant,
    NumericalVariable,
)
from repro.query.aggregation import AggregationQuery
from repro.query.atom import Atom
from repro.query.terms import Variable, is_variable


@dataclass(frozen=True)
class GlbRewriting:
    """The constructed rewriting for one query.

    Attributes
    ----------
    query:
        The (normalised) query the rewriting was built for.
    certainty_formula:
        Consistent first-order rewriting of the body; when false, the range
        consistent answer is ⊥.
    forall_formula:
        The ∀embedding formula ``ψ(ū)`` of Lemma 4.3.
    value_term:
        The AGGR[FOL] numerical term whose value is ``GLB-CQA(g())`` whenever
        the certainty formula holds.  Its free variables are the query's free
        variables.
    order:
        The topological sort of the attack graph used by the construction.
    """

    query: AggregationQuery
    certainty_formula: Formula
    forall_formula: Formula
    value_term: AggregateTerm
    order: Tuple[Atom, ...]

    def evaluate(
        self,
        instance: DatabaseInstance,
        binding: Optional[Dict[str, Constant]] = None,
    ):
        """Evaluate the rewriting on an instance (⊥ is returned as ``BOTTOM``).

        This uses the AGGR[FOL] interpreter and is intended for small
        instances and for cross-checking the operational evaluator.
        """
        evaluator = FormulaEvaluator(instance)
        env = dict(binding or {})
        if not evaluator.evaluate(self.certainty_formula, env):
            return BOTTOM
        value = evaluator.evaluate_term(self.value_term, env)
        return BOTTOM if value is None else as_fraction(value)

    def describe(self) -> str:
        """Human-readable rendering of the rewriting (used by examples)."""
        lines = [
            f"query: {self.query}",
            f"topological sort: {[str(a) for a in self.order]}",
            f"certainty (⊥-guard): {self.certainty_formula}",
            f"glb value term: {self.value_term}",
        ]
        return "\n".join(lines)


class GlbRewriter:
    """Decision procedure + construction of the glb rewriting (Theorem 1.1)."""

    def __init__(self, query: AggregationQuery) -> None:
        query.body.require_self_join_free()
        self._original = query
        self._query, self._operator = _normalise_query(query)
        self._graph = AttackGraph(self._query.body)

    # -- decision procedure ----------------------------------------------------------

    def verdict(self) -> SeparationVerdict:
        """The separation-theorem verdict for the (original) query."""
        return classify_aggregation_query(self._original, "glb")

    def is_rewritable(self) -> bool:
        """True when a glb rewriting in AGGR[FOL] exists (Theorem 1.1 / 7.10)."""
        if not self._graph.is_acyclic():
            return False
        if self._operator.name == "MIN":
            return True
        return is_covered_by_separation_theorem(self._operator)

    # -- construction --------------------------------------------------------------------

    def rewrite(self) -> GlbRewriting:
        """Construct the glb rewriting; raises when none exists."""
        if not self._graph.is_acyclic():
            raise NotRewritableError(
                "attack graph is cyclic: GLB-CQA is not expressible in AGGR[FOL] "
                "(Theorem 5.5)"
            )
        if self._operator.name == "MIN":
            return self._rewrite_min()
        if not is_covered_by_separation_theorem(self._operator):
            raise UnsupportedAggregateError(
                f"aggregate {self._operator.name} is not monotone and associative; "
                "no glb rewriting is constructed (Section 7)"
            )
        return self._rewrite_monotone_associative()

    # -- MIN special case (Theorem 7.10) ------------------------------------------------------

    def _rewrite_min(self) -> GlbRewriting:
        body = self._query.body
        order = tuple(self._graph.topological_sort())
        certainty = ConsistentRewriter(body).rewriting()
        forall = forall_embedding_formula(body, order)
        free = set(body.free_variables)
        bound = tuple(sorted(body.variables - free, key=lambda v: v.name))
        body_formula = _atoms_conjunction(order)
        value_term = AggregateTerm(
            "MIN", bound, _value_of_term(self._query), body_formula
        )
        return GlbRewriting(self._query, certainty, forall, value_term, order)

    # -- general construction (Theorem 6.1) ----------------------------------------------------

    def _rewrite_monotone_associative(self) -> GlbRewriting:
        body = self._query.body
        order = tuple(self._graph.topological_sort())
        certainty = ConsistentRewriter(body).rewriting()
        forall = forall_embedding_formula(body, order)
        free = set(body.free_variables)

        def new_vars(atom_vars, bound: Set[Variable]) -> List[Variable]:
            return sorted(
                (v for v in atom_vars if v not in bound and v not in free),
                key=lambda v: v.name,
            )

        # Variables bound before each level.
        prefixes: List[Set[Variable]] = [set()]
        for atom in order:
            prefixes.append(prefixes[-1] | set(atom.variables - free))

        value_term = _value_of_term(self._query)
        current = value_term
        for level in range(len(order) - 1, -1, -1):
            atom = order[level]
            bound_before = prefixes[level]
            key_new = new_vars(atom.key_variables, bound_before)
            other_new = new_vars(
                atom.variables - set(key_new), bound_before | set(key_new)
            )
            rest_vars: Set[Variable] = set()
            for later in order[level + 1:]:
                rest_vars |= later.variables - free
            rest_new = sorted(
                rest_vars - prefixes[level + 1], key=lambda v: v.name
            )

            min_formula = exists(tuple(rest_new), forall)
            min_term = AggregateTerm("MIN", tuple(other_new), current, min_formula)
            agg_formula = exists(tuple(other_new) + tuple(rest_new), forall)
            current = AggregateTerm(
                self._operator.name, tuple(key_new), min_term, agg_formula
            )
        return GlbRewriting(self._query, certainty, forall, current, order)


def _value_of_term(query: AggregationQuery):
    term = query.aggregated_term
    if is_variable(term):
        return NumericalVariable(term)
    return NumericalConstant(as_fraction(term))


def _atoms_conjunction(order: Sequence[Atom]) -> Formula:
    from repro.fol.builders import conjunction
    from repro.fol.syntax import RelationAtom

    return conjunction([RelationAtom(atom) for atom in order])
