"""Range consistent answers for MIN- and MAX-queries (Theorems 7.10 and 7.11).

For an acyclic attack graph all four combinations are expressible in
AGGR[FOL]; operationally they reduce to:

* ``GLB-CQA(MIN)`` — the plain minimum over all embeddings of the body in the
  database (Theorem 7.10's rewriting is the plain aggregate itself);
* ``LUB-CQA(MAX)`` — symmetrically, the plain maximum over all embeddings;
* ``GLB-CQA(MAX)`` — MAX is monotone and associative, so the general
  operational evaluator of Theorem 6.1 applies;
* ``LUB-CQA(MIN)`` — obtained from ``GLB-CQA(MAX)`` by reversing the order on
  the rationals (Appendix M), i.e. running the same dynamic program with the
  key-group choice ``max`` and the combining operator ``MIN``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional

from repro.aggregates.operators import get_operator
from repro.attacks.attack_graph import AttackGraph
from repro.certainty.checker import certain_suffix_holds
from repro.core.evaluator import BOTTOM, OperationalRangeEvaluator
from repro.datamodel.facts import Constant, as_fraction
from repro.datamodel.instance import DatabaseInstance
from repro.embeddings.embeddings import embeddings_of
from repro.exceptions import NotRewritableError, UnsupportedAggregateError
from repro.query.aggregation import AggregationQuery
from repro.query.terms import is_variable


class MinMaxRangeEvaluator:
    """Glb and lub computation for closed MIN- and MAX-queries."""

    def __init__(self, query: AggregationQuery) -> None:
        if query.aggregate not in ("MIN", "MAX"):
            raise UnsupportedAggregateError(
                f"MinMaxRangeEvaluator handles MIN and MAX, not {query.aggregate}"
            )
        query.body.require_self_join_free()
        self._query = query
        self._graph = AttackGraph(query.body)
        if not self._graph.is_acyclic():
            raise NotRewritableError(
                "the attack graph is cyclic; neither GLB-CQA nor LUB-CQA of a "
                "MIN/MAX query is expressible in AGGR[FOL] (Theorem 7.11)"
            )
        self._order = self._graph.topological_sort()

    # -- public API -------------------------------------------------------------

    def glb(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        """Greatest lower bound across repairs, or ``BOTTOM``."""
        if self._query.aggregate == "MIN":
            return self._plain_extreme(instance, binding, minimum=True)
        evaluator = OperationalRangeEvaluator(self._query, choice=min)
        return evaluator.glb_for_binding(instance, dict(binding or {}))

    def lub(self, instance: DatabaseInstance, binding: Optional[Dict[str, Constant]] = None):
        """Least upper bound across repairs, or ``BOTTOM``."""
        if self._query.aggregate == "MAX":
            return self._plain_extreme(instance, binding, minimum=False)
        evaluator = OperationalRangeEvaluator(
            self._query, choice=max, combine=get_operator("MIN")
        )
        return evaluator.glb_for_binding(instance, dict(binding or {}))

    # -- helpers ------------------------------------------------------------------

    def _plain_extreme(
        self,
        instance: DatabaseInstance,
        binding: Optional[Dict[str, Constant]],
        minimum: bool,
    ):
        fixed = dict(binding or {})
        if not certain_suffix_holds(self._order, instance, fixed):
            return BOTTOM
        values = self._embedding_values(instance, fixed)
        if not values:
            return BOTTOM
        return min(values) if minimum else max(values)

    def _embedding_values(
        self, instance: DatabaseInstance, binding: Dict[str, Constant]
    ) -> List[Fraction]:
        term = self._query.aggregated_term
        values = []
        for embedding in embeddings_of(self._query.body, instance, binding):
            if is_variable(term):
                values.append(as_fraction(embedding[term.name]))
            else:
                values.append(as_fraction(term))
        return values
