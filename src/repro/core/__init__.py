"""The paper's primary contribution: range-consistent answers via rewriting."""

from repro.core.evaluator import BOTTOM, OperationalRangeEvaluator
from repro.core.minmax import MinMaxRangeEvaluator
from repro.core.rewriter import GlbRewriter, GlbRewriting
from repro.core.range_answers import (
    RangeAnswer,
    RangeConsistentAnswers,
    compute_range_answer,
    compute_range_answers,
)

__all__ = [
    "BOTTOM",
    "OperationalRangeEvaluator",
    "MinMaxRangeEvaluator",
    "GlbRewriter",
    "GlbRewriting",
    "RangeAnswer",
    "RangeConsistentAnswers",
    "compute_range_answer",
    "compute_range_answers",
]
