"""repro — Range Consistent Answers to Aggregation Queries via Rewriting.

A reproduction of Amezian El Khalfioui & Wijsen, PODS 2024
("Computing Range Consistent Answers to Aggregation Queries via Rewriting").

Quickstart::

    from repro import (
        RelationSignature, Schema, DatabaseInstance,
        parse_aggregation_query, compute_range_answer,
    )

    schema = Schema([
        RelationSignature("Dealers", 2, 1, attribute_names=("Name", "Town")),
        RelationSignature("Stock", 3, 2, numeric_positions=(3,),
                          attribute_names=("Product", "Town", "Qty")),
    ])
    db = DatabaseInstance.from_rows(schema, {
        "Dealers": [("Smith", "Boston"), ("Smith", "New York"), ("James", "Boston")],
        "Stock": [("Tesla X", "Boston", 35), ("Tesla X", "Boston", 40),
                  ("Tesla Y", "Boston", 35), ("Tesla Y", "New York", 95),
                  ("Tesla Y", "New York", 96)],
    })
    query = parse_aggregation_query(
        schema, "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)")
    print(compute_range_answer(query, db))
"""

from repro.datamodel import DatabaseInstance, Fact, RelationSignature, Schema, Valuation
from repro.query import (
    AggregationQuery,
    Atom,
    ConjunctiveQuery,
    Variable,
    parse_aggregation_query,
    parse_atom,
    parse_query,
    parse_sql_aggregation_query,
)
from repro.aggregates import get_operator
from repro.attacks import AttackGraph, certainty_complexity, classify_aggregation_query
from repro.core import (
    BOTTOM,
    GlbRewriter,
    RangeAnswer,
    RangeConsistentAnswers,
    compute_range_answer,
    compute_range_answers,
)
from repro.engine import (
    AnswerOptions,
    BatchResult,
    CacheStats,
    ConsistentAnswerEngine,
    QueryPlan,
    available_backends,
    register_backend,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "RelationSignature",
    "Schema",
    "Fact",
    "DatabaseInstance",
    "Valuation",
    "Variable",
    "Atom",
    "ConjunctiveQuery",
    "AggregationQuery",
    "parse_atom",
    "parse_query",
    "parse_aggregation_query",
    "parse_sql_aggregation_query",
    "get_operator",
    "AttackGraph",
    "certainty_complexity",
    "classify_aggregation_query",
    "BOTTOM",
    "GlbRewriter",
    "RangeAnswer",
    "RangeConsistentAnswers",
    "compute_range_answer",
    "compute_range_answers",
    "AnswerOptions",
    "BatchResult",
    "CacheStats",
    "ConsistentAnswerEngine",
    "QueryPlan",
    "available_backends",
    "register_backend",
]
