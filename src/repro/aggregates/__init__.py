"""Aggregate operators, their algebraic properties, duals and chains."""

from repro.aggregates.operators import (
    AVG,
    COUNT,
    COUNT_DISTINCT,
    MAX,
    MIN,
    PRODUCT,
    SUM,
    SUM_DISTINCT,
    AggregateOperator,
    get_operator,
    registered_operators,
)
from repro.aggregates.duals import DualAggregateOperator, dual_of
from repro.aggregates.chains import DescendingChain, descending_chain_witness
from repro.aggregates.properties import (
    check_associativity,
    check_monotonicity,
    is_covered_by_separation_theorem,
)

__all__ = [
    "AggregateOperator",
    "DualAggregateOperator",
    "DescendingChain",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "AVG",
    "PRODUCT",
    "COUNT_DISTINCT",
    "SUM_DISTINCT",
    "get_operator",
    "registered_operators",
    "dual_of",
    "descending_chain_witness",
    "check_associativity",
    "check_monotonicity",
    "is_covered_by_separation_theorem",
]
