"""Dual aggregate operators (Definition 7.6).

The dual of a positive aggregate operator ``F`` returns ``-1 * F(X)`` on
non-empty multisets and ``F(∅)`` on the empty multiset.  LUB-CQA for ``g()``
coincides, up to a sign, with GLB-CQA for the query using the dual operator
(Proposition 7.7); this is how the library computes least upper bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from repro.aggregates.operators import AggregateOperator, Number


@dataclass(frozen=True)
class DualAggregateOperator:
    """The dual ``F^dual`` of a positive aggregate operator ``F``."""

    base: AggregateOperator

    @property
    def name(self) -> str:
        return f"{self.base.name}_DUAL"

    @property
    def empty_value(self) -> Optional[Fraction]:
        return self.base.empty_value

    @property
    def requires_numeric_argument(self) -> bool:
        return self.base.requires_numeric_argument

    @property
    def distinct(self) -> bool:
        return self.base.distinct

    def __call__(self, values: Sequence[Number]) -> Optional[Fraction]:
        if not values:
            return self.base.empty_value
        result = self.base(values)
        return None if result is None else -result

    # -- properties of the dual -------------------------------------------------

    @property
    def monotone(self) -> bool:
        """Duals of the built-in operators are generally not monotone.

        The dual of MIN is monotone (bigger inputs can only raise ``-MIN``
        when... in fact ``-MIN`` *decreases* when elements are added), so we
        conservatively report the only safe case: the dual of an operator is
        monotone exactly when declared so here.  For the operators shipped
        with the library no dual is monotone, which matches Theorem 7.8.
        """
        return False

    @property
    def associative(self) -> bool:
        """Duals are not associative in general (the sign flips compose badly)."""
        return False

    @property
    def is_monotone_and_associative(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name


def dual_of(operator: AggregateOperator) -> DualAggregateOperator:
    """Return the dual aggregate operator of ``operator``."""
    return DualAggregateOperator(operator)
