"""Aggregate operators over multisets of (non-negative) rational numbers.

Following Section 5.1 of the paper, a *(positive) aggregate operator* is a
function taking a finite multiset of non-negative rationals and returning a
rational (for non-empty input); its value on the empty multiset is a fixed
constant ``f0``.  We additionally record the algebraic properties
(monotonicity, associativity) that drive the separation theorem.

Multisets are represented as Python sequences; order is irrelevant for all
operators defined here.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import reduce
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.datamodel.facts import as_fraction
from repro.exceptions import UnsupportedAggregateError

Number = Union[int, float, Fraction]


def _to_fractions(values: Sequence[Number]) -> List[Fraction]:
    return [as_fraction(v) for v in values]


@dataclass(frozen=True)
class AggregateOperator:
    """An aggregate operator ``F_AGG`` with its declared algebraic properties.

    Attributes
    ----------
    name:
        The aggregate symbol (``"SUM"``, ``"COUNT"``, ...).
    function:
        Maps a non-empty list of :class:`Fraction` to a :class:`Fraction`.
    empty_value:
        ``F(∅) = f0``.  ``None`` models the "no convention" case; range CQA
        returns ⊥ before this value would ever be needed.
    monotone / associative:
        The properties of Section 5.1 over the non-negative rationals.
    distinct:
        Whether the operator first removes duplicates (COUNT-DISTINCT, ...).
    requires_numeric_argument:
        COUNT-style operators accept any constants; the others need numbers.
    """

    name: str
    function: Callable[[List[Fraction]], Fraction]
    empty_value: Optional[Fraction] = None
    monotone: bool = False
    associative: bool = False
    distinct: bool = False
    requires_numeric_argument: bool = True

    def __call__(self, values: Sequence[Number]) -> Optional[Fraction]:
        """Apply the operator to a multiset of values.

        Returns ``empty_value`` (possibly ``None``) on the empty multiset.
        """
        if not values:
            return self.empty_value
        if self.requires_numeric_argument:
            prepared = _to_fractions(values)
        else:
            prepared = list(values)
        return self.function(prepared)

    @property
    def is_monotone_and_associative(self) -> bool:
        """True for the operators covered by Theorem 1.1 (e.g. SUM, MAX)."""
        return self.monotone and self.associative

    def __str__(self) -> str:
        return self.name


# -- concrete operator implementations -----------------------------------------------


def _sum(values: List[Fraction]) -> Fraction:
    return sum(values, Fraction(0))


def _count(values: List) -> Fraction:
    return Fraction(len(values))


def _minimum(values: List[Fraction]) -> Fraction:
    return min(values)


def _maximum(values: List[Fraction]) -> Fraction:
    return max(values)


def _average(values: List[Fraction]) -> Fraction:
    return sum(values, Fraction(0)) / Fraction(len(values))


def _product(values: List[Fraction]) -> Fraction:
    return reduce(lambda a, b: a * b, values, Fraction(1))


def _count_distinct(values: List) -> Fraction:
    return Fraction(len(set(values)))


def _sum_distinct(values: List[Fraction]) -> Fraction:
    return sum(set(values), Fraction(0))


SUM = AggregateOperator(
    name="SUM",
    function=_sum,
    empty_value=Fraction(0),
    monotone=True,
    associative=True,
)

#: COUNT is monotone but not associative; the paper handles COUNT-queries by
#: rewriting them as ``SUM(1)`` (Section 6), which this library does as well.
COUNT = AggregateOperator(
    name="COUNT",
    function=_count,
    empty_value=Fraction(0),
    monotone=True,
    associative=False,
    requires_numeric_argument=False,
)

MIN = AggregateOperator(
    name="MIN",
    function=_minimum,
    empty_value=None,
    monotone=False,
    associative=True,
)

MAX = AggregateOperator(
    name="MAX",
    function=_maximum,
    empty_value=None,
    monotone=True,
    associative=True,
)

AVG = AggregateOperator(
    name="AVG",
    function=_average,
    empty_value=None,
    monotone=False,
    associative=False,
)

PRODUCT = AggregateOperator(
    name="PRODUCT",
    function=_product,
    empty_value=Fraction(1),
    monotone=False,
    associative=True,
)

COUNT_DISTINCT = AggregateOperator(
    name="COUNT_DISTINCT",
    function=_count_distinct,
    empty_value=Fraction(0),
    monotone=False,
    associative=False,
    distinct=True,
    requires_numeric_argument=False,
)

SUM_DISTINCT = AggregateOperator(
    name="SUM_DISTINCT",
    function=_sum_distinct,
    empty_value=Fraction(0),
    monotone=True,
    associative=False,
    distinct=True,
)

_REGISTRY: Dict[str, AggregateOperator] = {
    op.name: op
    for op in (SUM, COUNT, MIN, MAX, AVG, PRODUCT, COUNT_DISTINCT, SUM_DISTINCT)
}
_ALIASES = {
    "COUNT-DISTINCT": "COUNT_DISTINCT",
    "SUM-DISTINCT": "SUM_DISTINCT",
}


def get_operator(name: str) -> AggregateOperator:
    """Look up an aggregate operator by symbol (case-insensitive)."""
    key = name.upper().strip()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError as exc:
        raise UnsupportedAggregateError(f"unknown aggregate operator {name!r}") from exc


def registered_operators() -> Tuple[AggregateOperator, ...]:
    """All built-in aggregate operators."""
    return tuple(_REGISTRY.values())


def register_operator(operator: AggregateOperator) -> None:
    """Register a user-defined aggregate operator (by its ``name``)."""
    _REGISTRY[operator.name.upper()] = operator
