"""Descending chains of aggregate operators (Definition 7.1).

An operator ``F`` has a *descending chain* when there are ``s, t`` such that
``F({{s, i#t}})`` strictly decreases as ``i`` grows; the chain is *bounded*
when adding a suitable large element ``m_i`` always pushes the value back
above the chain.  Descending chains witness non-monotonicity and drive the
inexpressibility results of Section 7 (Lemmas 7.2 and 7.3, Corollary 7.5,
Theorems 7.8 and 7.9).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional, Union

from repro.aggregates.duals import DualAggregateOperator
from repro.aggregates.operators import AggregateOperator

AnyOperator = Union[AggregateOperator, DualAggregateOperator]


@dataclass(frozen=True)
class DescendingChain:
    """A witness ``(s, t)`` of a descending chain, optionally bounded by ``m_i``.

    ``bound_for(i)`` returns the element ``m_i`` of Definition 7.1 when the
    chain is bounded, else ``None``.
    """

    operator_name: str
    s: Fraction
    t: Fraction
    bounded: bool
    _bound: Optional[Callable[[int], Fraction]] = None

    def prefix_value(self, i: int, operator: AnyOperator) -> Fraction:
        """``F({{s, i#t}})`` for the witnessing values."""
        return operator([self.s] + [self.t] * i)

    def bound_for(self, i: int) -> Optional[Fraction]:
        """The element ``m_i`` that makes the chain bounded (Definition 7.1)."""
        if not self.bounded or self._bound is None:
            return None
        return self._bound(i)

    def verify(self, operator: AnyOperator, length: int = 6) -> bool:
        """Check the strict-decrease condition for the first ``length`` steps."""
        values = [self.prefix_value(i, operator) for i in range(length + 1)]
        return all(values[i] > values[i + 1] for i in range(length))

    def verify_bounded(self, operator: AnyOperator, upto: int = 4) -> bool:
        """Check the boundedness condition for indices up to ``upto``."""
        if not self.bounded:
            return False
        for i in range(upto + 1):
            m_i = self.bound_for(i)
            if m_i is None:
                return False
            for j in range(1, 3):
                for k in range(i + 1):
                    for k_prime in range(k + 1):
                        low = operator([self.s] + [self.t] * k_prime)
                        high = operator([m_i] * j + [self.s] + [self.t] * k)
                        if not low < high:
                            return False
        return True


def descending_chain_witness(
    operator: AnyOperator, allow_negative: bool = False
) -> Optional[DescendingChain]:
    """Return the known descending-chain witness for ``operator``.

    The witnesses follow the proofs of Lemma 7.4, Theorem 7.8 and Theorem 7.9:

    * AVG: ``s=1, t=0`` with bound ``m_i = i + 2`` (bounded);
    * PRODUCT: ``s=t=1/2`` with bound ``m_i = 2^(i+1)`` (bounded);
    * SUM over a domain allowing ``-1`` (``allow_negative=True``):
      ``s=0, t=-1`` with bound ``m_i = i + 1`` (bounded, Theorem 7.9);
    * duals of SUM, AVG, PRODUCT (Theorem 7.8).

    Returns ``None`` when no witness is known (in particular for monotone
    operators over the non-negative rationals, which cannot have one).
    """
    if isinstance(operator, DualAggregateOperator):
        base = operator.base.name
        if base == "SUM":
            return DescendingChain("SUM_DUAL", Fraction(1), Fraction(1), bounded=False)
        if base == "AVG":
            return DescendingChain("AVG_DUAL", Fraction(0), Fraction(1), bounded=False)
        if base == "PRODUCT":
            return DescendingChain(
                "PRODUCT_DUAL",
                Fraction(2),
                Fraction(2),
                bounded=True,
                _bound=lambda i: Fraction(1, 2 ** (i + 1)),
            )
        return None

    name = operator.name
    if name == "AVG":
        return DescendingChain(
            "AVG",
            Fraction(1),
            Fraction(0),
            bounded=True,
            _bound=lambda i: Fraction(i + 2),
        )
    if name == "PRODUCT":
        return DescendingChain(
            "PRODUCT",
            Fraction(1, 2),
            Fraction(1, 2),
            bounded=True,
            _bound=lambda i: Fraction(2 ** (i + 1)),
        )
    if name == "SUM" and allow_negative:
        return DescendingChain(
            "SUM(with -1)",
            Fraction(0),
            Fraction(-1),
            bounded=True,
            _bound=lambda i: Fraction(i + 1),
        )
    if name == "COUNT_DISTINCT":
        # COUNT-DISTINCT lacks monotonicity but has no descending chain of the
        # Definition 7.1 shape: repeating t never decreases the value.
        return None
    return None
