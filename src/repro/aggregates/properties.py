"""Empirical checkers for the algebraic properties of aggregate operators.

The separation theorem (Theorem 1.1) applies to aggregate operators that are
*monotone* and *associative* over the non-negative rationals (Section 5.1).
Besides the declared flags on :class:`~repro.aggregates.operators.
AggregateOperator`, this module provides randomized property checkers used in
tests (including the hypothesis-based property tests) and a single predicate
that decides whether an operator is covered by the positive side of the
theorem.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Tuple, Union

from repro.aggregates.duals import DualAggregateOperator
from repro.aggregates.operators import AggregateOperator

AnyOperator = Union[AggregateOperator, DualAggregateOperator]


def _random_multiset(rng: random.Random, max_size: int, max_value: int) -> List[Fraction]:
    size = rng.randint(1, max_size)
    return [
        Fraction(rng.randint(0, max_value), rng.randint(1, 4)) for _ in range(size)
    ]


def check_associativity(
    operator: AnyOperator,
    trials: int = 200,
    seed: int = 0,
    max_size: int = 5,
    max_value: int = 20,
) -> Optional[Tuple[List[Fraction], List[Fraction]]]:
    """Search for a counterexample to associativity.

    Associativity (Section 5.1): for non-empty ``X`` and any ``Y``,
    ``F(X ⊎ Y) = F({{F(X)}} ⊎ Y)``.  Returns ``None`` when no counterexample
    is found within ``trials`` random attempts, otherwise the pair ``(X, Y)``
    witnessing the violation.
    """
    rng = random.Random(seed)
    for _ in range(trials):
        x = _random_multiset(rng, max_size, max_value)
        y_size = rng.randint(0, max_size)
        y = [
            Fraction(rng.randint(0, max_value), rng.randint(1, 4))
            for _ in range(y_size)
        ]
        direct = operator(x + y)
        folded_inner = operator(x)
        if folded_inner is None:
            continue
        folded = operator([folded_inner] + y)
        if direct != folded:
            return (x, y)
    return None


def check_monotonicity(
    operator: AnyOperator,
    trials: int = 200,
    seed: int = 0,
    max_size: int = 5,
    max_value: int = 20,
) -> Optional[Tuple[List[Fraction], List[Fraction]]]:
    """Search for a counterexample to monotonicity.

    Monotonicity (Section 5.1): increasing elements point-wise and/or adding
    extra elements can never decrease the aggregated value.  Returns ``None``
    when no counterexample is found, otherwise a pair ``(smaller_multiset,
    larger_multiset)`` for which the operator decreases.
    """
    rng = random.Random(seed)
    for _ in range(trials):
        base = _random_multiset(rng, max_size, max_value)
        increased = [v + Fraction(rng.randint(0, 3)) for v in base]
        extra = [
            Fraction(rng.randint(0, max_value), rng.randint(1, 4))
            for _ in range(rng.randint(0, max_size))
        ]
        larger = increased + extra
        small_value = operator(base)
        large_value = operator(larger)
        if small_value is None or large_value is None:
            continue
        if small_value > large_value:
            return (base, larger)
    return None


def is_covered_by_separation_theorem(operator: AnyOperator) -> bool:
    """True when Theorem 1.1 applies to the operator.

    The theorem requires monotonicity and associativity.  COUNT, while not
    associative, is covered because COUNT-queries can be expressed as
    ``SUM(1)`` (Section 6); the rewriter performs that translation, so COUNT
    is reported as covered here.
    """
    if isinstance(operator, AggregateOperator) and operator.name == "COUNT":
        return True
    return bool(operator.monotone and operator.associative)
