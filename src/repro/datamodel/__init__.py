"""Relational data model substrate.

This subpackage implements the database-side vocabulary of the paper:
relation signatures with primary keys and numeric columns, facts, blocks,
database instances (possibly violating their primary keys), repairs, and
valuations.
"""

from repro.datamodel.signature import RelationSignature, Schema
from repro.datamodel.facts import Fact
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.valuation import Valuation

__all__ = [
    "RelationSignature",
    "Schema",
    "Fact",
    "DatabaseInstance",
    "Valuation",
]
