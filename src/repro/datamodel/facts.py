"""Facts: ground atoms stored in a database instance."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from numbers import Number
from typing import Tuple, Union

Constant = Union[str, int, float, Fraction]


def is_numeric_constant(value: Constant) -> bool:
    """True when ``value`` is a number (int, float or Fraction, not bool)."""
    return isinstance(value, Number) and not isinstance(value, bool)


def as_fraction(value: Constant) -> Fraction:
    """Convert a numeric constant to an exact :class:`~fractions.Fraction`."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**12)
    raise TypeError(f"not a numeric constant: {value!r}")


@dataclass(frozen=True)
class Fact:
    """A ground atom ``R(c1, ..., cn)``.

    Facts are hashable and therefore usable as set elements; a database
    instance is a finite set of facts.
    """

    relation: str
    values: Tuple[Constant, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self) -> int:
        return len(self.values)

    def key(self, key_size: int) -> Tuple[Constant, ...]:
        """Primary-key projection of the fact, given the relation's key size."""
        return self.values[:key_size]

    def is_key_equal(self, other: "Fact", key_size: int) -> bool:
        """True when both facts share relation name and primary-key values."""
        return self.relation == other.relation and self.key(key_size) == other.key(
            key_size
        )

    def __str__(self) -> str:
        rendered = ", ".join(repr(v) if isinstance(v, str) else str(v) for v in self.values)
        return f"{self.relation}({rendered})"
