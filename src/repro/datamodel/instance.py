"""Database instances, blocks and repairs.

A *database instance* is a finite set of facts.  A *block* is a maximal set of
facts of the same relation that agree on the primary key.  A *repair* is a
maximal consistent subset of the instance, i.e. it picks exactly one fact from
every block (Section 1 and 3 of the paper).
"""

from __future__ import annotations

import itertools
import os
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datamodel.facts import Constant, Fact
from repro.datamodel.signature import Schema
from repro.exceptions import SchemaError
from repro.util import stable_hash_64

BlockKey = Tuple[str, Tuple[Constant, ...]]

_LINEAGE_IDS = itertools.count(1)


def canonical_shard_slot(block_key: BlockKey, slots: int) -> int:
    """Plan-independent block → slot assignment for version vectors.

    Every consumer of the per-shard version vector (registry bookkeeping,
    mutation responses, worker-side delta accounting) must agree on which
    slot a block belongs to without seeing a query plan, so the mapping
    hashes the block key alone.  It intentionally matches the hashed
    sharding strategy's shape (stable hash modulo slot count) but is not
    tied to any particular ``ShardPlan``.
    """
    if slots <= 1:
        return 0
    return stable_hash_64(repr(block_key)) % slots


class _LineageClock:
    """Shared mutation clock for a copy-family of instances.

    Content caches (the shard-summary cache) key entries by
    ``(lineage token, per-block stamps)``.  Stamps must never repeat with
    different content inside one family, even when two copies of the same
    base diverge, so every family shares one strictly-monotonic counter:
    each mutation on any member draws a fresh stamp.  Writers are expected
    to be serialized (the registry holds a write lock; direct instance
    mutation was never thread-safe), so a plain integer suffices — and,
    unlike a lock, it pickles, which keeps stamps deterministic when a
    worker process replays the same op sequence against a shipped base.
    """

    __slots__ = ("token", "counter")

    def __init__(self, token: str, counter: int = 0) -> None:
        self.token = token
        self.counter = counter

    def tick(self) -> int:
        self.counter += 1
        return self.counter


def _new_clock() -> _LineageClock:
    return _LineageClock(f"{os.getpid():x}-{next(_LINEAGE_IDS):x}")


class DatabaseInstance:
    """A finite set of facts over a schema, possibly violating primary keys.

    The instance offers block-level access (the unit of inconsistency), repair
    enumeration and counting, and convenience constructors used throughout the
    library, examples and tests.
    """

    def __init__(self, schema: Schema, facts: Optional[Iterable[Fact]] = None) -> None:
        self._schema = schema
        self._facts: set[Fact] = set()
        self._blocks: Dict[BlockKey, set[Fact]] = defaultdict(set)
        self._data_version = 0
        self._block_items: Optional[
            Tuple[int, List[Tuple[BlockKey, Tuple[Fact, ...]]]]
        ] = None
        self._clock = _new_clock()
        self._block_versions: Dict[BlockKey, int] = {}
        for fact in facts or ():
            self.add_fact(fact)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Dict[str, Sequence[Sequence[Constant]]],
    ) -> "DatabaseInstance":
        """Build an instance from ``{relation_name: [row, row, ...]}``."""
        instance = cls(schema)
        for relation, relation_rows in rows.items():
            for row in relation_rows:
                instance.add_fact(Fact(relation, tuple(row)))
        return instance

    def add_fact(self, fact: Fact) -> Optional[BlockKey]:
        """Add a fact, validating arity against the schema.

        Returns the key of the touched block, or ``None`` when the fact was
        already present (a no-op that bumps no versions).
        """
        signature = self._schema.relation(fact.relation)
        if fact.arity != signature.arity:
            raise SchemaError(
                f"fact {fact} has arity {fact.arity}, expected {signature.arity}"
            )
        if fact in self._facts:
            return None
        self._facts.add(fact)
        block_key = (fact.relation, fact.key(signature.key_size))
        self._blocks[block_key].add(fact)
        self._data_version += 1
        self._block_versions[block_key] = self._clock.tick()
        return block_key

    def add_row(self, relation: str, *values: Constant) -> None:
        """Convenience wrapper: ``add_row("R", 1, 2)`` adds the fact ``R(1, 2)``."""
        self.add_fact(Fact(relation, tuple(values)))

    def remove_fact(self, fact: Fact) -> BlockKey:
        """Remove a fact, maintaining the block index.

        Raises :class:`KeyError` when the fact is not in the instance (use
        :meth:`discard_fact` for the tolerant variant).  Emptied blocks are
        deleted from the index so block enumeration and repair counting
        never see phantom empty blocks.  Returns the touched block's key.
        """
        if fact not in self._facts:
            raise KeyError(fact)
        signature = self._schema.relation(fact.relation)
        self._facts.remove(fact)
        block_key = (fact.relation, fact.key(signature.key_size))
        block = self._blocks[block_key]
        block.discard(fact)
        self._data_version += 1
        if block:
            self._block_versions[block_key] = self._clock.tick()
        else:
            del self._blocks[block_key]
            # No tombstone: a vanished block leaves summary-cache tokens via
            # its absence, and a later re-add draws a strictly newer stamp.
            self._block_versions.pop(block_key, None)
            self._clock.tick()
        return block_key

    def discard_fact(self, fact: Fact) -> bool:
        """Remove a fact if present; returns whether anything was removed."""
        if fact not in self._facts:
            return False
        self.remove_fact(fact)
        return True

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter: bumps on every add/remove.

        Fact-content caches (shard plans, worker-pool instance refs) guard
        their entries with this token — a bare ``len`` check would be fooled
        by a remove+add of the same cardinality.
        """
        return self._data_version

    @property
    def lineage(self) -> str:
        """Token shared by every copy-on-write descendant of one base.

        Content caches scope their entries to a lineage so that two
        independently built instances — whose per-block stamps are
        meaningless relative to each other — can never collide.
        """
        return self._clock.token

    def block_version(self, block_key: BlockKey) -> int:
        """Mutation stamp of a block: the family clock value at its last touch.

        Stamps are drawn from a clock shared by the whole copy family, so a
        ``(block key, stamp)`` pair identifies the block's exact content
        within a lineage even across divergent copies.  Returns 0 for keys
        untouched since construction of the family (i.e. unknown blocks).
        """
        return self._block_versions.get(block_key, 0)

    def copy(self) -> "DatabaseInstance":
        """Fast structural copy sharing the mutation-clock lineage.

        This is the copy-on-write path for writers (the registry's
        ``mutate``): unlike re-adding facts through :meth:`add_fact`, it
        skips schema validation, preserves ``data_version`` and per-block
        stamps, and keeps the shared clock — so summaries cached for
        untouched shards of the base remain valid for the copy.
        """
        dup = DatabaseInstance.__new__(DatabaseInstance)
        dup._schema = self._schema
        dup._facts = set(self._facts)
        dup._blocks = defaultdict(set)
        for key, facts in self._blocks.items():
            dup._blocks[key] = set(facts)
        dup._data_version = self._data_version
        dup._block_items = self._block_items
        dup._clock = self._clock
        dup._block_versions = dict(self._block_versions)
        return dup

    def block_key_of(self, fact: Fact) -> BlockKey:
        """The key of the block this fact belongs to (present or not)."""
        signature = self._schema.relation(fact.relation)
        return (fact.relation, fact.key(signature.key_size))

    # -- basic accessors -------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def facts(self) -> FrozenSet[Fact]:
        return frozenset(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        return hash(frozenset(self._facts))

    def relation(self, name: str) -> Tuple[Fact, ...]:
        """All facts of the given relation (the *R-relation* of the instance)."""
        return tuple(f for f in self._facts if f.relation == name)

    def relation_names(self) -> Tuple[str, ...]:
        """Names of relations that actually contain facts."""
        return tuple(sorted({f.relation for f in self._facts}))

    # -- blocks and consistency ------------------------------------------------

    def blocks(self, relation: Optional[str] = None) -> List[FrozenSet[Fact]]:
        """All blocks, optionally restricted to one relation.

        A block is a maximal set of key-equal facts of one relation.
        """
        return [
            frozenset(facts)
            for (rel, _key), facts in self.block_items()
            if relation is None or rel == relation
        ]

    def block_items(self) -> List[Tuple[BlockKey, Tuple[Fact, ...]]]:
        """Deterministic ``(block key, facts)`` pairs, memoised per version.

        Iteration over the underlying sets follows hash order, which varies
        across processes, so keys sort by repr and facts sort within their
        block.  Sorting per block is much cheaper than sorting the whole
        fact set (blocks are tiny and there are far fewer keys than facts),
        and the memo keyed by :attr:`data_version` makes repeat consumers —
        shard planning for different queries or shard counts over one
        instance — reuse the order for free.
        """
        cached = self._block_items
        if cached is not None and cached[0] == self._data_version:
            return cached[1]
        items = [
            (key, tuple(sorted(facts, key=repr)))
            for key, facts in sorted(self._blocks.items(), key=lambda kv: repr(kv[0]))
        ]
        self._block_items = (self._data_version, items)
        return items

    def block_count(self) -> int:
        """How many blocks the instance has — O(1), unlike :meth:`blocks`."""
        return len(self._blocks)

    def block_of(self, fact: Fact) -> FrozenSet[Fact]:
        """The block containing ``fact`` (key-equal facts of the same relation)."""
        signature = self._schema.relation(fact.relation)
        return frozenset(self._blocks[(fact.relation, fact.key(signature.key_size))])

    def inconsistent_blocks(self, relation: Optional[str] = None) -> List[FrozenSet[Fact]]:
        """Blocks containing at least two (key-equal, hence conflicting) facts."""
        return [b for b in self.blocks(relation) if len(b) > 1]

    def is_consistent(self, relation: Optional[str] = None) -> bool:
        """True when no two distinct facts are key-equal.

        With ``relation`` given, checks consistency of that relation only
        (used by Lemma D.3-style constructions).
        """
        return not self.inconsistent_blocks(relation)

    def inconsistency_ratio(self) -> float:
        """Fraction of blocks that are inconsistent (0.0 for a consistent db)."""
        all_blocks = self.blocks()
        if not all_blocks:
            return 0.0
        return len([b for b in all_blocks if len(b) > 1]) / len(all_blocks)

    # -- repairs ---------------------------------------------------------------

    def repair_count(self) -> int:
        """Number of repairs (product of block sizes)."""
        count = 1
        for block in self._blocks.values():
            count *= len(block)
        return count

    def repairs(self) -> Iterator["DatabaseInstance"]:
        """Enumerate every repair as a new (consistent) instance.

        The number of repairs is exponential in the number of inconsistent
        blocks; this generator is intended for ground-truth computations on
        small instances and for tests.
        """
        ordered_blocks = [sorted(b, key=repr) for b in self._blocks.values()]
        if not ordered_blocks:
            yield DatabaseInstance(self._schema)
            return
        for choice in itertools.product(*ordered_blocks):
            yield DatabaseInstance(self._schema, choice)

    def arbitrary_repair(self) -> "DatabaseInstance":
        """Return one (deterministic) repair: the lexicographically first pick."""
        picks = [min(block, key=repr) for block in self._blocks.values()]
        return DatabaseInstance(self._schema, picks)

    def falsifying_repair_exists(self, predicate) -> bool:
        """True when some repair ``r`` satisfies ``not predicate(r)``.

        ``predicate`` maps a repair (a consistent :class:`DatabaseInstance`)
        to a boolean.  Used by brute-force CERTAINTY checks.
        """
        return any(not predicate(repair) for repair in self.repairs())

    # -- transformation --------------------------------------------------------

    def restricted_to(self, relations: Iterable[str]) -> "DatabaseInstance":
        """A new instance containing only the facts of the given relations."""
        wanted = set(relations)
        return DatabaseInstance(
            self._schema, (f for f in self._facts if f.relation in wanted)
        )

    def union(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Union of two instances over the merged schema."""
        schema = self._schema.merged_with(other.schema)
        return DatabaseInstance(schema, itertools.chain(self._facts, other.facts))

    def without(self, facts: Iterable[Fact]) -> "DatabaseInstance":
        """A new instance with the given facts removed."""
        removed = set(facts)
        return DatabaseInstance(
            self._schema, (f for f in self._facts if f not in removed)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        listing = ", ".join(sorted(str(f) for f in self._facts))
        return f"DatabaseInstance({{{listing}}})"
