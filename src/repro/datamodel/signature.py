"""Relation signatures and schemas.

A relation name is associated with a *signature* ``(n, k, J)`` where ``n`` is
the arity, positions ``1..k`` form the primary key, and ``J`` is the set of
numerical positions (Section 3 of the paper).  Positions are 1-based, matching
the paper's notation; helper accessors expose 0-based indices for Python code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class RelationSignature:
    """Signature ``(arity, key_size, numeric_positions)`` of a relation name.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"Stock"``.
    arity:
        Number of attributes ``n``.
    key_size:
        The first ``key_size`` positions form the primary key.  ``key_size``
        may equal ``arity`` (a *full-key* relation).
    numeric_positions:
        1-based positions constrained to hold numbers.
    attribute_names:
        Optional human-readable attribute names (used by the SQL backend and
        pretty-printers).  Defaults to ``a1 .. an``.
    """

    name: str
    arity: int
    key_size: int
    numeric_positions: Tuple[int, ...] = ()
    attribute_names: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise SchemaError(f"relation {self.name!r}: arity must be >= 1")
        if not 1 <= self.key_size <= self.arity:
            raise SchemaError(
                f"relation {self.name!r}: key_size must be in 1..{self.arity}, "
                f"got {self.key_size}"
            )
        for pos in self.numeric_positions:
            if not 1 <= pos <= self.arity:
                raise SchemaError(
                    f"relation {self.name!r}: numeric position {pos} out of range"
                )
        object.__setattr__(
            self, "numeric_positions", tuple(sorted(set(self.numeric_positions)))
        )
        if not self.attribute_names:
            object.__setattr__(
                self,
                "attribute_names",
                tuple(f"a{i}" for i in range(1, self.arity + 1)),
            )
        elif len(self.attribute_names) != self.arity:
            raise SchemaError(
                f"relation {self.name!r}: {len(self.attribute_names)} attribute "
                f"names given for arity {self.arity}"
            )

    # -- convenience accessors -------------------------------------------------

    @property
    def key_positions(self) -> Tuple[int, ...]:
        """1-based primary-key positions (always a prefix ``1..key_size``)."""
        return tuple(range(1, self.key_size + 1))

    @property
    def nonkey_positions(self) -> Tuple[int, ...]:
        """1-based positions outside the primary key."""
        return tuple(range(self.key_size + 1, self.arity + 1))

    @property
    def is_full_key(self) -> bool:
        """True when every position belongs to the primary key."""
        return self.key_size == self.arity

    def is_numeric(self, position: int) -> bool:
        """Return True when the 1-based ``position`` is a numeric column."""
        return position in self.numeric_positions

    def key_of(self, values: Tuple) -> Tuple:
        """Project a tuple of ``arity`` values onto the primary key positions."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r}: expected {self.arity} values, got {len(values)}"
            )
        return values[: self.key_size]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cols = []
        for i, attr in enumerate(self.attribute_names, start=1):
            marker = "*" if i <= self.key_size else ""
            num = "#" if i in self.numeric_positions else ""
            cols.append(f"{marker}{attr}{num}")
        return f"{self.name}({', '.join(cols)})"


class Schema:
    """A collection of relation signatures keyed by relation name."""

    def __init__(self, signatures: Optional[Iterable[RelationSignature]] = None) -> None:
        self._signatures: Dict[str, RelationSignature] = {}
        for sig in signatures or ():
            self.add(sig)

    def add(self, signature: RelationSignature) -> None:
        """Register a signature; re-registering an identical one is a no-op."""
        existing = self._signatures.get(signature.name)
        if existing is not None and existing != signature:
            raise SchemaError(
                f"relation {signature.name!r} already registered with a "
                f"different signature"
            )
        self._signatures[signature.name] = signature

    def relation(self, name: str) -> RelationSignature:
        """Return the signature for ``name`` or raise :class:`SchemaError`."""
        try:
            return self._signatures[name]
        except KeyError as exc:
            raise SchemaError(f"unknown relation {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._signatures

    def __iter__(self) -> Iterator[RelationSignature]:
        return iter(self._signatures.values())

    def __len__(self) -> int:
        return len(self._signatures)

    def relation_names(self) -> Tuple[str, ...]:
        """All registered relation names, in registration order."""
        return tuple(self._signatures)

    def merged_with(self, other: "Schema") -> "Schema":
        """Return a new schema containing the signatures of both schemas."""
        merged = Schema(self)
        for sig in other:
            merged.add(sig)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schema({', '.join(str(s) for s in self)})"
