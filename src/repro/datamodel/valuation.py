"""Valuations: total mappings from a finite set of variables to constants.

Following Section 3 of the paper, a valuation ``theta`` over a set ``U`` of
variables maps every variable in ``U`` to a constant, is the identity outside
``U``, and maps numeric variables to numbers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from repro.datamodel.facts import Constant


class Valuation(Mapping[str, Constant]):
    """An immutable total mapping from variable names to constants.

    The class behaves like a read-only mapping and additionally supports the
    paper's operations: restriction (``theta|_V``), extension, and application
    to terms.  Variables outside the domain are mapped to themselves by
    :meth:`apply`.
    """

    __slots__ = ("_assignments", "_hash")

    def __init__(self, assignments: Optional[Mapping[str, Constant]] = None) -> None:
        self._assignments: Dict[str, Constant] = dict(assignments or {})
        self._hash: Optional[int] = None

    # -- Mapping protocol ------------------------------------------------------

    def __getitem__(self, variable: str) -> Constant:
        return self._assignments[variable]

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def __contains__(self, variable: object) -> bool:
        return variable in self._assignments

    # -- equality / hashing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Valuation):
            return self._assignments == other._assignments
        if isinstance(other, Mapping):
            return self._assignments == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._assignments.items()))
        return self._hash

    # -- paper operations ------------------------------------------------------

    @property
    def domain(self) -> FrozenSet[str]:
        """The set of variables on which the valuation is defined."""
        return frozenset(self._assignments)

    def apply(self, term: object) -> object:
        """Apply the valuation to a term (variable name or constant).

        Variables in the domain are replaced by their image; any other value
        (constants, variables outside the domain) is returned unchanged.
        """
        if isinstance(term, str) and term in self._assignments:
            return self._assignments[term]
        return term

    def restrict(self, variables: Iterable[str]) -> "Valuation":
        """Return ``theta|_V``, the restriction of the valuation to ``V``."""
        wanted = set(variables)
        return Valuation(
            {var: val for var, val in self._assignments.items() if var in wanted}
        )

    def extend(self, assignments: Mapping[str, Constant]) -> "Valuation":
        """Return a new valuation that also maps the given variables.

        Raises ``ValueError`` when an existing variable would be remapped to a
        different constant (the extension must be conservative).
        """
        merged = dict(self._assignments)
        for var, val in assignments.items():
            if var in merged and merged[var] != val:
                raise ValueError(
                    f"conflicting extension for variable {var!r}: "
                    f"{merged[var]!r} vs {val!r}"
                )
            merged[var] = val
        return Valuation(merged)

    def is_extension_of(self, other: "Valuation") -> bool:
        """True when this valuation agrees with ``other`` on its whole domain."""
        return all(
            var in self._assignments and self._assignments[var] == val
            for var, val in other.items()
        )

    def agrees_with(self, other: "Valuation", variables: Iterable[str]) -> bool:
        """True when both valuations coincide on every variable in ``variables``."""
        return all(self.apply(v) == other.apply(v) for v in variables)

    def project_tuple(self, variables: Iterable[str]) -> Tuple[Constant, ...]:
        """Return the image of ``variables`` as a tuple, in the given order."""
        return tuple(self._assignments[v] for v in variables)

    def as_dict(self) -> Dict[str, Constant]:
        """A plain-dict copy of the assignments."""
        return dict(self._assignments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}->{v!r}" for k, v in sorted(self._assignments.items()))
        return f"Valuation({{{inner}}})"


EMPTY_VALUATION = Valuation()
