"""Aggregation queries ``( x̄, AGG(r) ) <- q(x̄, ȳ)`` (class AGGR[sjfBCQ])."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.datamodel.facts import is_numeric_constant
from repro.exceptions import QueryError
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import Term, Variable, is_variable, term_str


class AggregationQuery:
    """A numerical query ``( x̄, AGG(r) ) <- q(x̄, ȳ)``.

    ``aggregate`` is the aggregate *symbol* (e.g. ``"SUM"``); its semantics is
    provided separately by :mod:`repro.aggregates`.  ``aggregated_term`` is
    either a numeric variable occurring in the body or a constant rational
    number.  ``body.free_variables`` are the query's free (GROUP BY)
    variables ``x̄``; when empty the query is closed (``g()``).
    """

    def __init__(
        self,
        aggregate: str,
        aggregated_term: Term,
        body: ConjunctiveQuery,
    ) -> None:
        self._aggregate = aggregate.upper()
        self._term = aggregated_term
        self._body = body
        if is_variable(aggregated_term):
            if aggregated_term not in body.variables:
                raise QueryError(
                    f"aggregated variable {aggregated_term} does not occur in the body"
                )
        elif not is_numeric_constant(aggregated_term):
            raise QueryError(
                f"aggregated term must be a variable or a number, got "
                f"{aggregated_term!r}"
            )

    # -- structure --------------------------------------------------------------

    @property
    def aggregate(self) -> str:
        """The aggregate symbol, upper-cased (``SUM``, ``COUNT``, ``MIN``, ...)."""
        return self._aggregate

    @property
    def aggregated_term(self) -> Term:
        return self._term

    @property
    def body(self) -> ConjunctiveQuery:
        return self._body

    @property
    def free_variables(self) -> Tuple[Variable, ...]:
        """The GROUP BY variables ``x̄`` (empty for a closed numerical query)."""
        return self._body.free_variables

    def is_closed(self) -> bool:
        """True when the query has no free variables (``g()``)."""
        return not self.free_variables

    def is_self_join_free(self) -> bool:
        return self._body.is_self_join_free()

    # -- transformations ---------------------------------------------------------

    def with_aggregate(self, aggregate: str) -> "AggregationQuery":
        """Same body and term, different aggregate symbol."""
        return AggregationQuery(aggregate, self._term, self._body)

    def instantiate_free_variables(self, constants: Sequence) -> "AggregationQuery":
        """Replace the free variables by constants (Section 6.2 treatment).

        Produces the closed query ``AGG(r) <- q_c̄(ȳ)`` in which each free
        variable has been replaced by the corresponding constant.
        """
        free = self.free_variables
        if len(constants) != len(free):
            raise QueryError(
                f"expected {len(free)} constants, got {len(constants)}"
            )
        mapping = dict(zip(free, constants))
        new_body = self._body.substitute(mapping)
        term = self._term
        if is_variable(term) and term in mapping:
            term = mapping[term]
        return AggregationQuery(self._aggregate, term, new_body)

    def boolean_body(self) -> ConjunctiveQuery:
        """The Boolean query ``∃ū q(ū)`` underlying the aggregation query.

        Free variables are kept as free variables (they behave as constants in
        the CQA analysis, per Section 6.2).
        """
        return self._body

    # -- equality / rendering ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregationQuery):
            return NotImplemented
        return (
            self._aggregate == other._aggregate
            and self._term == other._term
            and self._body == other._body
        )

    def __hash__(self) -> int:
        return hash((self._aggregate, self._term, self._body))

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self._body.atoms)
        head_agg = f"{self._aggregate}({term_str(self._term)})"
        if self.free_variables:
            head_vars = ", ".join(v.name for v in self.free_variables)
            return f"({head_vars}, {head_agg}) <- {body}"
        return f"{head_agg} <- {body}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AggregationQuery({self})"
