"""Parser for the Datalog-like syntax used throughout the paper.

Grammar (informal)::

    agg_query  := head "<-" body
    head       := AGG "(" term ")"
                | "(" var ("," var)* "," AGG "(" term ")" ")"
    body       := atom ("," atom)*
    atom       := RELATION "(" term ("," term)* ")"
    term       := IDENTIFIER            (a variable)
                | NUMBER                (a numeric constant; fractions allowed)
                | 'string' | "string"   (a string constant)

Bare identifiers are variables; constants must be quoted strings or numbers.
The relation signatures (primary keys, numeric columns) come from the schema
passed to the parsing functions; a variable appearing at a numeric position in
any atom is flagged numeric everywhere.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.datamodel.signature import Schema
from repro.exceptions import ParseError
from repro.query.aggregation import AggregationQuery
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import Term, Variable

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<arrow><-|:-)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<comma>,)
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<number>-?\d+(?:\.\d+)?(?:/\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)

_AGGREGATE_NAMES = {
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "AVG",
    "PRODUCT",
    "COUNT_DISTINCT",
    "SUM_DISTINCT",
}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: str) -> None:
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected input at: {remainder[:30]!r}")
        position = match.end()
        for kind in ("arrow", "lparen", "rparen", "comma", "string", "number", "ident"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


def _parse_number(text: str) -> Union[int, Fraction]:
    if "/" in text:
        numerator, denominator = text.split("/")
        return Fraction(int(numerator), int(denominator))
    if "." in text:
        return Fraction(text)
    return int(text)


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self, expected: Optional[str] = None) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        if expected is not None and token.kind != expected:
            raise ParseError(f"expected {expected}, got {token.value!r}")
        self._index += 1
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- raw (schema-independent) parsing ---------------------------------------

    def parse_raw_term(self) -> Tuple[str, object]:
        """Return ``("var", name)`` or ``("const", value)``."""
        token = self._next()
        if token.kind == "ident":
            return ("var", token.value)
        if token.kind == "number":
            return ("const", _parse_number(token.value))
        if token.kind == "string":
            return ("const", token.value[1:-1])
        raise ParseError(f"expected a term, got {token.value!r}")

    def parse_raw_atom(self) -> Tuple[str, List[Tuple[str, object]]]:
        name = self._next("ident").value
        self._next("lparen")
        terms = [self.parse_raw_term()]
        while self._peek() is not None and self._peek().kind == "comma":
            self._next("comma")
            terms.append(self.parse_raw_term())
        self._next("rparen")
        return name, terms

    def parse_raw_body(self) -> List[Tuple[str, List[Tuple[str, object]]]]:
        atoms = [self.parse_raw_atom()]
        while self._peek() is not None and self._peek().kind == "comma":
            self._next("comma")
            atoms.append(self.parse_raw_atom())
        return atoms


def _numeric_variable_names(
    schema: Schema, raw_atoms: Sequence[Tuple[str, List[Tuple[str, object]]]]
) -> set:
    """Names of variables that occur at some numeric position."""
    numeric: set = set()
    for relation, terms in raw_atoms:
        signature = schema.relation(relation)
        for position, (kind, value) in enumerate(terms, start=1):
            if kind == "var" and signature.is_numeric(position):
                numeric.add(value)
    return numeric


def _build_atoms(
    schema: Schema, raw_atoms: Sequence[Tuple[str, List[Tuple[str, object]]]]
) -> List[Atom]:
    numeric_names = _numeric_variable_names(schema, raw_atoms)
    atoms: List[Atom] = []
    for relation, raw_terms in raw_atoms:
        signature = schema.relation(relation)
        if len(raw_terms) != signature.arity:
            raise ParseError(
                f"atom over {relation!r}: expected {signature.arity} terms, got "
                f"{len(raw_terms)}"
            )
        terms: List[Term] = []
        for kind, value in raw_terms:
            if kind == "var":
                terms.append(Variable(value, numeric=value in numeric_names))
            else:
                terms.append(value)
        atoms.append(Atom(signature, tuple(terms)))
    return atoms


def parse_atom(schema: Schema, text: str) -> Atom:
    """Parse a single atom, e.g. ``"Stock(p, t, y)"``."""
    parser = _Parser(_tokenize(text))
    raw = parser.parse_raw_atom()
    if not parser.at_end():
        raise ParseError(f"trailing input after atom in {text!r}")
    return _build_atoms(schema, [raw])[0]


def parse_query(
    schema: Schema,
    text: str,
    free: Union[str, Sequence[str]] = (),
) -> ConjunctiveQuery:
    """Parse a conjunctive query body, e.g. ``"R(x,y), S(y,z,'d',r)"``.

    ``free`` optionally lists free-variable names (comma-separated string or
    sequence of names).
    """
    parser = _Parser(_tokenize(text))
    raw_atoms = parser.parse_raw_body()
    if not parser.at_end():
        raise ParseError(f"trailing input after query in {text!r}")
    atoms = _build_atoms(schema, raw_atoms)
    free_names = (
        [name.strip() for name in free.split(",") if name.strip()]
        if isinstance(free, str)
        else list(free)
    )
    by_name: Dict[str, Variable] = {}
    for atom in atoms:
        for var in atom.variables:
            by_name[var.name] = var
    try:
        free_vars = [by_name[name] for name in free_names]
    except KeyError as exc:
        raise ParseError(f"free variable {exc.args[0]!r} not in query body") from exc
    return ConjunctiveQuery(atoms, free_vars)


def parse_aggregation_query(schema: Schema, text: str) -> AggregationQuery:
    """Parse an aggregation query in the paper's Datalog-like syntax.

    Examples::

        SUM(y) <- Dealers('Smith', t), Stock(p, t, y)
        (x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)
        COUNT(1) <- R(x, y), S(y, z)
    """
    if "<-" not in text and ":-" not in text:
        raise ParseError("aggregation query must contain '<-' separating head and body")
    arrow = "<-" if "<-" in text else ":-"
    head_text, body_text = text.split(arrow, 1)

    head_parser = _Parser(_tokenize(head_text))
    group_by_names: List[str] = []
    token = head_parser._peek()
    if token is None:
        raise ParseError("empty head in aggregation query")

    if token.kind == "lparen":
        # "(x, y, SUM(r))" style head with free variables.
        head_parser._next("lparen")
        aggregate_name: Optional[str] = None
        raw_term: Optional[Tuple[str, object]] = None
        while True:
            ident = head_parser._next("ident").value
            following = head_parser._peek()
            if following is not None and following.kind == "lparen":
                if ident.upper() not in _AGGREGATE_NAMES:
                    raise ParseError(f"unknown aggregate symbol {ident!r}")
                aggregate_name = ident.upper()
                head_parser._next("lparen")
                raw_term = head_parser.parse_raw_term()
                head_parser._next("rparen")
                head_parser._next("rparen")
                break
            group_by_names.append(ident)
            head_parser._next("comma")
        if aggregate_name is None or raw_term is None:
            raise ParseError("head with free variables must end with AGG(term)")
    else:
        ident = head_parser._next("ident").value
        if ident.upper() not in _AGGREGATE_NAMES:
            raise ParseError(f"unknown aggregate symbol {ident!r}")
        aggregate_name = ident.upper()
        head_parser._next("lparen")
        raw_term = head_parser.parse_raw_term()
        head_parser._next("rparen")
    if not head_parser.at_end():
        raise ParseError(f"trailing input after head in {head_text!r}")

    body = parse_query(schema, body_text, free=group_by_names)

    kind, value = raw_term
    if kind == "const":
        aggregated: Term = value
    else:
        matches = [v for v in body.variables if v.name == value]
        if not matches:
            raise ParseError(
                f"aggregated variable {value!r} does not occur in the body"
            )
        aggregated = matches[0]
    return AggregationQuery(aggregate_name, aggregated, body)
