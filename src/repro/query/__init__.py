"""Query substrate: terms, atoms, conjunctive queries and aggregation queries."""

from repro.query.terms import Variable, is_variable, term_str
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.aggregation import AggregationQuery
from repro.query.parser import parse_atom, parse_query, parse_aggregation_query
from repro.query.sqlparser import parse_sql_aggregation_query

__all__ = [
    "Variable",
    "is_variable",
    "term_str",
    "Atom",
    "ConjunctiveQuery",
    "AggregationQuery",
    "parse_atom",
    "parse_query",
    "parse_aggregation_query",
    "parse_sql_aggregation_query",
]
