"""Query atoms ``R(u1, ..., un)`` with key / non-key variable accessors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Optional, Tuple

from repro.datamodel.facts import Fact
from repro.datamodel.signature import RelationSignature
from repro.exceptions import QueryError
from repro.query.terms import Term, Variable, is_variable, term_str


@dataclass(frozen=True)
class Atom:
    """An atom over a relation signature.

    The signature fixes which positions form the primary key and which are
    numeric, so the atom can expose ``Key(F)`` and ``notKey(F)`` exactly as in
    the paper.
    """

    signature: RelationSignature
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))
        if len(self.terms) != self.signature.arity:
            raise QueryError(
                f"atom over {self.signature.name!r}: expected "
                f"{self.signature.arity} terms, got {len(self.terms)}"
            )

    # -- naming ----------------------------------------------------------------

    @property
    def relation(self) -> str:
        return self.signature.name

    # -- variable sets (paper notation) ------------------------------------------

    @property
    def variables(self) -> FrozenSet[Variable]:
        """``vars(F)``: all variables occurring in the atom."""
        return frozenset(t for t in self.terms if is_variable(t))

    @property
    def key_terms(self) -> Tuple[Term, ...]:
        """Terms at primary-key positions."""
        return self.terms[: self.signature.key_size]

    @property
    def nonkey_terms(self) -> Tuple[Term, ...]:
        """Terms at non-key positions."""
        return self.terms[self.signature.key_size:]

    @property
    def key_variables(self) -> FrozenSet[Variable]:
        """``Key(F)``: variables occurring at a primary-key position."""
        return frozenset(t for t in self.key_terms if is_variable(t))

    @property
    def nonkey_variables(self) -> FrozenSet[Variable]:
        """``notKey(F) = vars(F) \\ Key(F)``."""
        return self.variables - self.key_variables

    def variable_positions(self, variable: Variable) -> Tuple[int, ...]:
        """1-based positions at which ``variable`` occurs."""
        return tuple(i for i, t in enumerate(self.terms, start=1) if t == variable)

    # -- substitution and matching -----------------------------------------------

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Replace variables according to ``mapping`` (variables not present stay)."""
        return Atom(
            self.signature,
            tuple(mapping.get(t, t) if is_variable(t) else t for t in self.terms),
        )

    def apply_valuation(self, valuation: Mapping[str, object]) -> "Atom":
        """Apply a valuation keyed by variable *name* (paper's ``theta(F)``)."""
        new_terms = []
        for term in self.terms:
            if is_variable(term) and term.name in valuation:
                new_terms.append(valuation[term.name])
            else:
                new_terms.append(term)
        return Atom(self.signature, tuple(new_terms))

    def match(self, fact: Fact) -> Optional[dict]:
        """Try to unify the atom with a fact.

        Returns a dict ``{variable_name: constant}`` on success, or ``None``
        when the fact does not match (wrong relation, conflicting constants,
        or one variable bound to two different constants).
        """
        if fact.relation != self.relation or fact.arity != len(self.terms):
            return None
        bindings: dict = {}
        for term, value in zip(self.terms, fact.values):
            if is_variable(term):
                if term.name in bindings and bindings[term.name] != value:
                    return None
                bindings[term.name] = value
            elif term != value:
                return None
        return bindings

    def ground(self, valuation: Mapping[str, object]) -> Fact:
        """Turn the atom into a fact using a valuation covering all variables."""
        values = []
        for term in self.terms:
            if is_variable(term):
                if term.name not in valuation:
                    raise QueryError(
                        f"valuation does not cover variable {term.name!r} of {self}"
                    )
                values.append(valuation[term.name])
            else:
                values.append(term)
        return Fact(self.relation, tuple(values))

    def is_ground(self) -> bool:
        """True when the atom contains no variables (i.e. it is a fact)."""
        return not self.variables

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(term_str(t) for t in self.terms)})"
