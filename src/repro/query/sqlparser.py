"""Parser for the SQL fragment covered by the paper.

The paper's queries are SQL ``SELECT-FROM-WHERE-GROUP BY`` queries in which
the WHERE clause is a conjunction of equalities and the SELECT clause contains
the GROUP BY columns plus one aggregate (MAX, MIN, SUM, AVG, COUNT, ...).
This module translates such queries into :class:`~repro.query.aggregation.
AggregationQuery` objects, playing the role that ``sqlglot`` + a Postgres
catalog would play in a full deployment (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import ParseError
from repro.query.aggregation import AggregationQuery
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import Term, Variable

_SQL_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'[^']*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<star>\*)
      | (?P<comma>,)
      | (?P<dot>\.)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<eq>=)
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)

_AGGREGATES = {"SUM", "COUNT", "MIN", "MAX", "AVG", "PRODUCT"}
_KEYWORDS = {"SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND"}


class _SqlToken:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: str) -> None:
        self.kind = kind
        self.value = value

    @property
    def upper(self) -> str:
        return self.value.upper()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_SqlToken({self.kind}, {self.value!r})"


def _tokenize_sql(text: str) -> List[_SqlToken]:
    tokens: List[_SqlToken] = []
    position = 0
    text = text.strip().rstrip(";")
    while position < len(text):
        match = _SQL_TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected SQL input at: {remainder[:30]!r}")
        position = match.end()
        for kind in (
            "string",
            "number",
            "star",
            "comma",
            "dot",
            "lparen",
            "rparen",
            "eq",
            "ident",
        ):
            value = match.group(kind)
            if value is not None:
                tokens.append(_SqlToken(kind, value))
                break
    return tokens


class _ColumnRef:
    """A (possibly alias-qualified) column reference appearing in the SQL text."""

    __slots__ = ("alias", "column")

    def __init__(self, alias: Optional[str], column: str) -> None:
        self.alias = alias
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.alias}.{self.column}" if self.alias else self.column


class _SelectItem:
    """One entry of the SELECT list: a plain column or an aggregate call."""

    __slots__ = ("aggregate", "column", "is_star")

    def __init__(
        self,
        aggregate: Optional[str],
        column: Optional[_ColumnRef],
        is_star: bool = False,
    ) -> None:
        self.aggregate = aggregate
        self.column = column
        self.is_star = is_star


class _Equality:
    """An equality from the WHERE clause (column = column, or column = constant)."""

    __slots__ = ("left", "right")

    def __init__(self, left, right) -> None:
        self.left = left
        self.right = right


class _SqlParser:
    def __init__(self, tokens: List[_SqlToken]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Optional[_SqlToken]:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self, expected_kind: Optional[str] = None) -> _SqlToken:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of SQL input")
        if expected_kind is not None and token.kind != expected_kind:
            raise ParseError(f"expected {expected_kind}, got {token.value!r}")
        self._index += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next("ident")
        if token.upper != keyword:
            raise ParseError(f"expected keyword {keyword}, got {token.value!r}")

    def _keyword_ahead(self, keyword: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "ident" and token.upper == keyword

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- clause parsers ----------------------------------------------------------

    def parse_column_ref(self) -> _ColumnRef:
        first = self._next("ident").value
        if self._peek() is not None and self._peek().kind == "dot":
            self._next("dot")
            second = self._next("ident").value
            return _ColumnRef(first, second)
        return _ColumnRef(None, first)

    def parse_select_list(self) -> List[_SelectItem]:
        items: List[_SelectItem] = []
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("unexpected end of SELECT list")
            if token.kind == "ident" and token.upper in _AGGREGATES:
                aggregate = self._next("ident").upper
                self._next("lparen")
                inner = self._peek()
                if inner is not None and inner.kind == "star":
                    self._next("star")
                    items.append(_SelectItem(aggregate, None, is_star=True))
                else:
                    items.append(_SelectItem(aggregate, self.parse_column_ref()))
                self._next("rparen")
            else:
                items.append(_SelectItem(None, self.parse_column_ref()))
            if self._peek() is not None and self._peek().kind == "comma":
                self._next("comma")
                continue
            break
        return items

    def parse_from_list(self) -> List[Tuple[str, str]]:
        """Return a list of ``(relation_name, alias)`` pairs."""
        entries: List[Tuple[str, str]] = []
        while True:
            relation = self._next("ident").value
            alias = relation
            if self._keyword_ahead("AS"):
                self._next("ident")
                alias = self._next("ident").value
            elif (
                self._peek() is not None
                and self._peek().kind == "ident"
                and self._peek().upper not in _KEYWORDS
            ):
                alias = self._next("ident").value
            entries.append((relation, alias))
            if self._peek() is not None and self._peek().kind == "comma":
                self._next("comma")
                continue
            break
        return entries

    def parse_operand(self):
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of WHERE clause")
        if token.kind == "string":
            self._next("string")
            return token.value[1:-1]
        if token.kind == "number":
            self._next("number")
            text = token.value
            return Fraction(text) if "." in text else int(text)
        return self.parse_column_ref()

    def parse_where(self) -> List[_Equality]:
        equalities: List[_Equality] = []
        while True:
            left = self.parse_operand()
            self._next("eq")
            right = self.parse_operand()
            equalities.append(_Equality(left, right))
            if self._keyword_ahead("AND"):
                self._next("ident")
                continue
            break
        return equalities

    def parse_group_by(self) -> List[_ColumnRef]:
        columns = [self.parse_column_ref()]
        while self._peek() is not None and self._peek().kind == "comma":
            self._next("comma")
            columns.append(self.parse_column_ref())
        return columns


class _UnionFind:
    """Union-find over column slots, used to apply WHERE equalities."""

    def __init__(self) -> None:
        self._parent: Dict = {}

    def find(self, item):
        self._parent.setdefault(item, item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left, right) -> None:
        self._parent[self.find(left)] = self.find(right)

    def items(self):
        return list(self._parent)


def parse_sql_aggregation_query(schema: Schema, sql: str) -> AggregationQuery:
    """Translate a SQL aggregation query into an :class:`AggregationQuery`.

    Supported fragment: ``SELECT <group cols and one aggregate> FROM <relations
    with optional aliases> [WHERE <conjunction of equalities>] [GROUP BY
    <columns>]``.  Column names must match the attribute names declared in the
    schema's relation signatures.
    """
    parser = _SqlParser(_tokenize_sql(sql))
    parser._expect_keyword("SELECT")
    select_items = parser.parse_select_list()
    parser._expect_keyword("FROM")
    from_entries = parser.parse_from_list()
    equalities: List[_Equality] = []
    group_by: List[_ColumnRef] = []
    if parser._keyword_ahead("WHERE"):
        parser._next("ident")
        equalities = parser.parse_where()
    if parser._keyword_ahead("GROUP"):
        parser._next("ident")
        parser._expect_keyword("BY")
        group_by = parser.parse_group_by()
    if not parser.at_end():
        raise ParseError("trailing input after SQL query")

    aggregates = [item for item in select_items if item.aggregate is not None]
    if len(aggregates) != 1:
        raise ParseError("exactly one aggregate is required in the SELECT clause")
    aggregate_item = aggregates[0]

    # Map aliases to signatures and set up one column "slot" per alias/position.
    alias_signature: Dict[str, RelationSignature] = {}
    for relation, alias in from_entries:
        if alias in alias_signature:
            raise ParseError(f"duplicate alias {alias!r} in FROM clause")
        alias_signature[alias] = schema.relation(relation)

    def resolve(ref: _ColumnRef) -> Tuple[str, int]:
        """Resolve a column reference to a slot ``(alias, 1-based position)``."""
        candidates: List[Tuple[str, int]] = []
        for alias, signature in alias_signature.items():
            if ref.alias is not None and ref.alias != alias:
                continue
            for position, attr in enumerate(signature.attribute_names, start=1):
                if attr.lower() == ref.column.lower():
                    candidates.append((alias, position))
        if not candidates:
            raise ParseError(f"cannot resolve column reference {ref!r}")
        if len(candidates) > 1:
            raise ParseError(f"ambiguous column reference {ref!r}")
        return candidates[0]

    union_find = _UnionFind()
    slot_constant: Dict[Tuple[str, int], object] = {}
    for alias, signature in alias_signature.items():
        for position in range(1, signature.arity + 1):
            union_find.find((alias, position))

    for equality in equalities:
        left, right = equality.left, equality.right
        left_is_col = isinstance(left, _ColumnRef)
        right_is_col = isinstance(right, _ColumnRef)
        if left_is_col and right_is_col:
            union_find.union(resolve(left), resolve(right))
        elif left_is_col:
            slot_constant[resolve(left)] = right
        elif right_is_col:
            slot_constant[resolve(right)] = left
        elif left != right:
            raise ParseError(f"contradictory constant equality {left!r} = {right!r}")

    # Propagate constants to class representatives and detect conflicts.
    class_constant: Dict[Tuple[str, int], object] = {}
    for slot, constant in slot_constant.items():
        root = union_find.find(slot)
        if root in class_constant and class_constant[root] != constant:
            raise ParseError("conflicting constants for a single join class")
        class_constant[root] = constant

    # Determine numeric classes (a class is numeric when any member slot is).
    numeric_classes: set = set()
    for alias, signature in alias_signature.items():
        for position in range(1, signature.arity + 1):
            if signature.is_numeric(position):
                numeric_classes.add(union_find.find((alias, position)))

    def class_variable_name(root: Tuple[str, int]) -> str:
        alias, position = root
        attr = alias_signature[alias].attribute_names[position - 1]
        return f"{alias}_{attr}".lower()

    def term_for_slot(alias: str, position: int) -> Term:
        root = union_find.find((alias, position))
        if root in class_constant:
            return class_constant[root]
        return Variable(class_variable_name(root), numeric=root in numeric_classes)

    atoms: List[Atom] = []
    for relation, alias in from_entries:
        signature = alias_signature[alias]
        terms = tuple(
            term_for_slot(alias, position) for position in range(1, signature.arity + 1)
        )
        atoms.append(Atom(signature, terms))

    def term_for_ref(ref: _ColumnRef) -> Term:
        alias, position = resolve(ref)
        return term_for_slot(alias, position)

    group_terms = [term_for_ref(ref) for ref in group_by]
    select_plain = [item for item in select_items if item.aggregate is None]
    for item in select_plain:
        term = term_for_ref(item.column)
        if term not in group_terms:
            group_terms.append(term)

    free_variables = [t for t in group_terms if isinstance(t, Variable)]
    body = ConjunctiveQuery(atoms, free_variables)

    aggregate_name = aggregate_item.aggregate
    if aggregate_item.is_star:
        if aggregate_name != "COUNT":
            raise ParseError("'*' is only allowed inside COUNT(*)")
        aggregated_term: Term = 1
    else:
        aggregated_term = term_for_ref(aggregate_item.column)
    return AggregationQuery(aggregate_name, aggregated_term, body)
