"""Conjunctive queries (conjunctions of atoms), self-join-freeness and K(q)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.datamodel.signature import Schema
from repro.exceptions import NotSelfJoinFreeError, QueryError
from repro.query.atom import Atom
from repro.query.terms import Term, Variable


class ConjunctiveQuery:
    """A conjunction of atoms with an optional tuple of free variables.

    When ``free_variables`` is empty the query is Boolean (class ``sjfBCQ``
    when additionally self-join-free).  Free variables are used for the
    GROUP BY extension of Section 6.2 and for consistent first-order
    rewritings with free variables.
    """

    def __init__(
        self,
        atoms: Sequence[Atom],
        free_variables: Sequence[Variable] = (),
    ) -> None:
        if not atoms:
            raise QueryError("a conjunctive query needs at least one atom")
        self._atoms: Tuple[Atom, ...] = tuple(atoms)
        self._free: Tuple[Variable, ...] = tuple(free_variables)
        all_vars = self.variables
        for var in self._free:
            if var not in all_vars:
                raise QueryError(
                    f"free variable {var} does not occur in the query body"
                )

    # -- structure ---------------------------------------------------------------

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        return self._atoms

    @property
    def free_variables(self) -> Tuple[Variable, ...]:
        return self._free

    @property
    def bound_variables(self) -> FrozenSet[Variable]:
        return self.variables - frozenset(self._free)

    @property
    def variables(self) -> FrozenSet[Variable]:
        """``vars(q)``: all variables occurring in some atom."""
        result: set = set()
        for atom in self._atoms:
            result |= atom.variables
        return frozenset(result)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(a.relation for a in self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return set(self._atoms) == set(other._atoms) and self._free == other._free

    def __hash__(self) -> int:
        return hash((frozenset(self._atoms), self._free))

    def atom_for_relation(self, relation: str) -> Atom:
        """The unique atom with the given relation name (self-join-free use)."""
        matches = [a for a in self._atoms if a.relation == relation]
        if len(matches) != 1:
            raise QueryError(
                f"expected exactly one atom over {relation!r}, found {len(matches)}"
            )
        return matches[0]

    # -- properties ---------------------------------------------------------------

    def is_self_join_free(self) -> bool:
        """True when no two distinct atoms share a relation name."""
        names = self.relation_names
        return len(names) == len(set(names))

    def require_self_join_free(self) -> None:
        """Raise :class:`NotSelfJoinFreeError` unless the query is self-join-free."""
        if not self.is_self_join_free():
            raise NotSelfJoinFreeError(
                f"query has a self-join: {', '.join(self.relation_names)}"
            )

    def is_boolean(self) -> bool:
        return not self._free

    # -- K(q): key functional dependencies -----------------------------------------

    def key_dependencies(self) -> List[Tuple[FrozenSet[Variable], FrozenSet[Variable]]]:
        """``K(q)``: the FD ``Key(F) -> vars(F)`` for every atom ``F``."""
        return [(atom.key_variables, atom.variables) for atom in self._atoms]

    # -- schema ---------------------------------------------------------------------

    def schema(self) -> Schema:
        """Schema containing the signature of every atom in the query."""
        return Schema(a.signature for a in self._atoms)

    # -- transformation ----------------------------------------------------------------

    def without_atom(self, atom: Atom) -> "ConjunctiveQuery":
        """``q \\ {F}``: drop one atom (free variables that vanish are dropped too)."""
        remaining = tuple(a for a in self._atoms if a != atom)
        if len(remaining) == len(self._atoms):
            raise QueryError(f"atom {atom} not in query")
        if not remaining:
            raise QueryError("cannot remove the last atom of a query")
        remaining_vars: set = set()
        for a in remaining:
            remaining_vars |= a.variables
        free = tuple(v for v in self._free if v in remaining_vars)
        return ConjunctiveQuery(remaining, free)

    def restricted_to_atoms(self, atoms: Iterable[Atom]) -> "ConjunctiveQuery":
        """The sub-query containing exactly the given atoms (order preserved)."""
        wanted = set(atoms)
        remaining = tuple(a for a in self._atoms if a in wanted)
        if not remaining:
            raise QueryError("sub-query would be empty")
        remaining_vars: set = set()
        for a in remaining:
            remaining_vars |= a.variables
        free = tuple(v for v in self._free if v in remaining_vars)
        return ConjunctiveQuery(remaining, free)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a variable substitution to every atom (``q[x -> c]``).

        Free variables that become constants are removed from the free tuple.
        """
        new_atoms = tuple(a.substitute(mapping) for a in self._atoms)
        free = tuple(v for v in self._free if v not in mapping)
        return ConjunctiveQuery(new_atoms, free)

    def apply_valuation(self, valuation: Mapping[str, object]) -> "ConjunctiveQuery":
        """Apply a valuation keyed by variable name (paper's ``theta(q)``)."""
        mapping: Dict[Variable, Term] = {}
        for var in self.variables:
            if var.name in valuation:
                mapping[var] = valuation[var.name]
        return self.substitute(mapping) if mapping else self

    def with_free_variables(self, free: Sequence[Variable]) -> "ConjunctiveQuery":
        """Same body with a different tuple of free variables."""
        return ConjunctiveQuery(self._atoms, free)

    def reordered(self, atoms: Sequence[Atom]) -> "ConjunctiveQuery":
        """Same query with atoms listed in the given order."""
        if set(atoms) != set(self._atoms) or len(atoms) != len(self._atoms):
            raise QueryError("reordered atom list must be a permutation of the query")
        return ConjunctiveQuery(tuple(atoms), self._free)

    # -- rendering ----------------------------------------------------------------------

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self._atoms)
        if self._free:
            head = ", ".join(v.name for v in self._free)
            return f"({head}) <- {body}"
        return body

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConjunctiveQuery({self})"
