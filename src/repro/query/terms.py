"""Terms occurring in query atoms: variables and constants.

Variables are instances of :class:`Variable`; constants are plain Python
values (strings, ints, floats, :class:`~fractions.Fraction`).  A variable may
be flagged as *numeric*, in which case every valuation must map it to a
number (Section 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.datamodel.facts import Constant


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, optionally flagged as numeric."""

    name: str
    numeric: bool = False

    def __str__(self) -> str:
        return self.name


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """True when ``term`` is a :class:`Variable` (as opposed to a constant)."""
    return isinstance(term, Variable)


def term_str(term: Term) -> str:
    """Human-readable rendering of a term (quotes string constants)."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, str):
        return repr(term)
    return str(term)
