"""Async HTTP client and load generator for the serving layer.

:class:`ServeClient` is a minimal HTTP/1.1 client over asyncio streams
(keep-alive, ``Content-Length`` framing) with typed helpers for every
endpoint; answers decode back into :class:`RangeAnswer` objects so client
code round-trips the library's exact arithmetic.

:class:`LoadGenerator` drives a server with a mixed workload at a fixed
concurrency, recording per-request latency; :meth:`LoadGenerator.run`
returns a :class:`LoadReport` with throughput and p50/p95 — the measurement
``benchmarks/bench_serve.py`` and the CI smoke job are built on.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.range_answers import RangeAnswer
from repro.datamodel.facts import Constant
from repro.datamodel.instance import DatabaseInstance
from repro.exceptions import ReproError
from repro.obs.trace import TRACE_HEADER
from repro.serve.protocol import (
    ProtocolError,
    decode_group_answers,
    decode_range_answer,
    dumps,
    encode_constant,
    encode_mutation_op,
    instance_to_payload,
    loads,
)


class ServeClientError(ReproError):
    """A non-2xx response surfaced as an exception by the typed helpers.

    Carries the server's ``X-Repro-Trace-Id`` (``trace_id``) and the
    structured error body (``body``), so a failed call can be correlated
    with the server-side trace and slow-query log without re-issuing it.
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        trace_id: Optional[str] = None,
        body: Optional[object] = None,
    ) -> None:
        suffix = f" (trace {trace_id})" if trace_id else ""
        super().__init__(f"[{status} {error_type}] {message}{suffix}")
        self.status = status
        self.error_type = error_type
        self.trace_id = trace_id
        self.body = body


class ServeClient:
    """One keep-alive connection to a repro-serve server."""

    def __init__(self, host: str, port: int, timeout_s: float = 60.0) -> None:
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: Trace id echoed by the most recent response (None before any).
        self.last_trace_id: Optional[str] = None
        #: Lower-cased headers of the most recent response (empty before any).
        self.last_response_headers: Dict[str, str] = {}

    # -- connection management ---------------------------------------------------------

    async def open(self) -> "ServeClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "ServeClient":
        return await self.open()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- raw request / response --------------------------------------------------------

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, object]:
        """Send one request, returning ``(status, decoded JSON body)``.

        The connection is kept alive across calls.  A timed-out exchange
        closes the connection (a late response would otherwise be read as
        the answer to the *next* request).  Broken connections are retried
        once, but only for GETs — a POST may already have executed
        server-side, and re-sending it is not idempotent.  ``headers``
        are extra request headers (e.g. ``If-Match`` preconditions).
        """
        try:
            return await asyncio.wait_for(
                self._request_once(method, path, payload, headers), self._timeout_s
            )
        except asyncio.TimeoutError:
            await self.close()  # connection is mid-response: desynchronized
            raise
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            await self.close()
            if method.upper() != "GET":
                raise
            return await asyncio.wait_for(
                self._request_once(method, path, payload, headers), self._timeout_s
            )

    async def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, object]:
        await self.open()
        assert self._reader is not None and self._writer is not None
        body = dumps(payload) if payload is not None else b""
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"{extra}"
            f"\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ProtocolError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionResetError("server closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        self.last_response_headers = dict(headers)
        trace_id = headers.get(TRACE_HEADER.lower())
        if trace_id:
            self.last_trace_id = trace_id
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, loads(raw)

    def _checked(self, status: int, payload: object) -> object:
        if 200 <= status < 300:
            return payload
        error = {}
        if isinstance(payload, dict):
            error = payload.get("error") or {}
        raise ServeClientError(
            status,
            error.get("type", "Unknown"),
            error.get("message", ""),
            trace_id=error.get("trace_id") or self.last_trace_id,
            body=payload,
        )

    # -- typed endpoint helpers --------------------------------------------------------

    async def answer(
        self,
        instance: str,
        query: str,
        binding: Optional[Dict[str, Constant]] = None,
        timeout_s: Optional[float] = None,
    ) -> RangeAnswer:
        payload: Dict[str, object] = {"instance": instance, "query": query}
        if binding:
            payload["binding"] = {
                name: encode_constant(value) for name, value in binding.items()
            }
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        status, body = await self.request("POST", "/answer", payload)
        result = self._checked(status, body)
        return decode_range_answer(result["answer"])

    async def answer_group_by(
        self, instance: str, query: str, timeout_s: Optional[float] = None
    ) -> Dict[Tuple[Constant, ...], RangeAnswer]:
        payload: Dict[str, object] = {"instance": instance, "query": query}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        status, body = await self.request("POST", "/answer_group_by", payload)
        result = self._checked(status, body)
        return decode_group_answers(result["groups"])

    async def answer_many(
        self,
        items: Sequence[Tuple[str, str]],
        max_workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> List[Dict[str, object]]:
        """Answer a batch of ``(instance_name, query_text)`` pairs."""
        payload: Dict[str, object] = {
            "items": [
                {"instance": instance, "query": query} for instance, query in items
            ]
        }
        if max_workers is not None:
            payload["max_workers"] = max_workers
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        status, body = await self.request("POST", "/answer_many", payload)
        result = self._checked(status, body)
        return result["results"]

    async def register_instance(
        self,
        name: str,
        instance: DatabaseInstance,
        replace: bool = False,
        shards: Optional[int] = None,
    ) -> Dict[str, object]:
        payload = instance_to_payload(name, instance)
        payload["replace"] = replace
        if shards is not None:
            payload["shards"] = shards
        status, body = await self.request("POST", "/instances", payload)
        return self._checked(status, body)["registered"]

    async def mutate_instance(
        self,
        name: str,
        ops: Sequence[object],
        expected_version: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """Apply fact mutations to a registered instance (the write path).

        Speaks ``PATCH /instances/{name}`` with the typed ops envelope;
        ``ops`` are ``("add"|"remove", relation, values)`` triples (or
        equivalently shaped mappings).  ``expected_version`` is sent as an
        ``If-Match`` header, turning a lost optimistic-concurrency race
        into a :class:`ServeClientError` with status 409.  Returns the
        mutated instance's description (bumped ``version`` included)
        merged with the write's footprint: ``applied``,
        ``touched_blocks``, and ``shards_invalidated``.
        """
        from urllib.parse import quote

        payload: Dict[str, object] = {"ops": [encode_mutation_op(op) for op in ops]}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        headers = (
            {"If-Match": str(expected_version)}
            if expected_version is not None
            else None
        )
        status, body = await self.request(
            "PATCH", f"/instances/{quote(name, safe='')}", payload, headers=headers
        )
        result = self._checked(status, body)
        return {
            **result["mutated"],
            "applied": result["applied"],
            "touched_blocks": result["touched_blocks"],
            "shards_invalidated": result["shards_invalidated"],
        }

    async def drop_instance(
        self, name: str, expected_version: Optional[int] = None
    ) -> Dict[str, object]:
        """Unregister (and durably drop, if the server has a store) ``name``."""
        from urllib.parse import quote

        payload: Dict[str, object] = {}
        if expected_version is not None:
            payload["expected_version"] = expected_version
        status, body = await self.request(
            "DELETE", f"/instances/{quote(name, safe='')}", payload
        )
        return self._checked(status, body)

    async def instances(self) -> List[Dict[str, object]]:
        status, body = await self.request("GET", "/instances")
        return self._checked(status, body)["instances"]

    async def metrics(self) -> Dict[str, object]:
        status, body = await self.request("GET", "/metrics")
        return self._checked(status, body)

    async def trace(self, trace_id: str) -> Dict[str, object]:
        """Fetch a retained trace's span tree from ``GET /traces/{id}``."""
        from urllib.parse import quote

        status, body = await self.request(
            "GET", f"/traces/{quote(trace_id, safe='')}"
        )
        return self._checked(status, body)["trace"]

    async def debug_top(
        self, sort: str = "cpu", limit: Optional[int] = None
    ) -> Dict[str, object]:
        """Fetch the per-(instance, plan) cost table from ``GET /debug/top``."""
        path = f"/debug/top?sort={sort}"
        if limit is not None:
            path += f"&limit={limit}"
        status, body = await self.request("GET", path)
        return self._checked(status, body)

    async def healthz(self) -> Dict[str, object]:
        status, body = await self.request("GET", "/healthz")
        return self._checked(status, body)


# -- load generation --------------------------------------------------------------------

#: One planned request: (method, path, payload-or-None).
PlannedRequest = Tuple[str, str, Optional[object]]


@dataclass
class LoadObservation:
    """Outcome of one load-generated request."""

    path: str
    status: int
    seconds: float


@dataclass
class LoadReport:
    """Aggregate of one load-generation run."""

    requests: int
    concurrency: int
    seconds: float
    observations: List[LoadObservation] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for obs in self.observations:
            key = str(obs.status)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def error_5xx(self) -> int:
        return sum(1 for obs in self.observations if obs.status >= 500)

    def percentile_ms(self, quantile: float) -> Optional[float]:
        if not self.observations:
            return None
        ordered = sorted(obs.seconds for obs in self.observations)
        index = min(len(ordered) - 1, max(0, round(quantile * (len(ordered) - 1))))
        return round(ordered[index] * 1000.0, 3)

    def summary(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "concurrency": self.concurrency,
            "seconds": round(self.seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
            "p99_ms": self.percentile_ms(0.99),
            "statuses": self.status_counts(),
            "errors_5xx": self.error_5xx(),
        }


class LoadGenerator:
    """Drives a server with a fixed-concurrency closed-loop workload.

    ``concurrency`` worker coroutines each hold one keep-alive connection
    and pull planned requests from a shared queue until it drains — the
    classic closed-loop load model, so measured throughput is end-to-end
    (connection reuse, parsing, engine, serialization).
    """

    def __init__(self, host: str, port: int, concurrency: int = 8) -> None:
        self._host = host
        self._port = port
        self._concurrency = max(1, concurrency)

    async def run(self, planned: Sequence[PlannedRequest]) -> LoadReport:
        queue: "asyncio.Queue[PlannedRequest]" = asyncio.Queue()
        for item in planned:
            queue.put_nowait(item)
        observations: List[LoadObservation] = []

        async def worker() -> None:
            async with ServeClient(self._host, self._port) as client:
                while True:
                    try:
                        method, path, payload = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    started = time.perf_counter()
                    try:
                        status, _body = await client.request(method, path, payload)
                    except (OSError, asyncio.TimeoutError, ReproError):
                        status = 599  # transport-level failure bucket
                    observations.append(
                        LoadObservation(
                            path=path,
                            status=status,
                            seconds=time.perf_counter() - started,
                        )
                    )

        started = time.perf_counter()
        workers = min(self._concurrency, max(1, len(planned)))
        await asyncio.gather(*(worker() for _ in range(workers)))
        elapsed = time.perf_counter() - started
        return LoadReport(
            requests=len(observations),
            concurrency=workers,
            seconds=elapsed,
            observations=observations,
        )
