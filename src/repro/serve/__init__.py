"""repro.serve — asyncio HTTP/JSON serving layer over the engine.

The serving subsystem turns the cached, batched
:class:`~repro.engine.ConsistentAnswerEngine` into a long-running service:

* :mod:`repro.serve.registry` — named :class:`DatabaseInstance`\\ s loaded at
  boot or registered over HTTP, so requests reference databases by name;
* :mod:`repro.serve.app` — the asyncio server (router, engine thread pool,
  bounded-queue admission control, per-request timeouts);
* :mod:`repro.serve.protocol` — loss-free JSON encoding of queries, exact
  (Fraction) answers, ⊥ and instances;
* :mod:`repro.serve.metrics` — request counters, latency histograms and the
  engine's plan-cache / SQL-memo statistics at ``GET /metrics``;
* :mod:`repro.serve.client` — async client + load generator used by the
  benchmarks and the CI smoke test.

With ``--store-dir DIR`` the registry is backed by the durable
:mod:`repro.store` subsystem: instances persist as snapshots, mutations
(``POST /instances/{name}/facts``) append to a fsync'd fact log, and a
restart reloads everything with versions intact.

Boot a server with ``python -m repro.serve`` (see ``--help``).
"""

from repro.serve.app import (
    AdmissionError,
    AdmissionGate,
    ConsistentAnswerServer,
    ServeConfig,
    run_server,
)
from repro.serve.client import (
    LoadGenerator,
    LoadReport,
    ServeClient,
    ServeClientError,
)
from repro.serve.metrics import LatencyHistogram, ServerMetrics
from repro.serve.protocol import (
    ProtocolError,
    decode_constant,
    decode_group_answers,
    decode_mutation_ops,
    decode_range_answer,
    encode_constant,
    encode_group_answers,
    encode_mutation_op,
    encode_range_answer,
    expected_version_of,
    instance_from_payload,
    instance_to_payload,
    schema_from_payload,
    schema_to_payload,
)
from repro.serve.registry import (
    BUILTIN_INSTANCES,
    DuplicateInstanceError,
    InstanceRegistry,
    MutationError,
    RegisteredInstance,
    RegistryError,
    UnknownInstanceError,
    VersionConflictError,
    builtin_registry,
)

__all__ = [
    "AdmissionError",
    "AdmissionGate",
    "BUILTIN_INSTANCES",
    "ConsistentAnswerServer",
    "DuplicateInstanceError",
    "InstanceRegistry",
    "LatencyHistogram",
    "LoadGenerator",
    "LoadReport",
    "MutationError",
    "ProtocolError",
    "RegisteredInstance",
    "RegistryError",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServerMetrics",
    "UnknownInstanceError",
    "VersionConflictError",
    "builtin_registry",
    "decode_constant",
    "decode_group_answers",
    "decode_mutation_ops",
    "decode_range_answer",
    "encode_constant",
    "encode_group_answers",
    "encode_mutation_op",
    "encode_range_answer",
    "expected_version_of",
    "instance_from_payload",
    "instance_to_payload",
    "run_server",
    "schema_from_payload",
    "schema_to_payload",
]
