"""The asyncio HTTP/JSON server fronting the :class:`ConsistentAnswerEngine`.

Architecture (stdlib only — no third-party web framework):

* one asyncio event loop accepts connections and parses a minimal but
  correct subset of HTTP/1.1 (keep-alive, ``Content-Length`` bodies);
* query execution is CPU-bound library code, so handlers dispatch it to a
  fixed thread pool via ``run_in_executor``; the engine's plan cache and the
  process-wide SQL memo are thread-safe and shared by every worker, so one
  request's compiled plan is every later request's cache hit;
* with ``worker_processes > 0`` (the CLI's ``--workers N``) the server
  additionally runs a long-lived :class:`~repro.engine.workers.WorkerPool`
  and the thread pool merely *waits* on it: CPU-bound plan execution
  happens on persistent worker processes (sidestepping the GIL), instances
  transfer to the workers once, sharded instances fan out with stable
  shard→worker assignment, and ``/answer_many`` parallelises across the
  pool by default; threads remain the execution fallback when the pool is
  off or fails;
* admission control is a counting gate sized ``workers + max_pending``:
  when it is full the server answers ``503`` *immediately* instead of
  queueing unboundedly (load-shedding beats collapse);
* every engine-bound request has a timeout (server default, optionally
  lowered per request) and times out with ``504`` — the worker thread
  finishes in the background but the client is released;
* batched requests (``POST /answer_many``) reuse the
  :mod:`repro.engine.batch` machinery; the server caps their process
  fan-out (``max_batch_workers``, default serial) because the serial path
  is what warms the shared plan cache.

* with ``store_dir`` set (the CLI's ``--store-dir``) the registry is backed
  by a durable :class:`~repro.store.InstanceStore`: every registered
  instance persists as a snapshot, every ``POST /instances/{name}/facts``
  mutation appends to its fsync'd fact log before becoming visible, and a
  restarted server reloads the whole registry — versions intact — from the
  same directory.  Writes take an optional ``expected_version``
  precondition (``409`` on mismatch).

Endpoints::

    POST   /answer                  {"instance", "query", "binding"?, "timeout_s"?}
    POST   /answer_group_by         {"instance", "query", "timeout_s"?}
    POST   /answer_many             {"items": [{"instance", "query"}, ...], ...}
    POST   /instances               {"name", "schema", "rows", "replace"?}
    POST   /instances/{name}/facts  {"ops": [...], "expected_version"?}
    DELETE /instances/{name}        {"expected_version"?}
    GET    /instances               registered instances + fingerprints + versions
    GET    /metrics                 counters, histograms, cache + store stats
                                    (``?format=prometheus`` → text exposition)
    GET    /traces/{id}             retained span tree of a recent request
    GET    /healthz                 liveness + config summary

Every response (errors included) echoes ``X-Repro-Trace-Id``: the id the
request carried in, or a freshly minted one.  ``"explain": true`` on the
answer endpoints inlines the request's finished span tree in the response;
``slow_query_ms`` logs the same tree as one structured-JSON line.
"""

from __future__ import annotations

import asyncio
import contextvars
import os
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.range_answers import RangeAnswer
from repro.engine import (
    AnswerOptions,
    ConsistentAnswerEngine,
    WorkerPool,
    WorkerPoolError,
    shard_plan_cache_stats,
    sql_memo_stats,
)
from repro.engine.sharding import configure_summary_cache
from repro.engine.cancellation import CancelToken, JobCancelledError, token_scope
from repro.exceptions import (
    BackendError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.obs import (
    CACHE_REGISTRY,
    REGISTRY,
    TRACE_HEADER,
    AdaptiveSamplingController,
    CostTable,
    DroppedTraceLog,
    EventLoopLagProbe,
    SpanExporter,
    TraceBuffer,
    TraceSampler,
    get_logger,
    render_prometheus,
    set_log_level,
)
from repro.obs.admission import (
    REASON_COLD_KEY,
    REASON_COST_OK,
    REASON_DEPTH,
    REASON_PREDICTED_COST,
    AdmissionDecision,
    CostPredictor,
    record_decision,
    retry_after_s,
)
from repro.obs.cost import rollup as cost_rollup
from repro.obs.sample import DECISION_DROP
from repro.obs.trace import (
    current_span,
    current_trace_id,
    new_trace_id,
    set_tracing,
    start_trace,
)
from repro.query.aggregation import AggregationQuery
from repro.query.parser import parse_aggregation_query
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    ProtocolError,
    decode_constant,
    decode_mutation_ops,
    dumps,
    encode_block_key,
    encode_group_answers,
    encode_range_answer,
    error_body,
    expected_version_from_headers,
    expected_version_of,
    loads,
)
from repro.serve.registry import (
    DuplicateInstanceError,
    InstanceRegistry,
    RegisteredInstance,
    UnknownInstanceError,
    VersionConflictError,
    builtin_registry,
)
from repro.store import InstanceStore

SERVER_NAME = "repro-serve"

_LOG = get_logger("serve")
_TRACE_HEADER_LOWER = TRACE_HEADER.lower()

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class AdmissionError(ReproError):
    """The server sheds this request instead of queueing it.

    ``reason`` lands in the structured 503 body (``"depth"`` for a full
    gate, ``"predicted_cost"`` for a cost-budget shed) and
    ``retry_after_s`` becomes the ``Retry-After`` response header.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = REASON_DEPTH,
        retry_after_s: Optional[int] = None,
        decision: Optional[AdmissionDecision] = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.decision = decision


class AdmissionGate:
    """Counting gate bounding engine-bound work (in-flight + queued).

    ``try_acquire``/``admit`` never block: a full gate is an immediate
    ``503``.  Beyond the slot count the gate keeps a *queued-cost ledger*:
    each admitted request may deposit its predicted engine CPU, and
    :meth:`admit` sheds with ``predicted_cost`` when admitting would push
    the ledger over ``budget_ms``.  Two carve-outs keep the budget from
    shedding the traffic it exists to protect:

    * an idle gate always admits — shedding the only request in the
      building would livelock any plan whose prediction alone exceeds the
      budget;
    * a request predicted under ``COST_EXEMPT_FRACTION`` of the budget
      bypasses the budget check (depth still applies): it extends the
      backlog's drain time negligibly, so shedding it frees nothing —
      without the exemption a saturated ledger starves the cheap traffic
      alongside the expensive flood that filled it.

    The gate is intentionally test-accessible — filling it by hand is the
    deterministic way to exercise the rejection path.
    """

    #: Predicted costs at or below this fraction of the budget are never
    #: cost-shed (they still ride the ledger and the depth check).
    COST_EXEMPT_FRACTION = 0.05

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("admission gate capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._in_use = 0
        self._queued_cost_ms = 0.0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._in_use

    @property
    def queued_cost_ms(self) -> float:
        with self._lock:
            return self._queued_cost_ms

    def admit(
        self,
        cost_ms: Optional[float] = None,
        budget_ms: Optional[float] = None,
    ) -> Tuple[bool, str, float]:
        """One admission verdict: ``(admitted, reason, queued_cost_ms)``.

        ``cost_ms`` is the request's predicted engine CPU (``None`` = cold
        key, no prediction); ``budget_ms`` the ``--max-queue-cost-ms``
        budget (``None`` = depth-only).  The returned queued cost is the
        ledger *after* an admit / at the time of a shed.
        """
        with self._lock:
            if self._in_use >= self._capacity:
                return False, REASON_DEPTH, self._queued_cost_ms
            if (
                budget_ms is not None
                and cost_ms is not None
                and cost_ms > budget_ms * self.COST_EXEMPT_FRACTION
                and self._in_use > 0
                and self._queued_cost_ms + cost_ms > budget_ms
            ):
                return False, REASON_PREDICTED_COST, self._queued_cost_ms
            self._in_use += 1
            if cost_ms is not None:
                self._queued_cost_ms += max(0.0, cost_ms)
            if budget_ms is None:
                reason = REASON_DEPTH
            elif cost_ms is None:
                reason = REASON_COLD_KEY
            else:
                reason = REASON_COST_OK
            return True, reason, self._queued_cost_ms

    def try_acquire(self) -> bool:
        return self.admit()[0]

    def release(self, cost_ms: Optional[float] = None) -> None:
        with self._lock:
            if self._in_use > 0:
                self._in_use -= 1
            if cost_ms is not None:
                self._queued_cost_ms = max(0.0, self._queued_cost_ms - cost_ms)
            if self._in_use == 0:
                self._queued_cost_ms = 0.0  # idle gate: no float drift carryover


def _default_workers() -> int:
    return max(2, min(os.cpu_count() or 2, 8))


@dataclass
class ServeConfig:
    """Boot configuration of the serving layer.

    ``workers`` sizes the engine thread pool (``None`` → cpu-derived);
    ``max_pending`` bounds the admission queue beyond the in-flight slots;
    ``max_batch_workers`` caps the process fan-out a single ``/answer_many``
    request may ask for.  The default of 1 (always the serial,
    cache-warming path) is also the safe one: raising it makes batch
    requests fork a process pool from this multithreaded server, which on
    fork-start-method platforms can inherit locks held by other request
    threads — only raise it on deployments that accept that risk.  The
    same knob governs sharded execution: the engine's ``batch_workers`` is
    built from it, so shard summarisation for instances registered with
    ``shards > 1`` stays serial (in-thread, no fork) at the default of 1.

    ``worker_processes`` is the opt-in process mode that replaces both
    caveats above: the server boots a long-lived
    :class:`~repro.engine.workers.WorkerPool` of that many engine worker
    processes at ``start()`` — no per-request forking — and dispatches
    CPU-bound plan execution, ``/answer_many`` chunks and shard
    summarisation to it.  Threads remain the fallback (``0`` keeps the
    pure thread-pool behaviour).

    ``store_dir`` opts into durability: registered instances and their
    mutations persist under that directory and are reloaded at boot.
    ``store_compact_every`` is the per-instance log depth at which the
    store folds the log into a fresh snapshot (0 disables auto-compaction).
    """

    host: str = "127.0.0.1"
    port: int = 8421
    backend: str = "operational"
    fallback: str = "branch_and_bound"
    plan_cache_size: int = 256
    workers: Optional[int] = None
    max_pending: int = 64
    request_timeout_s: float = 30.0
    max_batch_workers: int = 1
    max_body_bytes: int = 16 * 1024 * 1024
    register_builtins: bool = True
    worker_processes: int = 0
    store_dir: Optional[str] = None
    store_compact_every: int = 64
    #: Per-process tracing switch; off turns every span site into a no-op.
    tracing: bool = True
    #: How many finished traces ``GET /traces/{id}`` can still see.
    trace_buffer: int = 256
    #: Requests at or above this wall time (ms) log their full span tree;
    #: ``None`` disables the slow-query log, ``0`` logs every request.
    slow_query_ms: Optional[float] = None
    #: Head-sample 1 in N traces.  ``None`` (the default) defers to
    #: ``REPRO_TRACE_SAMPLE`` for the *starting* rate and lets the adaptive
    #: controller adjust it; an explicit integer *pins* the rate and
    #: disables the controller.  Slow and 5xx traces are always retained
    #: (tail keep), whatever the rate.
    trace_sample: Optional[int] = None
    #: Traced-requests-per-second budget for the adaptive sampling
    #: controller: the head rate 1/N tracks the observed arrival rate so
    #: roughly this many traces per second are head-kept.  ``None`` or
    #: ``0`` disables adaptation (static rate only).
    trace_target_rps: Optional[float] = 100.0
    #: Entry capacity of the process-global shard-summary cache.
    summary_cache_size: int = 512
    #: Cost-predictive admission: shed (503, ``reason="predicted_cost"``)
    #: when the predicted queued engine CPU would exceed this budget.
    #: ``None`` keeps depth-only admission.  Predictions come from the cost
    #: table's per-(instance, plan) EWMA, so the knob needs tracing enabled
    #: to learn; cold keys fall back to depth-only.
    max_queue_cost_ms: Optional[float] = None
    #: OTLP/JSON export target for retained traces: an ``http(s)://`` URL
    #: (POST per batch) or a file path (NDJSON append).  ``None`` disables.
    otlp_export: Optional[str] = None
    #: Gzip-compress OTLP HTTP batches (``Content-Encoding: gzip``); file
    #: sinks ignore it (NDJSON stays greppable).
    otlp_gzip: bool = False
    #: Structured-log threshold (``debug``/``info``/``warning``/``error``);
    #: ``None`` keeps ``REPRO_LOG_LEVEL`` or the ``info`` default.
    log_level: Optional[str] = None

    def resolved_workers(self) -> int:
        return self.workers if self.workers else _default_workers()


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes
    query: str = ""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class _TextResponse:
    """A non-JSON response body (the Prometheus exposition page)."""

    text: str
    content_type: str = "text/plain; version=0.0.4; charset=utf-8"


class _HttpError(Exception):
    """An error with a fixed HTTP status and a structured body."""

    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type


def _classify_exception(exc: Exception) -> Tuple[int, str]:
    """Map an exception to (status, error type) for the structured body."""
    if isinstance(exc, _HttpError):
        return exc.status, exc.error_type
    if isinstance(exc, UnknownInstanceError):
        return 404, type(exc).__name__
    if isinstance(exc, (DuplicateInstanceError, VersionConflictError)):
        return 409, type(exc).__name__
    if isinstance(exc, AdmissionError):
        return 503, type(exc).__name__
    if isinstance(exc, (ProtocolError, ParseError, QueryError, SchemaError)):
        return 400, type(exc).__name__
    if isinstance(exc, (BackendError, WorkerPoolError)):
        return 500, type(exc).__name__
    if isinstance(exc, ReproError):
        return 400, type(exc).__name__
    return 500, type(exc).__name__


class ConsistentAnswerServer:
    """The serving app: registry + engine pool + router, bound to a socket."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        engine: Optional[ConsistentAnswerEngine] = None,
        registry: Optional[InstanceRegistry] = None,
    ) -> None:
        self.config = config or ServeConfig()
        workers = self.config.resolved_workers()
        pool_size = max(0, self.config.worker_processes)
        if engine is not None:
            self.engine = engine
        elif pool_size > 0:
            # Process mode: batches default to the pool width, and even
            # small batches are worth dispatching (workers are warm).
            self.engine = ConsistentAnswerEngine(
                backend=self.config.backend,
                fallback=self.config.fallback,
                plan_cache_size=self.config.plan_cache_size,
                batch_workers=pool_size,
                min_parallel_items=2,
            )
        else:
            self.engine = ConsistentAnswerEngine(
                backend=self.config.backend,
                fallback=self.config.fallback,
                plan_cache_size=self.config.plan_cache_size,
                batch_workers=self.config.max_batch_workers,
            )
        self._pool: Optional[WorkerPool] = (
            WorkerPool(workers=pool_size, engine_config=self.engine.config())
            if pool_size > 0
            else None
        )
        self.store: Optional[InstanceStore] = (
            InstanceStore(
                self.config.store_dir,
                compact_every=self.config.store_compact_every,
            )
            if self.config.store_dir
            else None
        )
        if registry is not None:
            if self.store is not None and registry.store is not self.store:
                # Silently serving a store-less registry while /healthz
                # advertises durability would lose every write on restart.
                raise ValueError(
                    "store_dir is configured but the explicit registry is "
                    "not attached to it; build the registry with "
                    "InstanceRegistry(store=...) (or omit one of the two)"
                )
            self.registry = registry
        elif self.config.register_builtins:
            self.registry = builtin_registry(store=self.store)
        else:
            self.registry = InstanceRegistry(store=self.store)
            self.registry.load_store()
        self.registry.subscribe(self._on_registry_event)
        set_tracing(self.config.tracing)
        if self.config.log_level:
            set_log_level(self.config.log_level)
        self.traces = TraceBuffer(max(1, self.config.trace_buffer))
        self.sampler = TraceSampler(self.config.trace_sample)
        # Adaptive sampling is the default; an explicit --trace-sample pins
        # the static rate and a zero/None target disables the controller.
        self.sampling_controller: Optional[AdaptiveSamplingController] = (
            AdaptiveSamplingController(self.sampler, self.config.trace_target_rps)
            if self.config.trace_sample is None
            and self.config.trace_target_rps
            and self.config.tracing
            else None
        )
        self.sampled_out = DroppedTraceLog()
        self.cost_table = CostTable()
        self.predictor = CostPredictor(self.cost_table)
        configure_summary_cache(self.config.summary_cache_size)
        # The cost table doubles as the fifth registered cache; weakref so a
        # replaced server's table can be collected (last registration wins).
        table_ref = weakref.ref(self.cost_table)
        CACHE_REGISTRY.register(
            "cost_table",
            lambda: (
                table.report("cost_table")
                if (table := table_ref()) is not None
                else None
            ),
        )
        self.exporter: Optional[SpanExporter] = (
            SpanExporter(
                self.config.otlp_export,
                compression="gzip" if self.config.otlp_gzip else None,
            )
            if self.config.otlp_export
            else None
        )
        self._lag_probe = EventLoopLagProbe()
        self._lag_task: Optional[asyncio.Task] = None
        self.metrics = ServerMetrics()
        self.gate = AdmissionGate(workers + max(0, self.config.max_pending))
        self._workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Tuple[str, int]] = None
        self._routes: Dict[Tuple[str, str], Callable] = {
            ("POST", "/answer"): self._handle_answer,
            ("POST", "/answer_group_by"): self._handle_answer_group_by,
            ("POST", "/answer_many"): self._handle_answer_many,
            ("POST", "/instances"): self._handle_register_instance,
            ("GET", "/instances"): self._handle_list_instances,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/debug/top"): self._handle_debug_top,
            ("GET", "/debug/caches"): self._handle_debug_caches,
            ("GET", "/healthz"): self._handle_healthz,
        }

    # -- registry events ---------------------------------------------------------------

    def _on_registry_event(self, event: str, name: str) -> None:
        """Broadcast write-path invalidation to the worker pool.

        A drop frees the workers' resident copy immediately.  Mutations and
        replacements need no push: the registry swapped in a new instance
        object, so the pool's named ref goes stale and the next request
        re-pickles under a bumped version (the existing version-bump
        machinery).  Plan caches are untouched either way — the schema
        fingerprint is unchanged by fact-level writes.
        """
        pool = self._pool
        if event == "drop" and pool is not None and pool.is_running:
            pool.invalidate(name)

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the socket (``port=0`` picks an ephemeral one) and accept.

        The worker pool (if configured) starts *before* the socket binds:
        workers fork while the process is still single-request, and a
        port-bind failure tears the pool down again via :meth:`stop`.
        """
        if self._pool is not None and not self._pool.is_running:
            try:
                self._pool.start()
            except WorkerPoolError:  # restarted server: the old pool is gone
                self._pool = WorkerPool(
                    workers=max(1, self.config.worker_processes),
                    engine_config=self.engine.config(),
                )
                self._pool.start()
            self.engine.set_worker_pool(self._pool)
            self._adopt_store_spools()
        if self.exporter is not None:
            self.exporter.start()
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.config.host, port=self.config.port
        )
        if self._lag_task is None or self._lag_task.done():
            self._lag_task = asyncio.get_running_loop().create_task(
                self._lag_probe.run(), name="repro-loop-lag-probe"
            )
        sock = self._server.sockets[0]
        self._address = sock.getsockname()[:2]
        return self._address

    def _adopt_store_spools(self) -> None:
        """Point the worker pool's instance refs at the store's snapshots.

        The boot reload compacts dirty logs, so every loaded instance's
        snapshot file is current — the pool serves its bytes (via a hard
        link into the pool spool) as the pickled-once instance transfer
        instead of re-pickling what is already on disk (the two on-disk
        formats are one).  Instances that mutate later re-pickle into the
        pool's own spool under a bumped version; the store-owned files are
        never deleted by the pool.
        """
        if self._pool is None or self.store is None:
            return
        for entry in self.registry.entries():
            path = self.store.snapshot_path(entry.name)
            if path is not None:
                self._pool.adopt_named_ref(
                    entry.name, entry.instance, path, version=entry.version
                )

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._lag_task is not None:
            self._lag_task.cancel()
            try:
                await self._lag_task
            except asyncio.CancelledError:
                pass
            self._lag_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.exporter is not None:
            self.exporter.close()
        if self._pool is not None:
            self.engine.set_worker_pool(None)
            self._pool.shutdown()

    async def __aenter__(self) -> "ConsistentAnswerServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling -----------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # The request never got far enough to carry a trace, but
                    # the error response still correlates via a fresh id.
                    trace_id = new_trace_id()
                    payload = error_body(exc.error_type, str(exc))
                    payload["error"]["trace_id"] = trace_id
                    await self._write_response(
                        writer,
                        exc.status,
                        payload,
                        keep_alive=False,
                        extra_headers={TRACE_HEADER: trace_id},
                    )
                    break
                if request is None:
                    break
                status, payload, extra_headers = await self._process(request)
                await self._write_response(
                    writer,
                    status,
                    payload,
                    keep_alive=request.keep_alive,
                    extra_headers=extra_headers,
                )
                if not request.keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down with the connection open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, Exception):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _HttpError(400, "ProtocolError", "request line too long")
        if not request_line:
            return None  # clean EOF between keep-alive requests
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "ProtocolError", "malformed request line")
        method, target, _version = parts
        path, _, query = target.partition("?")
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise _HttpError(400, "ProtocolError", "header line too long")
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return None  # EOF mid-headers: treat as a closed connection
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, "ProtocolError", "malformed header line")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "ProtocolError", "bad Content-Length")
        if length < 0:
            raise _HttpError(400, "ProtocolError", "bad Content-Length")
        if length > self.config.max_body_bytes:
            raise _HttpError(
                413,
                "ProtocolError",
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes} byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        return _Request(
            method=method.upper(), path=path, headers=headers, body=body, query=query
        )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if isinstance(payload, _TextResponse):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = dumps(payload)
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Server: {SERVER_NAME}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------------------

    def _match_dynamic(
        self, method: str, path: str
    ) -> Tuple[Optional[Callable], Tuple[str, ...], Optional[str], List[str]]:
        """Match the parametrized instance routes.

        Returns ``(handler, args, endpoint_template, allowed_methods)`` —
        handler ``None`` with non-empty ``allowed_methods`` means 405, and
        all-empty means 404.  The endpoint template (not the raw instance
        name) labels the metrics in *both* the matched and the 405 case,
        bounding their cardinality.
        """
        from urllib.parse import unquote

        segments = path.strip("/").split("/")
        if len(segments) == 2 and segments[0] == "instances" and segments[1]:
            if method == "PATCH":
                return (
                    self._handle_patch_instance,
                    (unquote(segments[1]),),
                    "PATCH /instances/{name}",
                    [],
                )
            if method == "DELETE":
                return (
                    self._handle_drop_instance,
                    (unquote(segments[1]),),
                    "DELETE /instances/{name}",
                    [],
                )
            return None, (), "/instances/{name}", ["DELETE", "PATCH"]
        if (
            len(segments) == 3
            and segments[0] == "instances"
            and segments[1]
            and segments[2] == "facts"
        ):
            if method == "POST":
                return (
                    self._handle_mutate_instance,
                    (unquote(segments[1]),),
                    "POST /instances/{name}/facts",
                    [],
                )
            return None, (), "/instances/{name}/facts", ["POST"]
        if len(segments) == 2 and segments[0] == "traces" and segments[1]:
            if method == "GET":
                return (
                    self._handle_get_trace,
                    (unquote(segments[1]),),
                    "GET /traces/{id}",
                    [],
                )
            return None, (), "/traces/{id}", ["GET"]
        return None, (), None, []

    async def _process(self, request: _Request) -> Tuple[int, object, Dict[str, str]]:
        """Trace one request end to end, then answer it.

        The root span opens here (honoring an inbound ``X-Repro-Trace-Id``
        or minting one) and every layer below hangs children off it via the
        context variable.  The head sampler decides *provisional* retention
        up front (the decision propagates, so workers skip span recording
        for head-dropped traces); the tail-keep rule re-decides at close, so
        slow and 5xx traces are retained at 100% regardless of the rate.
        Retained trees land in the trace buffer and the OTLP exporter, are
        emitted as one structured-JSON line when the request breaches
        ``slow_query_ms``, and are inlined into the response for
        ``"explain": true`` requests (explain forces retention).  Cost is
        rolled up for *every* traced query request, retained or not.  The
        trace id is echoed on every response, errors included.
        """
        incoming = request.headers.get(_TRACE_HEADER_LOWER) or None
        trace_id = incoming or new_trace_id()
        if self.sampling_controller is not None:
            self.sampling_controller.observe_arrival()
        head = self.sampler.sample()
        with start_trace(
            "http.request",
            trace_id=trace_id,
            sampled=head,
            method=request.method,
            path=request.path,
        ) as root:
            status, payload, response_headers = await self._process_inner(request)
            if root is not None:
                root.set_tag("status", status)
        if (
            status >= 400
            and isinstance(payload, dict)
            and isinstance(payload.get("error"), dict)
        ):
            payload["error"].setdefault("trace_id", trace_id)
        if root is not None:
            tree = root.to_dict()
            threshold = self.config.slow_query_ms
            duration_ms = root.duration_ms or 0.0
            decision = self.sampler.decide(
                sampled=head,
                status=status,
                duration_ms=duration_ms,
                slow_ms=threshold,
            )
            retained = decision != DECISION_DROP or bool(root.tags.get("explain"))
            self._account_cost(root, tree, duration_ms)
            if retained:
                self.traces.record(tree)
                if self.exporter is not None:
                    self.exporter.submit(tree)
            else:
                self.sampled_out.record(trace_id)
            if threshold is not None and duration_ms >= threshold:
                _LOG.warning(
                    "slow_query",
                    trace_id=trace_id,
                    method=request.method,
                    path=request.path,
                    status=status,
                    duration_ms=round(duration_ms, 3),
                    trace=tree,
                )
            if (
                root.tags.get("explain")
                and 200 <= status < 300
                and isinstance(payload, dict)
            ):
                payload = dict(payload)
                payload["trace"] = tree
                admission = root.tags.get("admission")
                if isinstance(admission, dict):
                    payload["admission"] = admission
        return status, payload, {**response_headers, TRACE_HEADER: trace_id}

    def _account_cost(self, root, tree: Dict[str, object], duration_ms: float) -> None:
        """Roll one finished trace into the per-(instance, plan) cost table.

        Only query requests participate: :meth:`_parse_query_request` tags
        the root span with the instance and plan label, and that tag pair is
        the table key.  Runs for sampled-out traces too — cost accounting
        must see 100% of the traffic to rank plans honestly.
        """
        instance = root.tags.get("instance")
        plan = root.tags.get("plan")
        if not instance or not plan:
            return
        rolled = cost_rollup(tree)
        # The dispatch path measures the engine thread's CPU directly into
        # the root's metrics regardless of sampling, and that number is
        # per-request exact.  The span-walk CPU is not: the root span's
        # cpu_ms is the *event loop thread's* CPU for the span's lifetime,
        # which under concurrency includes loop work done for other
        # requests — folding it in would inflate cheap plans' EWMA exactly
        # when the admission gate needs it honest.  Trust engine CPU when
        # present; fall back to the span walk only for requests that never
        # reached an engine thread.
        engine_cpu = float(rolled["counters"].get("engine_cpu_ms", 0.0))
        self.cost_table.observe(
            str(instance),
            str(plan),
            duration_ms=duration_ms,
            cpu_ms=engine_cpu if engine_cpu > 0.0 else float(rolled["cpu_ms"]),
            counters=rolled["counters"],
            trace_id=root.trace_id,
        )

    async def _process_inner(
        self, request: _Request
    ) -> Tuple[int, object, Dict[str, str]]:
        handler = self._routes.get((request.method, request.path))
        handler_args: Tuple[str, ...] = ()
        endpoint = f"{request.method} {request.path}"
        if handler is None:
            handler, handler_args, template, allowed = self._match_dynamic(
                request.method, request.path
            )
            if handler is not None:
                endpoint = template
        if handler is None:
            known_methods = sorted(
                set(m for m, p in self._routes if p == request.path) | set(allowed)
            )
            if known_methods:
                endpoint, status = template or request.path, 405
                payload = error_body(
                    "MethodNotAllowed",
                    f"{request.path} supports {known_methods}",
                )
            else:
                endpoint, status = "unknown", 404
                payload = error_body("NotFound", f"no route for {request.path!r}")
            self.metrics.request_started()
            self.metrics.request_finished(endpoint, status, 0.0)
            return status, payload, {}
        if handler in (  # bound methods: compare, not `is`
            self._handle_metrics,
            self._handle_debug_top,
        ):
            handler_args = (request.query,)
        elif handler in (  # write handlers read preconditions from headers
            self._handle_patch_instance,
            self._handle_mutate_instance,
        ):
            handler_args = handler_args + (request.headers,)
        self.metrics.request_started()
        started = time.perf_counter()
        response_headers: Dict[str, str] = {}
        try:
            payload_in = loads(request.body)
            result = await handler(payload_in, *handler_args)
            if len(result) == 3:  # (status, payload, extra response headers)
                status, payload, response_headers = result
            else:
                status, payload = result
        except (asyncio.TimeoutError, JobCancelledError):
            # JobCancelledError is the same deadline observed from the other
            # side: the job's own token expired at a cancellation point just
            # before the event-loop timer fired.
            status = 504
            payload = error_body(
                "Timeout",
                f"request exceeded its {self._effective_timeout(None):.3f}s budget",
            )
        except Exception as exc:  # noqa: BLE001 — every error becomes JSON
            status, error_type = _classify_exception(exc)
            payload = error_body(error_type, str(exc))
            if isinstance(exc, AdmissionError):
                # The structured 503 envelope: why the shed happened, what
                # was predicted, and when to come back.
                payload["error"]["reason"] = exc.reason
                if exc.decision is not None:
                    payload["error"]["admission"] = exc.decision.to_payload()
                response_headers = {
                    **response_headers,
                    "Retry-After": str(exc.retry_after_s or 1),
                }
        self.metrics.request_finished(
            endpoint,
            status,
            time.perf_counter() - started,
            trace_id=current_trace_id(),
        )
        return status, payload, response_headers

    # -- engine dispatch ---------------------------------------------------------------

    def _effective_timeout(self, requested: Optional[float]) -> float:
        timeout = self.config.request_timeout_s
        if requested is not None and requested > 0:
            timeout = min(timeout, requested)
        return timeout

    def _admission_decision(self) -> AdmissionDecision:
        """Consult the predictor and the gate for the current request."""
        budget = self.config.max_queue_cost_ms
        predicted: Optional[float] = None
        if budget is not None:
            root = current_span()
            if root is not None:
                predicted = self.predictor.predict_ms(
                    root.tags.get("instance"), root.tags.get("plan")
                )
        admitted, reason, queued = self.gate.admit(predicted, budget)
        return AdmissionDecision(
            admitted=admitted,
            reason=reason,
            predicted_cost_ms=predicted,
            queued_cost_ms=queued,
            retry_after_s=None if admitted else retry_after_s(queued),
        )

    async def _dispatch(self, fn: Callable[[], object], timeout_s: float) -> object:
        """Run ``fn`` on the engine pool under admission control + timeout.

        ``asyncio.wait_for`` would block until a *running* executor job
        finishes (thread futures do not cancel), so the timeout is enforced
        with ``asyncio.wait``: the client gets its 504 immediately while a
        :class:`~repro.engine.cancellation.CancelToken` — installed in the
        job's context with the request deadline, and flipped here on
        timeout — makes the abandoned job stop cooperatively at its next
        batch-item or shard boundary instead of computing to completion.

        The gate slot is released when the *job* completes, not when the
        request does — a timed-out request whose thread is still computing
        keeps its slot, so the workers+max_pending bound holds under
        timeout storms instead of the executor queue growing unboundedly.

        With ``--max-queue-cost-ms`` set, admission is cost-predictive: the
        request's (instance, plan) — tagged on the root span by
        :meth:`_parse_query_request` — is looked up in the cost table, and
        the predicted engine CPU both gates the request against the queued
        budget and rides the gate's ledger until the job finishes.  Cold
        keys (and non-query requests) fall back to depth-only.
        """
        decision = self._admission_decision()
        record_decision(decision)
        root = current_span()
        if root is not None:
            root.set_tag("admission", decision.to_payload())
        if not decision.admitted:
            if decision.reason == REASON_PREDICTED_COST:
                message = (
                    f"predicted cost {decision.predicted_cost_ms:.1f}ms would "
                    f"push the queued {decision.queued_cost_ms:.1f}ms over the "
                    f"{self.config.max_queue_cost_ms:g}ms budget; retry later"
                )
            else:
                message = (
                    f"server at capacity ({self.gate.capacity} in flight or "
                    f"queued); retry later"
                )
            raise AdmissionError(
                message,
                reason=decision.reason,
                retry_after_s=decision.retry_after_s,
                decision=decision,
            )
        ledger_cost = decision.predicted_cost_ms
        loop = asyncio.get_running_loop()
        # contextvars do not flow into executor threads on their own; the
        # copied context carries the active span so engine/store spans land
        # under this request's trace, plus the cancel token governing the
        # job (the deadline also rides fan-out payloads into worker
        # processes, which the parent-side cancel flag cannot reach).
        token = CancelToken(deadline=time.monotonic() + timeout_s)

        def run_with_token():
            with token_scope(token):
                span = current_span()
                if span is None:
                    return fn()
                # Engine CPU measured on the executor thread itself, so the
                # cost table learns real CPU even for head-dropped traces
                # (which record no child spans to roll up).
                started_cpu = time.thread_time()
                try:
                    return fn()
                finally:
                    span.add_metric(
                        "engine_cpu_ms", (time.thread_time() - started_cpu) * 1000.0
                    )

        context = contextvars.copy_context()
        try:
            job = self._executor.submit(context.run, run_with_token)
        except BaseException:
            self.gate.release(ledger_cost)
            raise
        # The release hangs off the *concurrent* future: its callbacks fire
        # only when the job really finished (or was dropped unstarted) —
        # cancelling the asyncio wrapper below would fire immediately and
        # free a slot whose thread is still computing.
        job.add_done_callback(lambda f: self.gate.release(ledger_cost))
        future = asyncio.wrap_future(job, loop=loop)
        done, _pending = await asyncio.wait({future}, timeout=timeout_s)
        if not done:
            token.cancel()  # running job stops at its next cancellation point
            if not job.cancel():  # drops the job if it has not started yet
                REGISTRY.counter(
                    "repro_jobs_abandoned_total",
                    "Engine jobs whose client timed out (504) while the job "
                    "was still running; the job is cancelled cooperatively.",
                ).inc()
            # Consume any late failure so it never logs as unretrieved.
            future.add_done_callback(lambda f: f.cancelled() or f.exception())
            raise asyncio.TimeoutError
        return future.result()

    # -- request parsing helpers -------------------------------------------------------

    @staticmethod
    def _require_object(payload: object) -> Mapping:
        if not isinstance(payload, Mapping):
            raise ProtocolError("request body must be a JSON object")
        return payload

    @staticmethod
    def _require_str(payload: Mapping, field: str) -> str:
        value = payload.get(field)
        if not isinstance(value, str) or not value:
            raise ProtocolError(f"request requires a non-empty string {field!r}")
        return value

    def _parse_query_request(
        self, payload: Mapping
    ) -> Tuple[RegisteredInstance, AggregationQuery]:
        entry = self.registry.get(self._require_str(payload, "instance"))
        query_text = self._require_str(payload, "query")
        query = parse_aggregation_query(entry.instance.schema, query_text)
        # The (instance, plan) tag pair keys the cost table; handlers run on
        # the event-loop context inside _process's start_trace block, so the
        # current span is the request's root.
        active = current_span()
        if active is not None:
            active.set_tag("instance", entry.name)
            active.set_tag("plan", query_text)
        return entry, query

    @staticmethod
    def _parse_binding(payload: Mapping) -> Dict[str, object]:
        raw = payload.get("binding") or {}
        if not isinstance(raw, Mapping):
            raise ProtocolError("'binding' must be an object of {variable: constant}")
        return {str(name): decode_constant(value) for name, value in raw.items()}

    @staticmethod
    def _timeout_of(payload: Mapping) -> Optional[float]:
        raw = payload.get("timeout_s")
        if raw is None:
            return None
        if not isinstance(raw, (int, float)) or raw <= 0:
            raise ProtocolError("'timeout_s' must be a positive number")
        return float(raw)

    @staticmethod
    def _mark_explain(payload: Mapping) -> None:
        """Tag the request's root span when the client asked to explain.

        Handlers run on the event-loop context inside :meth:`_process`'s
        ``start_trace`` block, so the current span *is* the root; the tag
        tells :meth:`_process` to inline the finished tree into the
        response.  A no-op when tracing is disabled.
        """
        if payload.get("explain"):
            active = current_span()
            if active is not None:
                active.set_tag("explain", True)

    @staticmethod
    def _shards_for(entry: RegisteredInstance) -> Optional[int]:
        """The opt-in shard count for an instance (None = unsharded path)."""
        return entry.shards if entry.shards > 1 else None

    @staticmethod
    def _plan_summary(plan, was_cached: bool) -> Dict[str, object]:
        return {
            "glb_strategy": plan.glb_strategy,
            "lub_strategy": plan.lub_strategy,
            "certainty_class": plan.certainty_class,
            "cached": was_cached,
        }

    def _execute_answer(
        self,
        entry: RegisteredInstance,
        query: AggregationQuery,
        binding: Optional[Dict[str, object]],
        shards: Optional[int],
    ):
        """Run one engine-bound request on a serving thread.

        In process mode, unsharded execution goes to a worker's persistent
        engine (the instance ships once, keyed by registry name so the
        shard assignment survives re-registration); sharded execution stays
        on the parent engine, whose sharded executor fans the shard
        summaries out across the pool with stable assignment.  ``binding``
        of ``None`` with free variables means GROUP BY (both here and on
        the worker).
        """
        pool = self._pool
        if pool is not None and pool.is_running and shards is None:
            # The asyncio layer 504s the client at the request timeout; this
            # backstop bounds the *thread*, so a wedged pool job cannot hold
            # an executor thread and its admission slot forever.
            return pool.answer(
                query,
                entry.instance,
                binding,
                name=entry.name,
                timeout=self.config.request_timeout_s * 2 + 5,
            )
        options = AnswerOptions(shards=shards)
        if binding is None and query.free_variables:
            return self.engine.answer_group_by(query, entry.instance, options)
        return self.engine.answer(query, entry.instance, binding or {}, options)

    # -- handlers ----------------------------------------------------------------------

    async def _handle_answer(self, payload: object) -> Tuple[int, object]:
        payload = self._require_object(payload)
        self._mark_explain(payload)
        entry, query = self._parse_query_request(payload)
        binding = self._parse_binding(payload)
        missing = [v.name for v in query.free_variables if v.name not in binding]
        if missing:
            raise ProtocolError(
                f"query has free variables {missing}; bind them via 'binding' "
                f"or use /answer_group_by"
            )
        timeout = self._effective_timeout(self._timeout_of(payload))
        was_cached = self.engine.is_cached(query)
        shards = self._shards_for(entry)

        def work():
            # Plan metadata is fetched on the worker too: compile() after
            # answer() is a guaranteed cache hit, and the event loop never
            # runs classification even if the plan was evicted mid-flight.
            answer = self._execute_answer(entry, query, binding, shards)
            return answer, self.engine.compile(query)

        answer, plan = await self._dispatch(work, timeout)
        assert isinstance(answer, RangeAnswer)
        return 200, {
            "instance": entry.name,
            "answer": encode_range_answer(answer),
            "plan": self._plan_summary(plan, was_cached),
            "shards": entry.shards,
        }

    async def _handle_answer_group_by(self, payload: object) -> Tuple[int, object]:
        payload = self._require_object(payload)
        self._mark_explain(payload)
        entry, query = self._parse_query_request(payload)
        if not query.free_variables:
            raise ProtocolError(
                "query has no free variables; use /answer for closed queries"
            )
        timeout = self._effective_timeout(self._timeout_of(payload))
        was_cached = self.engine.is_cached(query)
        shards = self._shards_for(entry)

        def work():
            answers = self._execute_answer(entry, query, None, shards)
            return answers, self.engine.compile(query)

        answers, plan = await self._dispatch(work, timeout)
        return 200, {
            "instance": entry.name,
            "group_by": [v.name for v in query.free_variables],
            "groups": encode_group_answers(answers),
            "plan": self._plan_summary(plan, was_cached),
            "shards": entry.shards,
        }

    async def _handle_answer_many(self, payload: object) -> Tuple[int, object]:
        payload = self._require_object(payload)
        raw_items = payload.get("items")
        if not isinstance(raw_items, list) or not raw_items:
            raise ProtocolError("request requires a non-empty 'items' list")
        pairs = []
        names = []
        entries = []
        for position, raw in enumerate(raw_items):
            if not isinstance(raw, Mapping):
                raise ProtocolError(f"items[{position}] must be an object")
            try:
                entry, query = self._parse_query_request(raw)
            except ReproError as exc:
                raise type(exc)(f"items[{position}]: {exc}") from exc
            pairs.append((query, entry.instance))
            names.append(entry.name)
            entries.append(entry)
        requested_workers = payload.get("max_workers")
        if requested_workers is not None and (
            not isinstance(requested_workers, int) or requested_workers < 1
        ):
            raise ProtocolError("'max_workers' must be a positive integer")
        pool = self._pool
        if pool is not None and pool.is_running:
            # Process mode: batches parallelise across the persistent pool
            # by default (no fork risk — the workers already exist).  Prime
            # the *named* refs first so the batch path shares each registry
            # entry's pickled-once ref instead of minting anonymous keys
            # (one resident copy per worker, invalidatable by name).
            for entry in entries:
                pool.ref_for(entry.instance, name=entry.name)
            default_workers, cap = pool.size, max(
                pool.size, self.config.max_batch_workers
            )
        else:
            default_workers, cap = 1, max(1, self.config.max_batch_workers)
        workers = min(requested_workers or default_workers, cap)
        timeout = self._effective_timeout(self._timeout_of(payload))
        results = await self._dispatch(
            lambda: self.engine.answer_many(pairs, AnswerOptions(max_workers=workers)),
            timeout,
        )
        encoded = []
        for result, name in zip(results, names):
            item: Dict[str, object] = {
                "index": result.index,
                "instance": name,
                "seconds": result.seconds,
                "glb_strategy": result.glb_strategy,
                "lub_strategy": result.lub_strategy,
                "plan_cached": result.plan_cached,
            }
            if isinstance(result.answer, RangeAnswer):
                item["answer"] = encode_range_answer(result.answer)
            else:
                item["groups"] = encode_group_answers(result.answer)
            encoded.append(item)
        return 200, {"results": encoded}

    async def _handle_register_instance(self, payload: object) -> Tuple[int, object]:
        payload = self._require_object(payload)
        replace = bool(payload.get("replace", False))
        timeout = self._effective_timeout(self._timeout_of(payload))
        # Registration builds the instance and — with a store attached —
        # pickles and fsyncs it; like every write it runs on the engine
        # pool so the event loop never blocks on disk.
        entry = await self._dispatch(
            lambda: self.registry.register_payload(payload, replace=replace),
            timeout,
        )
        return 201, {"registered": entry.describe()}

    def _ship_delta(self, outcome) -> None:
        """Push a committed write's fact delta to the worker pool.

        Runs on the mutation's executor thread right after the registry
        commit: workers holding the previous version resident fast-forward
        in place instead of re-unpickling the whole database on their next
        job.  Purely an optimization — the pool's ``ref_for`` identity and
        data-version guards keep correctness even when the push is skipped
        or arrives out of order, so pool failures never fail the write.
        """
        pool = self._pool
        if pool is None or not pool.is_running:
            return
        delta_ops = tuple(
            ("add" if kind == "add_fact" else "remove", fact)
            for kind, fact in outcome.applied
        )
        try:
            pool.apply_named_delta(outcome.name, outcome.instance, delta_ops)
        except WorkerPoolError:
            pass  # pool mid-shutdown: the write itself already committed

    async def _mutate_instance(
        self, payload: object, name: str, headers: Optional[Mapping]
    ) -> Dict[str, object]:
        """The shared durable write path behind PATCH and the legacy POST.

        The mutation (copy-on-write apply + fsync'd log append) runs on the
        engine pool via :meth:`_dispatch` so disk I/O never blocks the
        event loop; the ``If-Match`` header (or a body-level
        ``expected_version``) turns concurrent writers into clean 409s
        instead of silent interleavings.

        Timeout semantics are at-most-once-but-maybe-committed: a 504 means
        the *response* was abandoned, while the mutation thread may still
        commit in the background (threads cannot be cancelled).  Clients
        that see a 504 on a write should confirm with ``GET /instances``
        before retrying — which is exactly what the precondition makes
        safe: a retry of an already-committed write fails with 409 instead
        of applying twice.
        """
        payload = self._require_object(payload)
        ops = decode_mutation_ops(payload)
        expected = expected_version_from_headers(headers, payload)
        timeout = self._effective_timeout(self._timeout_of(payload))

        def work():
            outcome = self.registry.mutate(name, ops, expected_version=expected)
            self._ship_delta(outcome)
            return outcome

        outcome = await self._dispatch(work, timeout)
        return {
            "mutated": outcome.describe(),
            "applied": len(ops),
            "version": outcome.version,
            "touched_blocks": [
                encode_block_key(key) for key in outcome.touched_blocks
            ],
            "shards_invalidated": list(outcome.shards_invalidated),
        }

    async def _handle_patch_instance(
        self, payload: object, name: str, headers: Optional[Mapping] = None
    ) -> Tuple[int, object]:
        """``PATCH /instances/{name}`` — the typed mutation envelope.

        Body: ``{"ops": [{"op": "add"|"remove", "relation": R,
        "values": [...]}, ...]}``; optimistic concurrency via
        ``If-Match: <version>``, answered with 409 on mismatch.  The
        response reports the write's blast radius: the new ``version``,
        the ``touched_blocks``, and the canonical ``shards_invalidated``
        slots.
        """
        return 200, await self._mutate_instance(payload, name, headers)

    async def _handle_mutate_instance(
        self, payload: object, name: str, headers: Optional[Mapping] = None
    ) -> Tuple[int, object, Dict[str, str]]:
        """``POST /instances/{name}/facts`` — deprecated alias of PATCH.

        Kept as a thin shim over the same write path for existing clients;
        every response carries a ``Deprecation`` header pointing at the
        successor route.
        """
        body = await self._mutate_instance(payload, name, headers)
        return 200, body, {
            "Deprecation": "true",
            "Link": f'</instances/{name}>; rel="successor-version"',
        }

    async def _handle_drop_instance(
        self, payload: object, name: str
    ) -> Tuple[int, object]:
        """``DELETE /instances/{name}`` — unregister and durably drop."""
        payload = self._require_object(payload)
        expected = expected_version_of(payload)
        timeout = self._effective_timeout(self._timeout_of(payload))
        entry = await self._dispatch(
            lambda: self.registry.drop(name, expected_version=expected), timeout
        )
        return 200, {"dropped": name, "version": entry.version}

    async def _handle_list_instances(self, payload: object) -> Tuple[int, object]:
        return 200, {"instances": self.registry.describe_all()}

    async def _handle_get_trace(
        self, payload: object, trace_id: str
    ) -> Tuple[int, object]:
        """``GET /traces/{id}`` — a retained trace's full span tree.

        The 404 uses the structured error envelope and says *why* the trace
        is gone: ``sampled_out`` means the head sampler dropped it (and the
        tail-keep rule found nothing worth rescuing); otherwise it was
        evicted from the bounded buffer or never existed.
        """
        trace = self.traces.get(trace_id)
        if trace is None:
            sampled_out = trace_id in self.sampled_out
            payload = error_body(
                "NotFound",
                f"no retained trace {trace_id!r} "
                + (
                    "(sampled out; slow and 5xx traces are always kept)"
                    if sampled_out
                    else f"(buffer keeps the last {self.traces.capacity})"
                ),
            )
            payload["error"]["sampled_out"] = sampled_out
            payload["error"]["reason"] = (
                "sampled_out" if sampled_out else "evicted_or_unknown"
            )
            return 404, payload
        return 200, {"trace": trace}

    def _refresh_registry_gauges(self) -> None:
        """Re-derive pool-sourced gauges at scrape time.

        Queue depth and spool (resident-instance) hits are observed inside
        the worker machinery and surface through ``pool.stats()``; setting
        them lazily at exposition keeps the request path free of extra
        bookkeeping.
        """
        pool = self._pool
        if pool is None or not pool.is_running:
            return
        stats = pool.stats()
        queue_gauge = REGISTRY.gauge(
            "repro_worker_queue_depth", "Jobs queued or running per worker process."
        )
        spool_gauge = REGISTRY.gauge(
            "repro_worker_spool_hits",
            "Cumulative resident-instance (spool) hits reported by workers.",
        )
        total_hits = 0.0
        for worker in stats.get("per_worker", []):
            queue_gauge.set(
                float(worker.get("queue_depth", 0)),
                worker=worker.get("worker", "?"),
            )
            total_hits += float(worker.get("resident_hits", 0) or 0)
        spool_gauge.set(total_hits)

    async def _handle_metrics(
        self, payload: object, query: str = ""
    ) -> Tuple[int, object]:
        from urllib.parse import parse_qs

        wants_prometheus = "prometheus" in parse_qs(query).get("format", [])
        if wants_prometheus:
            self._refresh_registry_gauges()
            CACHE_REGISTRY.publish(REGISTRY)
            page = render_prometheus(self.metrics.snapshot(), REGISTRY)
            return 200, _TextResponse(page)
        stats = self.engine.cache_stats()
        snapshot = self.metrics.snapshot()
        snapshot.update(
            {
                "plan_cache": {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "size": stats.size,
                    "maxsize": stats.maxsize,
                    "hit_rate": stats.hit_rate,
                },
                "sql_memo": sql_memo_stats(),
                "sharding": {
                    **self.engine.shard_stats(),
                    "plan_cache": shard_plan_cache_stats(),
                },
                "admission": {
                    "capacity": self.gate.capacity,
                    "in_use": self.gate.in_use,
                    "workers": self._workers,
                    "max_pending": self.config.max_pending,
                    "queued_cost_ms": round(self.gate.queued_cost_ms, 3),
                    "max_queue_cost_ms": self.config.max_queue_cost_ms,
                },
                "worker_pool": (
                    self._pool.stats()
                    if self._pool is not None
                    else {"enabled": False}
                ),
                "store": (
                    self.store.stats()
                    if self.store is not None
                    else {"enabled": False}
                ),
                "instances": self.registry.names(),
                "sampling": {
                    **self.sampler.stats(),
                    **(
                        self.sampling_controller.stats()
                        if self.sampling_controller is not None
                        else {"mode": "static"}
                    ),
                },
                "otlp_export": (
                    self.exporter.stats()
                    if self.exporter is not None
                    else {"enabled": False}
                ),
                "cost": self.cost_table.summary(),
                "event_loop": self._lag_probe.stats(),
            }
        )
        return 200, snapshot

    _TOP_SORTS = ("cpu", "p95", "count")

    async def _handle_debug_top(
        self, payload: object, query: str = ""
    ) -> Tuple[int, object]:
        """``GET /debug/top?sort=cpu|p95|count&limit=N`` — the cost table."""
        from urllib.parse import parse_qs

        # keep_blank_values: `?sort=` must 400 like any other unknown key,
        # not silently fall back to the default.
        params = parse_qs(query, keep_blank_values=True)
        sort = (params.get("sort") or ["cpu"])[0]
        if sort not in self._TOP_SORTS:
            body = error_body(
                "Protocol",
                f"unknown sort {sort!r}; use one of {', '.join(self._TOP_SORTS)}",
            )
            body["error"]["valid_sorts"] = list(self._TOP_SORTS)
            return 400, body
        raw_limit = (params.get("limit") or ["20"])[0]
        try:
            limit = max(1, int(raw_limit))
        except ValueError:
            raise _HttpError(
                400, "Protocol", f"'limit' must be an integer, got {raw_limit!r}"
            )
        return 200, {
            "sort": sort,
            "summary": self.cost_table.summary(),
            "top": self.cost_table.top(sort=sort, limit=limit),
        }

    async def _handle_debug_caches(self, payload: object) -> Tuple[int, object]:
        """``GET /debug/caches`` — every registered cache, one report schema.

        The snapshot opens a ``cache.stats`` span per provider, so a traced
        scrape shows where the stats time went, cache by cache.
        """
        return 200, {"caches": CACHE_REGISTRY.snapshot()}

    async def _handle_healthz(self, payload: object) -> Tuple[int, object]:
        if self.store is not None:
            store_stats = self.store.stats()
            store_summary: Dict[str, object] = {
                "enabled": True,
                "dir": store_stats["dir"],
                "instances": store_stats["instances"],
                "versions": store_stats["versions"],
                "log_records_pending": store_stats["log_records_pending"],
                "last_compaction_at": store_stats["last_compaction_at"],
            }
        else:
            store_summary = {"enabled": False}
        return 200, {
            "status": "ok",
            "uptime_seconds": self.metrics.uptime_seconds(),
            "backend": self.engine.backend_name,
            "fallback": self.engine.fallback_name,
            "workers": self._workers,
            "worker_processes": self._pool.size if self._pool is not None else 0,
            "instances": len(self.registry),
            "store": store_summary,
        }


async def run_server(config: Optional[ServeConfig] = None) -> None:
    """Boot a server and serve until cancelled (the ``__main__`` entry).

    ``stop()`` runs even when ``start()`` itself fails (e.g. the port is
    already bound), so a started worker pool never outlives the attempt.
    """
    server = ConsistentAnswerServer(config)
    try:
        host, port = await server.start()
        _LOG.info("listening", server=SERVER_NAME, host=host, port=port)
        if server.config.worker_processes > 0:
            _LOG.info(
                "worker_pool_started",
                processes=server.config.worker_processes,
            )
        if server.store is not None:
            _LOG.info(
                "store_attached",
                dir=server.store.root,
                instances_loaded=len(server.registry),
                compact_every=server.store.compact_every,
            )
        _LOG.info("instances_registered", names=server.registry.names())
        await server.serve_forever()
    finally:
        await server.stop()
