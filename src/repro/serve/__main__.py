"""``python -m repro.serve`` — boot the consistent-answering server.

Examples::

    python -m repro.serve                         # 127.0.0.1:8421, builtins
    python -m repro.serve --port 0                # ephemeral port
    python -m repro.serve --backend sqlite --workers 8 --max-pending 256
    REPRO_BATCH_WORKERS=4 python -m repro.serve --max-batch-workers 4
"""

from __future__ import annotations

import argparse
import asyncio

from repro.serve.app import ServeConfig, run_server


def build_parser() -> argparse.ArgumentParser:
    defaults = ServeConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve range consistent answers over HTTP/JSON.",
    )
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument(
        "--port", type=int, default=defaults.port, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--backend",
        default=defaults.backend,
        help="engine backend for rewriting-based execution (operational, sqlite, ...)",
    )
    parser.add_argument(
        "--fallback",
        default=defaults.fallback,
        help="backend for non-rewritable directions",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="engine worker threads (default: cpu-derived)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=defaults.max_pending,
        help="admission-queue slots beyond the in-flight workers (503 when full)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=defaults.request_timeout_s,
        metavar="SECONDS",
        help="per-request execution budget (504 when exceeded)",
    )
    parser.add_argument(
        "--max-batch-workers",
        type=int,
        default=defaults.max_batch_workers,
        help="process fan-out cap for /answer_many (1 = serial, cache-warming)",
    )
    parser.add_argument(
        "--plan-cache-size", type=int, default=defaults.plan_cache_size
    )
    parser.add_argument(
        "--no-builtins",
        action="store_true",
        help="do not pre-register the paper's example instances",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        fallback=args.fallback,
        plan_cache_size=args.plan_cache_size,
        workers=args.workers,
        max_pending=args.max_pending,
        request_timeout_s=args.request_timeout,
        max_batch_workers=args.max_batch_workers,
        register_builtins=not args.no_builtins,
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(run_server(config_from_args(args)))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
