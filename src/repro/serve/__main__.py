"""``python -m repro.serve`` — boot the consistent-answering server.

Examples::

    python -m repro.serve                         # 127.0.0.1:8421, builtins
    python -m repro.serve --port 0                # ephemeral port
    python -m repro.serve --workers 4             # 4 engine worker processes
    python -m repro.serve --backend sqlite --threads 8 --max-pending 256
    python -m repro.serve --store-dir ./instances  # durable registry
    REPRO_BATCH_WORKERS=4 python -m repro.serve --max-batch-workers 4

``--workers N`` is the process mode: CPU-bound plan execution runs on a
long-lived pool of N engine worker processes (GIL-free parallelism, warm
per-worker caches, crash respawn).  Without it the server executes on the
``--threads``-sized thread pool, as before.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.obs.sample import parse_sample_rate
from repro.serve.app import SERVER_NAME, ServeConfig, run_server


def build_parser() -> argparse.ArgumentParser:
    defaults = ServeConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve range consistent answers over HTTP/JSON.",
    )
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument(
        "--port", type=int, default=defaults.port, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--backend",
        default=defaults.backend,
        help="engine backend for rewriting-based execution (operational, sqlite, ...)",
    )
    parser.add_argument(
        "--fallback",
        default=defaults.fallback,
        help="backend for non-rewritable directions",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="engine worker *processes* (long-lived pool; 0 = thread-pool "
        "execution, the default)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="engine worker threads (default: cpu-derived); with --workers "
        "the threads only wait on the process pool",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=defaults.max_pending,
        help="admission-queue slots beyond the in-flight workers (503 when full)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=defaults.request_timeout_s,
        metavar="SECONDS",
        help="per-request execution budget (504 when exceeded)",
    )
    parser.add_argument(
        "--max-batch-workers",
        type=int,
        default=defaults.max_batch_workers,
        help="process fan-out cap for /answer_many (1 = serial, cache-warming)",
    )
    parser.add_argument(
        "--plan-cache-size", type=int, default=defaults.plan_cache_size
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="durable instance store: persist registered instances and "
        "mutations under DIR and reload them at boot",
    )
    parser.add_argument(
        "--store-compact-every",
        type=int,
        default=defaults.store_compact_every,
        metavar="N",
        help="fold an instance's fact log into a fresh snapshot every N "
        "records (0 disables auto-compaction)",
    )
    parser.add_argument(
        "--no-builtins",
        action="store_true",
        help="do not pre-register the paper's example instances",
    )
    parser.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable the per-request span tree (trace ids still echo)",
    )
    parser.add_argument(
        "--trace-buffer",
        type=int,
        default=defaults.trace_buffer,
        metavar="N",
        help="how many finished traces GET /traces/{id} can look up",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log the full span tree of any request at least this slow "
        "(0 logs every request; default: disabled)",
    )
    parser.add_argument(
        "--trace-sample",
        default=None,
        metavar="N|1/N",
        help="pin head-sampling to 1 in N traces and disable the adaptive "
        "controller (slow and 5xx traces are always kept); default: "
        "REPRO_TRACE_SAMPLE, else adaptive",
    )
    parser.add_argument(
        "--trace-target-rps",
        type=float,
        default=defaults.trace_target_rps,
        metavar="RPS",
        help="adaptive sampling target: adjust 1/N so roughly RPS traces/s "
        "are kept (0 disables the controller; ignored with --trace-sample)",
    )
    parser.add_argument(
        "--summary-cache-size",
        type=int,
        default=defaults.summary_cache_size,
        metavar="N",
        help="shard summary-cache capacity in entries (0 disables caching)",
    )
    parser.add_argument(
        "--max-queue-cost-ms",
        type=float,
        default=None,
        metavar="MS",
        help="cost-predictive admission: shed with 503 when the predicted "
        "CPU cost of queued work would exceed MS (default: depth-only "
        "admission)",
    )
    parser.add_argument(
        "--otlp-export",
        default=None,
        metavar="PATH|URL",
        help="export retained traces as OTLP/JSON: NDJSON append to PATH, "
        "or POST batches to an http(s) URL",
    )
    parser.add_argument(
        "--otlp-gzip",
        action="store_true",
        help="gzip-compress OTLP HTTP batches (Content-Encoding: gzip); "
        "ignored for file targets",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="structured-log threshold (default: REPRO_LOG_LEVEL or info)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        fallback=args.fallback,
        plan_cache_size=args.plan_cache_size,
        workers=args.threads,
        max_pending=args.max_pending,
        request_timeout_s=args.request_timeout,
        max_batch_workers=args.max_batch_workers,
        register_builtins=not args.no_builtins,
        worker_processes=max(0, args.workers),
        store_dir=args.store_dir,
        store_compact_every=max(0, args.store_compact_every),
        tracing=not args.no_tracing,
        trace_buffer=max(1, args.trace_buffer),
        slow_query_ms=args.slow_query_ms,
        trace_sample=(
            parse_sample_rate(args.trace_sample, "--trace-sample")
            if args.trace_sample is not None
            else None
        ),
        trace_target_rps=(
            args.trace_target_rps if args.trace_target_rps > 0 else None
        ),
        summary_cache_size=max(0, args.summary_cache_size),
        max_queue_cost_ms=(
            args.max_queue_cost_ms
            if args.max_queue_cost_ms is not None and args.max_queue_cost_ms > 0
            else None
        ),
        otlp_export=args.otlp_export,
        otlp_gzip=args.otlp_gzip,
        log_level=args.log_level,
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(run_server(config_from_args(args)))
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        # Most commonly the port is already bound: fail with a structured
        # one-line error instead of a traceback (and run_server has already
        # torn the worker pool down).
        print(
            f"{SERVER_NAME}: error: cannot listen on "
            f"{args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
