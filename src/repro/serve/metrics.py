"""Server metrics: request counters, latency histograms, cache hit rates.

The serving layer is the repo's first long-running process, so observability
is part of the subsystem, not an afterthought.  :class:`ServerMetrics`
aggregates

* per-endpoint request counts broken down by HTTP status,
* per-endpoint latency histograms with estimated p50/p95 (fixed
  Prometheus-style buckets — cheap, bounded memory, mergeable),
* admission-control rejections and request timeouts,
* plan-cache and generated-SQL-memo statistics surfaced from the engine.

Everything is guarded by one lock; observations are O(#buckets) and the
snapshot is an immutable dict ready for JSON serialization at ``/metrics``.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Dict, Optional, Tuple

#: Upper bucket bounds in seconds (the last bucket is +Inf).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation.

    Percentiles interpolate linearly *within* the bucket containing the
    requested rank (the ``histogram_quantile`` estimator), so a p50 whose
    bucket spans 1–2.5ms reports where in that range the rank falls rather
    than pessimistically returning the 2.5ms upper bound.
    """

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self._bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0
        # Per-bucket OpenMetrics exemplar: (trace_id, seconds, unix_ts) of
        # the most recent observation that landed in the bucket.
        self._exemplars: Dict[int, Tuple[str, float, float]] = {}

    def observe(self, seconds: float, trace_id: Optional[str] = None) -> None:
        index = bisect_left(self._bounds, seconds)
        self._counts[index] += 1
        self._sum += seconds
        self._count += 1
        if trace_id:
            self._exemplars[index] = (trace_id, seconds, time.time())

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, quantile: float) -> Optional[float]:
        """Estimated latency (seconds) at ``quantile`` in [0, 1], or None."""
        if self._count == 0:
            return None
        rank = quantile * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            below = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self._bounds):
                    return self._max_seen_bound()
                upper = self._bounds[index]
                if bucket_count == 0:
                    return upper
                lower = self._bounds[index - 1] if index > 0 else 0.0
                fraction = min(1.0, max(0.0, (rank - below) / bucket_count))
                return lower + (upper - lower) * fraction
        return self._max_seen_bound()

    def _max_seen_bound(self) -> float:
        # Observations beyond the largest bound: report the mean of the
        # overflow as a best effort rather than pretending it fits a bucket.
        return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, object]:
        buckets = {str(bound): count for bound, count in zip(self._bounds, self._counts)}
        buckets["+Inf"] = self._counts[-1]
        out: Dict[str, object] = {
            "count": self._count,
            "sum_seconds": self._sum,
            "p50_ms": _to_ms(self.percentile(0.50)),
            "p95_ms": _to_ms(self.percentile(0.95)),
            "p99_ms": _to_ms(self.percentile(0.99)),
            "buckets": buckets,
        }
        if self._exemplars:
            labels = list(buckets)  # same insertion order as the bounds
            out["exemplars"] = {
                labels[index]: {
                    "trace_id": trace_id,
                    "value_seconds": seconds,
                    "ts": ts,
                }
                for index, (trace_id, seconds, ts) in sorted(self._exemplars.items())
            }
        return out


def _to_ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1000.0, 3)


class ServerMetrics:
    """Thread-safe aggregation of everything ``GET /metrics`` reports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()
        self._requests: Dict[str, Dict[str, int]] = {}
        self._latency: Dict[str, LatencyHistogram] = {}
        self._in_flight = 0
        self._rejected = 0
        self._timeouts = 0

    # -- recording ---------------------------------------------------------------------

    def request_started(self) -> None:
        with self._lock:
            self._in_flight += 1

    def request_finished(
        self,
        endpoint: str,
        status: int,
        seconds: float,
        trace_id: Optional[str] = None,
    ) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            by_status = self._requests.setdefault(endpoint, {})
            key = str(status)
            by_status[key] = by_status.get(key, 0) + 1
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
            histogram.observe(seconds, trace_id=trace_id)
            if status == 503:
                self._rejected += 1
            elif status == 504:
                self._timeouts += 1

    # -- reporting ---------------------------------------------------------------------

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            requests = {
                endpoint: dict(by_status)
                for endpoint, by_status in sorted(self._requests.items())
            }
            latency = {
                endpoint: histogram.snapshot()
                for endpoint, histogram in sorted(self._latency.items())
            }
            return {
                "started_at": self._started_at,
                "uptime_seconds": self.uptime_seconds(),
                "in_flight": self._in_flight,
                "rejected_total": self._rejected,
                "timeout_total": self._timeouts,
                "requests_total": requests,
                "latency": latency,
            }

    def total_requests(self) -> int:
        with self._lock:
            return sum(
                count
                for by_status in self._requests.values()
                for count in by_status.values()
            )

    def status_counts(self) -> Dict[str, int]:
        """Aggregate request counts by status across every endpoint."""
        with self._lock:
            totals: Dict[str, int] = {}
            for by_status in self._requests.values():
                for status, count in by_status.items():
                    totals[status] = totals.get(status, 0) + count
            return totals
