"""Wire protocol of the serving layer: JSON encoding of the repro datamodel.

Everything that crosses the HTTP boundary is JSON.  The encoding must be
loss-free for the library's exact arithmetic, so the protocol defines a
tagged representation for values JSON cannot carry natively:

* :class:`~fractions.Fraction` — ``{"$fraction": "70/3"}`` (exact);
* the ``BOTTOM`` sentinel (query not certain) — ``null``;
* strings and ints pass through as JSON strings / numbers; floats are
  accepted on input but answers coming out of the engine are exact.

Range answers serialize as ``{"glb": v, "lub": v, "bottom": flag}``; GROUP BY
results as a list of ``{"key": [...], "glb": ..., "lub": ..., "bottom": ...}``
rows (JSON objects cannot be keyed by tuples).  Database instances ship as
``{"name", "schema": {"relations": [...]}, "rows": {relation: [[...], ...]}}``
so a client can register an instance it built locally.

Errors use a structured body ``{"error": {"type", "message", "trace_id"}}``;
the type is the exception class name, so clients can switch on it, and
``trace_id`` matches the response's ``X-Repro-Trace-Id`` header so an error
can be correlated with the server's trace buffer and slow-query log.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.evaluator import BOTTOM
from repro.core.range_answers import RangeAnswer
from repro.datamodel.facts import Constant
from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.signature import RelationSignature, Schema
from repro.exceptions import ReproError

PROTOCOL_VERSION = 1

_FRACTION_TAG = "$fraction"


class ProtocolError(ReproError):
    """A request body does not conform to the wire protocol."""


# -- constants and answer values --------------------------------------------------------


def encode_constant(value: Constant) -> object:
    """Encode one database constant as a JSON-compatible value."""
    if isinstance(value, bool):  # bool is an int subclass; keep it explicit
        return value
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return {_FRACTION_TAG: f"{value.numerator}/{value.denominator}"}
    if isinstance(value, (str, int, float)):
        return value
    raise ProtocolError(f"cannot encode constant of type {type(value).__name__}")


def decode_constant(raw: object) -> Constant:
    """Decode a JSON value produced by :func:`encode_constant`."""
    if isinstance(raw, Mapping):
        tag = raw.get(_FRACTION_TAG)
        if tag is None or len(raw) != 1:
            raise ProtocolError(f"unknown tagged constant: {raw!r}")
        try:
            return Fraction(str(tag))
        except (ValueError, ZeroDivisionError) as exc:
            raise ProtocolError(f"bad fraction literal {tag!r}") from exc
    if isinstance(raw, (str, int, float, bool)):
        return raw
    raise ProtocolError(f"cannot decode constant: {raw!r}")


def encode_value(value: object) -> object:
    """Encode an answer value: a constant, or ``None`` for ⊥."""
    if value is BOTTOM:
        return None
    return encode_constant(value)


def decode_value(raw: object) -> object:
    """Inverse of :func:`encode_value` (``None`` → ``BOTTOM``)."""
    if raw is None:
        return BOTTOM
    return decode_constant(raw)


def encode_range_answer(answer: RangeAnswer) -> Dict[str, object]:
    return {
        "glb": encode_value(answer.glb),
        "lub": encode_value(answer.lub),
        "bottom": answer.is_bottom,
    }


def decode_range_answer(payload: Mapping) -> RangeAnswer:
    try:
        return RangeAnswer(decode_value(payload["glb"]), decode_value(payload["lub"]))
    except KeyError as exc:
        raise ProtocolError(f"range answer missing field {exc.args[0]!r}") from exc


def encode_group_answers(
    answers: Mapping[Tuple[Constant, ...], RangeAnswer]
) -> List[Dict[str, object]]:
    """Encode a GROUP BY result as a list of keyed rows (stable order)."""
    return [
        {"key": [encode_constant(c) for c in key], **encode_range_answer(answer)}
        for key, answer in answers.items()
    ]


def decode_group_answers(
    rows: Sequence[Mapping],
) -> Dict[Tuple[Constant, ...], RangeAnswer]:
    decoded: Dict[Tuple[Constant, ...], RangeAnswer] = {}
    for row in rows:
        if "key" not in row:
            raise ProtocolError("group answer row missing 'key'")
        key = tuple(decode_constant(c) for c in row["key"])
        decoded[key] = decode_range_answer(row)
    return decoded


# -- schemas and instances --------------------------------------------------------------


def schema_to_payload(schema: Schema) -> Dict[str, object]:
    return {
        "relations": [
            {
                "name": sig.name,
                "arity": sig.arity,
                "key_size": sig.key_size,
                "numeric_positions": list(sig.numeric_positions),
                "attribute_names": list(sig.attribute_names),
            }
            for sig in schema
        ]
    }


def schema_from_payload(payload: Mapping) -> Schema:
    relations = payload.get("relations")
    if not isinstance(relations, list) or not relations:
        raise ProtocolError("schema payload requires a non-empty 'relations' list")
    signatures = []
    for raw in relations:
        if not isinstance(raw, Mapping):
            raise ProtocolError("each relation must be an object")
        try:
            signatures.append(
                RelationSignature(
                    name=str(raw["name"]),
                    arity=int(raw["arity"]),
                    key_size=int(raw["key_size"]),
                    numeric_positions=tuple(
                        int(p) for p in raw.get("numeric_positions", ())
                    ),
                    attribute_names=tuple(
                        str(a) for a in raw.get("attribute_names", ())
                    ),
                )
            )
        except KeyError as exc:
            raise ProtocolError(
                f"relation payload missing field {exc.args[0]!r}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed relation payload: {exc}") from exc
    return Schema(signatures)


def instance_to_payload(name: str, instance: DatabaseInstance) -> Dict[str, object]:
    """Serialize an instance (with its schema) for ``POST /instances``."""
    rows: Dict[str, List[List[object]]] = {}
    for fact in sorted(instance, key=repr):
        rows.setdefault(fact.relation, []).append(
            [encode_constant(v) for v in fact.values]
        )
    return {
        "name": name,
        "schema": schema_to_payload(instance.schema),
        "rows": rows,
    }


def instance_from_payload(payload: Mapping) -> Tuple[str, DatabaseInstance]:
    """Build a named :class:`DatabaseInstance` from a registration payload."""
    if not isinstance(payload, Mapping):
        raise ProtocolError("instance payload must be a JSON object")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError("instance payload requires a non-empty 'name'")
    schema_payload = payload.get("schema")
    if not isinstance(schema_payload, Mapping):
        raise ProtocolError("instance payload requires a 'schema' object")
    schema = schema_from_payload(schema_payload)
    raw_rows = payload.get("rows", {})
    if not isinstance(raw_rows, Mapping):
        raise ProtocolError("'rows' must map relation names to row lists")
    instance = DatabaseInstance(schema)
    for relation, relation_rows in raw_rows.items():
        if not isinstance(relation_rows, list):
            raise ProtocolError(f"rows for {relation!r} must be a list")
        for row in relation_rows:
            if not isinstance(row, list):
                raise ProtocolError(f"each row of {relation!r} must be a list")
            instance.add_row(str(relation), *(decode_constant(v) for v in row))
    return name, instance


# -- mutation ops -----------------------------------------------------------------------

#: Wire spellings accepted for each canonical log-record kind.
_OP_ALIASES = {
    "add": "add_fact",
    "add_fact": "add_fact",
    "remove": "remove_fact",
    "remove_fact": "remove_fact",
}

#: One decoded mutation op: (kind, relation, values).
MutationOpPayload = Tuple[str, str, Tuple[Constant, ...]]


def decode_mutation_ops(payload: Mapping) -> List[MutationOpPayload]:
    """Decode the ``"ops"`` list of ``POST /instances/{name}/facts``.

    Each op is ``{"op": "add"|"remove", "relation": R, "values": [...]}``
    (the long spellings ``add_fact`` / ``remove_fact`` are accepted too);
    constants use the same tagged encoding as bindings and rows.
    """
    raw_ops = payload.get("ops")
    if not isinstance(raw_ops, list) or not raw_ops:
        raise ProtocolError("mutation requires a non-empty 'ops' list")
    ops: List[MutationOpPayload] = []
    for position, raw in enumerate(raw_ops):
        if not isinstance(raw, Mapping):
            raise ProtocolError(f"ops[{position}] must be an object")
        raw_kind = raw.get("op")
        kind = _OP_ALIASES.get(raw_kind) if isinstance(raw_kind, str) else None
        if kind is None:
            raise ProtocolError(
                f"ops[{position}]: 'op' must be one of {sorted(set(_OP_ALIASES))}"
            )
        relation = raw.get("relation")
        if not isinstance(relation, str) or not relation:
            raise ProtocolError(
                f"ops[{position}] requires a non-empty string 'relation'"
            )
        values = raw.get("values")
        if not isinstance(values, list) or not values:
            raise ProtocolError(f"ops[{position}] requires a non-empty 'values' list")
        ops.append(
            (kind, relation, tuple(decode_constant(value) for value in values))
        )
    return ops


def encode_mutation_op(op: object) -> Dict[str, object]:
    """Encode one client-side op: a ``(op, relation, values)`` triple or an
    already-shaped mapping (values encoded either way)."""
    if isinstance(op, Mapping):
        kind, relation, values = op.get("op"), op.get("relation"), op.get("values")
    else:
        try:
            kind, relation, values = op
        except (TypeError, ValueError):
            raise ProtocolError(
                f"mutation op must be (op, relation, values) or a mapping, "
                f"got {op!r}"
            ) from None
    if not isinstance(kind, str) or _OP_ALIASES.get(kind) is None:
        raise ProtocolError(f"'op' must be one of {sorted(set(_OP_ALIASES))}")
    return {
        "op": kind,
        "relation": relation,
        "values": [encode_constant(value) for value in values],
    }


def expected_version_of(payload: Mapping) -> Optional[int]:
    """The optional ``expected_version`` precondition of a write request."""
    raw = payload.get("expected_version")
    if raw is None:
        return None
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < 1:
        raise ProtocolError("'expected_version' must be a positive integer")
    return raw


def expected_version_from_headers(
    headers: Optional[Mapping], payload: Mapping
) -> Optional[int]:
    """The write precondition of ``PATCH /instances/{name}``.

    The ``If-Match`` header (the instance version, optionally quoted per
    the HTTP entity-tag grammar) takes precedence over a body-level
    ``expected_version``; ``If-Match: *`` means "no precondition" — match
    any current version, exactly like omitting the header.
    """
    raw = (headers or {}).get("if-match")
    if raw is None:
        return expected_version_of(payload)
    value = raw.strip()
    if value == "*":
        return None
    if len(value) >= 2 and value.startswith('"') and value.endswith('"'):
        value = value[1:-1]
    try:
        version = int(value)
    except ValueError:
        version = -1
    if version < 1:
        raise ProtocolError(
            f"If-Match must be a positive integer version (optionally "
            f"quoted) or '*', got {raw!r}"
        )
    return version


def encode_block_key(block_key: Tuple[str, Tuple[Constant, ...]]) -> Dict[str, object]:
    """Encode one touched ``(relation, key values)`` block key for the wire."""
    relation, key = block_key
    return {"relation": relation, "key": [encode_constant(value) for value in key]}


# -- errors and body framing ------------------------------------------------------------


def error_body(
    error_type: str, message: str, trace_id: Optional[str] = None
) -> Dict[str, object]:
    """The structured error body every non-2xx response carries.

    ``trace_id`` (when known) mirrors the ``X-Repro-Trace-Id`` response
    header into the body, so clients that only keep the payload can still
    quote the id back at ``GET /traces/{id}`` or a log search.
    """
    error: Dict[str, object] = {"type": error_type, "message": message}
    if trace_id is not None:
        error["trace_id"] = trace_id
    return {"error": error}


def dumps(payload: object) -> bytes:
    """Serialize a response payload (compact separators, UTF-8)."""
    return json.dumps(payload, separators=(",", ":"), ensure_ascii=False).encode(
        "utf-8"
    )


def loads(body: bytes) -> Any:
    """Parse a request body, raising :class:`ProtocolError` on bad JSON."""
    if not body:
        return {}
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
