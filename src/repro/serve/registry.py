"""The instance registry: named databases the server answers queries over.

Clients never ship a database per request; they register it once (or the
operator loads it at boot) and subsequent requests reference it by name.
Every registered instance carries its schema fingerprint, so the registry
makes explicit which instances share plan-cache entries: two instances with
the same fingerprint are served by the same compiled plans.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.datamodel.instance import DatabaseInstance
from repro.engine.plan import schema_fingerprint
from repro.exceptions import ReproError
from repro.serve.protocol import instance_from_payload


class RegistryError(ReproError):
    """Base class for registry failures."""


class UnknownInstanceError(RegistryError):
    """A request referenced an instance name that is not registered."""


class DuplicateInstanceError(RegistryError):
    """An instance name is already registered (and ``replace`` was not set)."""


@dataclass(frozen=True)
class RegisteredInstance:
    """One named database plus the metadata the server reports about it.

    ``shards`` is the per-instance sharding configuration: when greater
    than 1, engine-bound requests against this instance take the sharded
    execution path of :mod:`repro.engine.sharding` with that shard count
    (queries the sharding seam cannot merge still answer unsharded).
    """

    name: str
    instance: DatabaseInstance
    fingerprint: str
    registered_at: float
    shards: int = 1

    def describe(self) -> Dict[str, object]:
        """The JSON-facing description used by ``GET /instances``."""
        instance = self.instance
        return {
            "name": self.name,
            "schema_fingerprint": self.fingerprint,
            "relations": list(instance.schema.relation_names()),
            "facts": len(instance),
            "blocks": len(instance.blocks()),
            "inconsistent_blocks": len(instance.inconsistent_blocks()),
            "registered_at": self.registered_at,
            "shards": self.shards,
        }


class InstanceRegistry:
    """Thread-safe mapping from instance names to registered databases.

    The serving app reads from request-handling threads and writes from the
    admin endpoint, so every access takes the registry lock.
    """

    def __init__(
        self, instances: Optional[Mapping[str, DatabaseInstance]] = None
    ) -> None:
        self._lock = threading.Lock()
        self._instances: Dict[str, RegisteredInstance] = {}
        for name, instance in (instances or {}).items():
            self.register(name, instance)

    def register(
        self,
        name: str,
        instance: DatabaseInstance,
        replace: bool = False,
        shards: int = 1,
    ) -> RegisteredInstance:
        """Register ``instance`` under ``name``; refuses silent overwrites."""
        if not name:
            raise RegistryError("instance name must be non-empty")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise RegistryError("'shards' must be a positive integer")
        entry = RegisteredInstance(
            name=name,
            instance=instance,
            fingerprint=schema_fingerprint(instance.schema),
            registered_at=time.time(),
            shards=shards,
        )
        with self._lock:
            if name in self._instances and not replace:
                raise DuplicateInstanceError(
                    f"instance {name!r} is already registered (pass replace=true "
                    f"to overwrite)"
                )
            self._instances[name] = entry
        return entry

    def register_payload(
        self, payload: Mapping, replace: bool = False
    ) -> RegisteredInstance:
        """Register an instance shipped over the wire (``POST /instances``).

        An optional ``"shards"`` key opts the instance into sharded
        execution for every subsequent engine-bound request against it.
        """
        name, instance = instance_from_payload(payload)
        shards = payload.get("shards", 1)
        return self.register(name, instance, replace=replace, shards=shards)

    def get(self, name: str) -> RegisteredInstance:
        with self._lock:
            try:
                return self._instances[name]
            except KeyError:
                known = sorted(self._instances)
                raise UnknownInstanceError(
                    f"unknown instance {name!r}; registered: {known}"
                ) from None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instances)

    def describe_all(self) -> List[Dict[str, object]]:
        with self._lock:
            entries = sorted(self._instances.values(), key=lambda e: e.name)
        return [entry.describe() for entry in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._instances)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._instances


#: Loaders for the paper's worked examples, registered at boot by default so
#: a freshly started server answers the README queries out of the box.
BUILTIN_INSTANCES: Dict[str, Callable[[], DatabaseInstance]] = {}


def _register_builtin(name: str):
    def wrap(loader: Callable[[], DatabaseInstance]):
        BUILTIN_INSTANCES[name] = loader
        return loader

    return wrap


@_register_builtin("stock")
def _load_stock() -> DatabaseInstance:
    from repro.workloads.scenarios import fig1_stock_instance

    return fig1_stock_instance()


@_register_builtin("running_example")
def _load_running_example() -> DatabaseInstance:
    from repro.workloads.scenarios import fig3_running_example_instance

    return fig3_running_example_instance()


def builtin_registry() -> InstanceRegistry:
    """A registry pre-loaded with the paper's example databases."""
    registry = InstanceRegistry()
    for name, loader in BUILTIN_INSTANCES.items():
        registry.register(name, loader())
    return registry
